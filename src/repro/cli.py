"""Command-line interface: run the paper's experiments from a shell.

Subcommands
-----------

``table1``
    Print the regenerated paper Table I (order codings for |G| = 4).
``classify``
    Classify neighbour pairs of a simulated device over a temperature
    range (paper Fig. 3).
``attack``
    Enroll a device with one of the four attacked constructions, run
    the corresponding §VI helper-data manipulation attack, and report
    recovery status plus the oracle-query bill.
``analyze``
    Population entropy/uniqueness/reliability statistics for a device
    family.
``fleet``
    Manufacture a device population and run a chunked Monte-Carlo
    failure-rate sweep, optionally split across a process pool
    (``--workers N``); results are bitwise-identical for every worker
    count.  With ``--attack CONSTRUCTION`` the sweep becomes a
    fleet-wide helper-data attack campaign executed by the lock-step
    engine (``--scalar-loop`` falls back to the per-device reference
    loop; ``--fused/--no-fused`` toggles cross-device kernel fusion
    inside the lock-step rounds; per-device results are identical
    either way).
``warehouse``
    The attack × scheme × countermeasure results warehouse:
    ``run`` executes the (quick or full) matrix at fleet scale and
    appends one record per cell to an append-only JSONL store,
    ``verify`` asserts seed-reproducibility of re-recorded keys,
    ``diff`` compares two stored commits cell by cell, and
    ``trajectory`` renders the longitudinal ``BENCH_*.json`` history
    (see ``docs/warehouse.md``).
``scenario``
    The environment & lifecycle scenario engine: ``run`` executes one
    scenario cell (scheme × trajectory family) ad hoc, ``corpus
    generate`` re-derives the seeded conformance corpus under
    ``tests/conformance/corpus/``, and ``conformance`` re-runs the
    committed corpus and asserts every cell lands in its pass-band
    (see ``docs/scenarios.md``).

Examples::

    python -m repro.cli table1
    python -m repro.cli attack sequential --seed 7
    python -m repro.cli attack group-based --rows 4 --cols 10
    python -m repro.cli classify --threshold 150e3
    python -m repro.cli analyze --devices 8
    python -m repro.cli fleet --devices 32 --trials 500 --workers 4
    python -m repro.cli fleet --devices 16 --attack sequential
    python -m repro.cli warehouse run --quick --summary \
        BENCH_warehouse.json
    python -m repro.cli warehouse diff HEAD~1 HEAD
    python -m repro.cli scenario run --scheme sequential --family ramp
    python -m repro.cli scenario conformance --quick \
        --check-reproducible
"""

from __future__ import annotations

import argparse
import functools
import sys
import time
from typing import List, Optional

import numpy as np

from repro.analysis import (
    inter_device_distances,
    pairwise_comparisons,
    permutation_entropy,
)
from repro.core import (
    DistillerPairingAttack,
    GroupBasedAttack,
    BatchOracle,
    SequentialPairingAttack,
    TempAwareAttack,
)
from repro.grouping import table1_rows
from repro.keygen import (
    DistillerPairingKeyGen,
    GroupBasedKeyGen,
    SequentialPairingKeyGen,
    TempAwareKeyGen,
)
from repro.fleet import Fleet
from repro.pairing import PairClass, TempAwareCooperative
from repro.puf import ROArray, ROArrayParams
from repro._rng import spawn

#: Constructions the ``attack`` subcommand understands.
CONSTRUCTIONS = ("sequential", "temp-aware", "group-based", "masking",
                 "neighbor-overlap")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Helper-data manipulation attacks on RO PUFs "
                    "(DATE 2014 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the regenerated Table I")

    classify = sub.add_parser(
        "classify", help="Fig. 3 pair classification of one device")
    classify.add_argument("--rows", type=int, default=8)
    classify.add_argument("--cols", type=int, default=16)
    classify.add_argument("--threshold", type=float, default=150e3)
    classify.add_argument("--t-min", type=float, default=-10.0)
    classify.add_argument("--t-max", type=float, default=80.0)
    classify.add_argument("--seed", type=int, default=0)

    attack = sub.add_parser(
        "attack", help="run a §VI attack against a fresh device")
    attack.add_argument("construction", choices=CONSTRUCTIONS)
    attack.add_argument("--rows", type=int, default=None)
    attack.add_argument("--cols", type=int, default=None)
    attack.add_argument("--seed", type=int, default=0)
    attack.add_argument("--method", choices=("paired", "sprt"),
                        default="paired",
                        help="distinguisher for the sequential attack")

    analyze = sub.add_parser(
        "analyze", help="population entropy and uniqueness statistics")
    analyze.add_argument("--rows", type=int, default=4)
    analyze.add_argument("--cols", type=int, default=10)
    analyze.add_argument("--devices", type=int, default=8)
    analyze.add_argument("--seed", type=int, default=0)

    fleet = sub.add_parser(
        "fleet", help="population Monte-Carlo failure-rate sweep")
    fleet.add_argument("--rows", type=int, default=8)
    fleet.add_argument("--cols", type=int, default=16)
    fleet.add_argument("--devices", type=int, default=16)
    fleet.add_argument("--trials", type=int, default=200)
    fleet.add_argument("--threshold", type=float, default=300e3)
    fleet.add_argument("--chunk", type=int, default=512,
                       help="trial block size (memory bound)")
    fleet.add_argument("--workers", type=int, default=1,
                       help="process-pool width; 0 = one per CPU "
                            "(results are identical for every value)")
    fleet.add_argument("--temperature", type=float, default=None,
                       help="operating temperature of the sweep (°C)")
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--attack", choices=("sequential", "group-based",
                                            "masking",
                                            "neighbor-overlap"),
                       default=None,
                       help="run a fleet-wide helper-data attack "
                            "campaign instead of the failure-rate "
                            "sweep")
    fleet.add_argument("--batch", type=int, default=None,
                       help="devices per lock-step campaign chunk "
                            "(default: one chunk per worker)")
    fleet.add_argument("--scalar-loop", action="store_true",
                       help="drive the campaign with the per-device "
                            "scalar loop instead of the lock-step "
                            "engine (identical results, slower)")
    fleet.add_argument("--fused", action=argparse.BooleanOptionalAction,
                       default=None,
                       help="cross-device completion fusion in "
                            "lock-step rounds: one ECC kernel call "
                            "per distinct code across the whole "
                            "frontier (default: on whenever the "
                            "lock-step engine runs; identical "
                            "results either way)")
    fleet.add_argument("--max-retries", type=int, default=None,
                       metavar="N",
                       help="run the sweep supervised: retry failed "
                            "chunks up to N times (see "
                            "docs/resilience.md)")
    fleet.add_argument("--chunk-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="supervised watchdog timeout per chunk "
                            "(implies supervision)")
    fleet.add_argument("--failure-report", default=None,
                       metavar="PATH",
                       help="write the supervised failure-taxonomy "
                            "report (JSON) here")
    fleet.add_argument("--check-reproducible", action="store_true",
                       help="rerun the sweep unsupervised on a "
                            "fresh same-seed fleet and fail unless "
                            "the results match bitwise")

    from repro.warehouse.cli import add_warehouse_parser
    add_warehouse_parser(sub)

    from repro.scenario.cli import add_scenario_parser
    add_scenario_parser(sub)

    from repro.service.cli import add_service_parser
    add_service_parser(sub)
    return parser


def _cmd_table1() -> int:
    print(f"{'order':<6} {'compact':<8} {'Kendall':<8}")
    for name, compact, kendall in table1_rows():
        print(f"{name:<6} {compact:<8} {kendall:<8}")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    params = ROArrayParams(rows=args.rows, cols=args.cols,
                           temp_slope_sigma=8e3)
    array = ROArray(params, rng=args.seed)
    scheme = TempAwareCooperative(args.t_min, args.t_max,
                                  args.threshold)
    profiles = scheme.profile_pairs(array, rng=args.seed)
    counts = {kind: 0 for kind in PairClass}
    for profile in profiles:
        counts[profile.kind] += 1
    print(f"device {args.rows}x{args.cols} seed {args.seed}, "
          f"T in [{args.t_min}, {args.t_max}] °C, "
          f"threshold {args.threshold / 1e3:.0f} kHz:")
    for kind in PairClass:
        print(f"  {kind.value:<12} {counts[kind]}")
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    construction = args.construction
    default_geometry = {"sequential": (8, 16), "temp-aware": (8, 16),
                        "group-based": (4, 10), "masking": (4, 10),
                        "neighbor-overlap": (4, 10)}
    rows, cols = default_geometry[construction]
    rows = args.rows if args.rows is not None else rows
    cols = args.cols if args.cols is not None else cols

    if construction == "temp-aware":
        params = ROArrayParams(rows=rows, cols=cols,
                               temp_slope_sigma=8e3)
    else:
        params = ROArrayParams(rows=rows, cols=cols)
    array = ROArray(params, rng=1000 + args.seed)

    if construction == "sequential":
        keygen = SequentialPairingKeyGen(threshold=300e3)
        helper, key = keygen.enroll(array, rng=args.seed)
        oracle = BatchOracle(array, keygen)
        result = SequentialPairingAttack(oracle, keygen, helper).run(
            method=args.method)
        recovered = (result.key is not None
                     and np.array_equal(result.key, key))
    elif construction == "temp-aware":
        keygen = TempAwareKeyGen(t_min=-10, t_max=80, threshold=150e3)
        helper, key = keygen.enroll(array, rng=args.seed)
        oracle = BatchOracle(array, keygen)
        outcome = TempAwareAttack(oracle, keygen, helper).run()
        n_good = len(helper.scheme.good_indices)
        truth = key[n_good:]
        recovered = (outcome.resolved_fraction == 1.0
                     and np.array_equal(outcome.coop_relations,
                                        truth ^ truth[0]))
        result = outcome
        key = truth
    elif construction == "group-based":
        keygen = GroupBasedKeyGen(group_threshold=120e3)
        helper, key = keygen.enroll(array, rng=args.seed)
        oracle = BatchOracle(array, keygen)
        result = GroupBasedAttack(oracle, keygen, helper, rows,
                                  cols).run()
        recovered = bool(np.array_equal(result.key, key))
    else:
        mode = ("masking" if construction == "masking"
                else "neighbor-overlap")
        keygen = DistillerPairingKeyGen(rows, cols, pairing_mode=mode,
                                        k=5)
        helper, key = keygen.enroll(array, rng=args.seed)
        oracle = BatchOracle(array, keygen)
        result = DistillerPairingAttack(oracle, keygen, helper, rows,
                                        cols).run()
        recovered = bool(np.array_equal(result.key, key))

    print(f"construction : {construction} ({rows}x{cols}, "
          f"seed {args.seed})")
    print(f"secret bits  : {key.size}")
    print(f"recovered    : {'yes' if recovered else 'NO'}")
    print(f"oracle calls : {result.queries}")
    return 0 if recovered else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    params = ROArrayParams(rows=args.rows, cols=args.cols)
    keygen = DistillerPairingKeyGen(args.rows, args.cols,
                                    pairing_mode="neighbor-disjoint")
    keys = []
    for child in spawn(args.seed, args.devices):
        device = ROArray(params, rng=child)
        _, key = keygen.enroll(device, rng=child)
        keys.append(key)
    keys = np.stack(keys)
    n = params.n
    print(f"{args.devices} devices, {args.rows}x{args.cols} arrays "
          f"(N = {n}):")
    print(f"  raw pairwise comparisons : {pairwise_comparisons(n)}")
    print(f"  entropy budget log2(N!)  : {permutation_entropy(n):.1f} "
          f"bits")
    print(f"  key bits per device      : {keys.shape[1]}")
    inter = inter_device_distances(keys)
    print(f"  inter-device distance    : {inter.mean():.3f} "
          f"(ideal 0.5)")
    return 0


def _fleet_build(args: argparse.Namespace):
    """A fresh fleet + enrollment stream for one ``fleet`` run.

    Factored out so ``--check-reproducible`` can rebuild an identical
    same-seed population for the unsupervised reference run (sweep
    substreams are consumed per call, so re-sweeping the same
    ``Fleet`` object would draw different noise).
    """
    params = ROArrayParams(rows=args.rows, cols=args.cols)
    # One user-facing seed, two independent purposes: split it so the
    # enrollment streams can never collide with the manufacturing
    # streams (identical seeds spawn identical children).
    manufacture_rng, enroll_rng = spawn(args.seed, 2)
    return Fleet(params, size=args.devices,
                 seed=manufacture_rng), enroll_rng


def _fleet_supervision(args: argparse.Namespace):
    """A supervisor when any resilience knob was set, else ``None``."""
    if args.max_retries is None and args.chunk_timeout is None:
        return None
    from repro.fleet import RetryPolicy, Supervisor
    retries = 2 if args.max_retries is None else args.max_retries
    return Supervisor(RetryPolicy(max_retries=retries,
                                  chunk_timeout=args.chunk_timeout))


def _fleet_wrapup(args: argparse.Namespace, supervision) -> None:
    """Shared supervised-run reporting for both fleet branches."""
    if supervision is not None and supervision.failures:
        for line in supervision.summary_lines():
            print(f"  supervised {line}")
    if args.failure_report and supervision is not None:
        path = supervision.write_report(args.failure_report)
        print(f"  failure report      : {path}")


def _cmd_fleet_attack(args: argparse.Namespace) -> int:
    """Fleet-wide attack campaign branch of the ``fleet`` subcommand."""
    from repro.fleet import (
        DistillerAttackFactory,
        GroupAttackFactory,
        sequential_attack_factory,
    )

    rows, cols = args.rows, args.cols
    if args.attack == "sequential":
        keygen_factory = functools.partial(SequentialPairingKeyGen,
                                           threshold=args.threshold)
        attack_factory = sequential_attack_factory
    elif args.attack == "group-based":
        keygen_factory = functools.partial(GroupBasedKeyGen,
                                           group_threshold=120e3)
        attack_factory = GroupAttackFactory(rows, cols)
    else:
        keygen_factory = functools.partial(DistillerPairingKeyGen,
                                           rows, cols,
                                           pairing_mode=args.attack,
                                           k=5)
        attack_factory = DistillerAttackFactory(rows, cols)

    def campaign(supervision):
        fleet, enroll_rng = _fleet_build(args)
        enrollment = fleet.enroll(keygen_factory, seed=enroll_rng,
                                  workers=args.workers)
        return fleet.attack_success(
            enrollment, attack_factory, workers=args.workers,
            lockstep=not args.scalar_loop, batch=args.batch,
            fused=args.fused, supervision=supervision)

    supervision = _fleet_supervision(args)
    start = time.perf_counter()
    recovered, queries = campaign(supervision)
    elapsed = time.perf_counter() - start
    if args.scalar_loop:
        engine = "scalar per-device loop"
    else:
        fused = args.fused if args.fused is not None else True
        engine = ("lock-step campaign (fused kernels)" if fused
                  else "lock-step campaign (per-device kernels)")
    print(f"fleet attack campaign: {args.attack} x {args.devices} "
          f"devices ({rows}x{cols}, seed {args.seed})")
    print(f"  engine              : {engine} "
          f"(workers={args.workers})")
    print(f"  keys recovered      : {int(recovered.sum())}/"
          f"{args.devices}")
    print(f"  oracle queries      : {int(queries.sum())} total, "
          f"{queries.mean():.1f}/device")
    throughput = args.devices / elapsed if elapsed else 0.0
    print(f"  campaign time       : {elapsed:.2f} s "
          f"({throughput:.2f} devices/s)")
    _fleet_wrapup(args, supervision)
    if args.check_reproducible:
        reference_recovered, reference_queries = campaign(None)
        if not (np.array_equal(recovered, reference_recovered)
                and np.array_equal(queries, reference_queries)):
            print("  reproducibility     : FAIL - campaign results "
                  "drifted from the fault-free reference run")
            return 1
        print("  reproducibility     : ok (bitwise-identical to "
              "the fault-free reference run)")
    return 0 if recovered.all() else 1


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.keygen.base import OperatingPoint

    if args.attack is not None:
        return _cmd_fleet_attack(args)
    # functools.partial keeps the factory picklable for --workers > 1.
    factory = functools.partial(SequentialPairingKeyGen,
                                threshold=args.threshold)
    op = (OperatingPoint(temperature=args.temperature)
          if args.temperature is not None else None)

    def sweep(supervision):
        fleet, enroll_rng = _fleet_build(args)
        enrollment = fleet.enroll(factory, seed=enroll_rng,
                                  workers=args.workers)
        rates = fleet.failure_rates(enrollment, trials=args.trials,
                                    op=op, chunk=args.chunk,
                                    workers=args.workers,
                                    supervision=supervision)
        return enrollment, rates

    supervision = _fleet_supervision(args)
    start = time.perf_counter()
    enrollment, rates = sweep(supervision)
    elapsed = time.perf_counter() - start
    throughput = args.devices * args.trials / elapsed if elapsed else 0
    print(f"fleet {args.devices} devices "
          f"({args.rows}x{args.cols}, seed {args.seed}), "
          f"{args.trials} trials/device, workers={args.workers}")
    print(f"  key bits (min/max)  : {enrollment.key_bits.min()}/"
          f"{enrollment.key_bits.max()}")
    print(f"  key uniqueness      : {enrollment.uniqueness():.3f} "
          f"(ideal 0.5)")
    print(f"  P(fail) mean/max    : {rates.mean():.4f} / "
          f"{rates.max():.4f}")
    print(f"  sweep time          : {elapsed:.2f} s "
          f"({throughput:,.0f} reconstructions/s)")
    _fleet_wrapup(args, supervision)
    if args.check_reproducible:
        _, reference = sweep(None)
        if not np.array_equal(rates, reference):
            print("  reproducibility     : FAIL - failure rates "
                  "drifted from the fault-free reference run")
            return 1
        print("  reproducibility     : ok (bitwise-identical to "
              "the fault-free reference run)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "table1":
        return _cmd_table1()
    if args.command == "classify":
        return _cmd_classify(args)
    if args.command == "attack":
        return _cmd_attack(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    if args.command == "warehouse":
        from repro.warehouse.cli import run_warehouse
        return run_warehouse(args)
    if args.command == "scenario":
        from repro.scenario.cli import run_scenario
        return run_scenario(args)
    if args.command == "service":
        from repro.service.cli import run_service
        return run_service(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
