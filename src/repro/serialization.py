"""Precisely specified binary storage formats for helper data.

Paper §VII-C: *"many proposals are rather vague about their use of
helper data.  The precise storage format, parsing procedure and/or
sanity checks are typically not specified.  Although subtle differences
might impact security tremendously."*  This module is the library's
answer for its own helper-data types: a fully specified, versioned,
length-checked binary format with a strict parser.

Container layout (all integers little-endian)::

    offset  size  field
    0       4     magic  b"ROHD"
    4       1     format version (currently 1)
    5       1     payload type tag (TAG_* constants)
    6       4     payload length in bytes (u32)
    10      n     payload (type-specific, see per-type functions)

The parser rejects wrong magic, unknown versions/tags, truncated input
and trailing bytes — every malformed case is a distinct, explicit
:class:`FormatError`, never silent truncation or best-effort reads.

Bit vectors are stored as a u32 bit count followed by the bits packed
MSB-first into ``ceil(n / 8)`` bytes (``numpy.packbits`` convention).
"""

from __future__ import annotations

import struct
from typing import List

import numpy as np

from repro.distiller.distiller import DistillerHelper
from repro.ecc.sketch import SketchData
from repro.fuzzy.extractor import FuzzyExtractorHelper
from repro.grouping.algorithm import GroupingHelper
from repro.keygen.distiller_pairing import DistillerPairingHelper
from repro.keygen.fuzzy_keygen import FuzzyKeyHelper
from repro.keygen.group_based import GroupBasedKeyHelper
from repro.keygen.sequential import SequentialKeyHelper
from repro.keygen.temp_aware import TempAwareKeyHelper
from repro.pairing.masking import MaskingHelper
from repro.pairing.sequential import SequentialPairingHelper
from repro.pairing.temp_aware import CooperationEntry, TempAwareHelper

MAGIC = b"ROHD"
VERSION = 1

TAG_SEQUENTIAL = 1
TAG_GROUP_BASED = 2
TAG_TEMP_AWARE = 3
TAG_MASKING = 4
TAG_DISTILLER_PAIRING = 5
TAG_FUZZY = 6
#: Not a helper bundle: an enrolled key bit vector (the enrollment
#: registry stores keys through the same container discipline).
TAG_KEY_BITS = 7


class FormatError(ValueError):
    """Helper-data blob violates the specified storage format."""


# ----------------------------------------------------------------------
# primitive readers/writers


class _Writer:
    def __init__(self):
        self._parts: List[bytes] = []

    def u16(self, value: int) -> None:
        if not 0 <= value < (1 << 16):
            raise FormatError(f"u16 out of range: {value}")
        self._parts.append(struct.pack("<H", value))

    def u32(self, value: int) -> None:
        if not 0 <= value < (1 << 32):
            raise FormatError(f"u32 out of range: {value}")
        self._parts.append(struct.pack("<I", value))

    def f64(self, value: float) -> None:
        self._parts.append(struct.pack("<d", float(value)))

    def raw(self, data: bytes) -> None:
        self._parts.append(bytes(data))

    def bits(self, bits: np.ndarray) -> None:
        bits = np.asarray(bits, dtype=np.uint8)
        self.u32(bits.size)
        self.raw(np.packbits(bits).tobytes() if bits.size else b"")

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class _Reader:
    def __init__(self, data: bytes):
        self._data = data
        self._offset = 0

    def _take(self, count: int) -> bytes:
        if self._offset + count > len(self._data):
            raise FormatError("truncated helper data")
        chunk = self._data[self._offset:self._offset + count]
        self._offset += count
        return chunk

    def u16(self) -> int:
        return struct.unpack("<H", self._take(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self._take(8))[0]

    def raw(self, count: int) -> bytes:
        return self._take(count)

    def bits(self) -> np.ndarray:
        count = self.u32()
        packed = self._take((count + 7) // 8)
        if count == 0:
            return np.zeros(0, dtype=np.uint8)
        return np.unpackbits(np.frombuffer(packed,
                                           dtype=np.uint8))[:count]

    def finish(self) -> None:
        if self._offset != len(self._data):
            raise FormatError(
                f"{len(self._data) - self._offset} trailing bytes")


def _frame(tag: int, payload: bytes) -> bytes:
    return MAGIC + bytes([VERSION, tag]) + struct.pack(
        "<I", len(payload)) + payload


def _unframe(blob: bytes, expected_tag: int) -> _Reader:
    if len(blob) < 10:
        raise FormatError("blob shorter than the container header")
    if blob[:4] != MAGIC:
        raise FormatError("bad magic")
    if blob[4] != VERSION:
        raise FormatError(f"unsupported format version {blob[4]}")
    if blob[5] != expected_tag:
        raise FormatError(
            f"payload tag {blob[5]} does not match expected "
            f"{expected_tag}")
    length = struct.unpack("<I", blob[6:10])[0]
    if len(blob) != 10 + length:
        raise FormatError("payload length field disagrees with blob "
                          "size")
    return _Reader(blob[10:])


# ----------------------------------------------------------------------
# sequential pairing


def dump_sequential(helper: SequentialKeyHelper) -> bytes:
    """Serialise the full sequential-pairing helper bundle.

    Payload: u16 pair count, then per pair two u16 oscillator indices
    *in stored order* (the order is security-relevant, §VII-C), the
    sketch bit vector, and the 16-byte key-check digest.
    """
    writer = _Writer()
    writer.u16(len(helper.pairing.pairs))
    for a, b in helper.pairing.pairs:
        writer.u16(a)
        writer.u16(b)
    writer.bits(helper.sketch.payload)
    if len(helper.key_check) != 16:
        raise FormatError("key check must be 16 bytes")
    writer.raw(helper.key_check)
    return _frame(TAG_SEQUENTIAL, writer.getvalue())


def load_sequential(blob: bytes) -> SequentialKeyHelper:
    """Parse a sequential-pairing helper bundle (strict)."""
    reader = _unframe(blob, TAG_SEQUENTIAL)
    count = reader.u16()
    pairs = tuple((reader.u16(), reader.u16()) for _ in range(count))
    payload = reader.bits()
    key_check = reader.raw(16)
    reader.finish()
    return SequentialKeyHelper(SequentialPairingHelper(pairs),
                               SketchData(payload), key_check)


# ----------------------------------------------------------------------
# group-based


def dump_group_based(helper: GroupBasedKeyHelper) -> bytes:
    """Serialise the group-based helper bundle (Fig. 4 NVM contents).

    Payload: u16 polynomial degree + f64 coefficients; f64 grouping
    threshold, u16 group count, per group u16 size + u16 member
    indices; sketch bits; 16-byte key check.
    """
    writer = _Writer()
    writer.u16(helper.distiller.degree)
    for coefficient in helper.distiller.coefficients:
        writer.f64(coefficient)
    writer.f64(helper.grouping.threshold)
    writer.u16(len(helper.grouping.groups))
    for group in helper.grouping.groups:
        writer.u16(len(group))
        for member in group:
            writer.u16(member)
    writer.bits(helper.sketch.payload)
    if len(helper.key_check) != 16:
        raise FormatError("key check must be 16 bytes")
    writer.raw(helper.key_check)
    return _frame(TAG_GROUP_BASED, writer.getvalue())


def load_group_based(blob: bytes) -> GroupBasedKeyHelper:
    """Parse a group-based helper bundle (strict)."""
    from repro.puf.variation import n_terms

    reader = _unframe(blob, TAG_GROUP_BASED)
    degree = reader.u16()
    coefficients = np.array([reader.f64()
                             for _ in range(n_terms(degree))])
    threshold = reader.f64()
    group_count = reader.u16()
    groups = []
    for _ in range(group_count):
        size = reader.u16()
        groups.append(tuple(reader.u16() for _ in range(size)))
    payload = reader.bits()
    key_check = reader.raw(16)
    reader.finish()
    return GroupBasedKeyHelper(
        DistillerHelper(degree, coefficients),
        GroupingHelper(tuple(groups), threshold),
        SketchData(payload), key_check)


# ----------------------------------------------------------------------
# temperature-aware


def dump_temp_aware(helper: TempAwareKeyHelper) -> bytes:
    """Serialise the temperature-aware helper bundle.

    Payload: f64 t_min/t_max/threshold; u16 pair count + pairs; u16
    good count + indices; u16 cooperation count + per record (u16 pair
    index, f64 t_low, f64 t_high, u16 good index, u16 assist index);
    sketch bits; 16-byte key check.
    """
    scheme = helper.scheme
    writer = _Writer()
    writer.f64(scheme.t_min)
    writer.f64(scheme.t_max)
    writer.f64(scheme.threshold)
    writer.u16(len(scheme.pairs))
    for a, b in scheme.pairs:
        writer.u16(a)
        writer.u16(b)
    writer.u16(len(scheme.good_indices))
    for index in scheme.good_indices:
        writer.u16(index)
    writer.u16(len(scheme.cooperation))
    for entry in scheme.cooperation:
        writer.u16(entry.pair_index)
        writer.f64(entry.t_low)
        writer.f64(entry.t_high)
        writer.u16(entry.good_index)
        writer.u16(entry.assist_index)
    writer.bits(helper.sketch.payload)
    if len(helper.key_check) != 16:
        raise FormatError("key check must be 16 bytes")
    writer.raw(helper.key_check)
    return _frame(TAG_TEMP_AWARE, writer.getvalue())


def load_temp_aware(blob: bytes) -> TempAwareKeyHelper:
    """Parse a temperature-aware helper bundle (strict)."""
    reader = _unframe(blob, TAG_TEMP_AWARE)
    t_min = reader.f64()
    t_max = reader.f64()
    threshold = reader.f64()
    pair_count = reader.u16()
    pairs = tuple((reader.u16(), reader.u16())
                  for _ in range(pair_count))
    good_count = reader.u16()
    good = tuple(reader.u16() for _ in range(good_count))
    coop_count = reader.u16()
    records = []
    for _ in range(coop_count):
        records.append(CooperationEntry(
            pair_index=reader.u16(), t_low=reader.f64(),
            t_high=reader.f64(), good_index=reader.u16(),
            assist_index=reader.u16()))
    payload = reader.bits()
    key_check = reader.raw(16)
    reader.finish()
    scheme = TempAwareHelper(pairs, good, tuple(records), t_min, t_max,
                             threshold)
    return TempAwareKeyHelper(scheme, SketchData(payload), key_check)


# ----------------------------------------------------------------------
# masking selections (scheme-level helper, e.g. inside the distiller
# composition)


def dump_masking(helper: MaskingHelper) -> bytes:
    """Serialise a 1-out-of-k selection vector."""
    writer = _Writer()
    writer.u16(helper.k)
    writer.u16(len(helper.selected))
    for index in helper.selected:
        writer.u16(index)
    return _frame(TAG_MASKING, writer.getvalue())


def load_masking(blob: bytes) -> MaskingHelper:
    """Parse a 1-out-of-k selection vector (strict)."""
    reader = _unframe(blob, TAG_MASKING)
    k = reader.u16()
    count = reader.u16()
    selected = tuple(reader.u16() for _ in range(count))
    reader.finish()
    return MaskingHelper(k, selected)


# ----------------------------------------------------------------------
# distiller + pairing composition


def dump_distiller_pairing(helper: DistillerPairingHelper) -> bytes:
    """Serialise the composed distiller + pairing helper bundle.

    Payload: u16 polynomial degree + f64 coefficients; u16 masking
    presence flag (0 or 1) followed, when present, by u16 ``k``, u16
    selection count and the u16 selection indices; sketch bits; 16-byte
    key check.
    """
    writer = _Writer()
    writer.u16(helper.distiller.degree)
    for coefficient in helper.distiller.coefficients:
        writer.f64(coefficient)
    if helper.masking is None:
        writer.u16(0)
    else:
        writer.u16(1)
        writer.u16(helper.masking.k)
        writer.u16(len(helper.masking.selected))
        for index in helper.masking.selected:
            writer.u16(index)
    writer.bits(helper.sketch.payload)
    if len(helper.key_check) != 16:
        raise FormatError("key check must be 16 bytes")
    writer.raw(helper.key_check)
    return _frame(TAG_DISTILLER_PAIRING, writer.getvalue())


def load_distiller_pairing(blob: bytes) -> DistillerPairingHelper:
    """Parse a composed distiller + pairing helper bundle (strict)."""
    from repro.puf.variation import n_terms

    reader = _unframe(blob, TAG_DISTILLER_PAIRING)
    degree = reader.u16()
    coefficients = np.array([reader.f64()
                             for _ in range(n_terms(degree))])
    flag = reader.u16()
    if flag not in (0, 1):
        raise FormatError(f"masking presence flag must be 0 or 1, "
                          f"got {flag}")
    masking = None
    if flag:
        k = reader.u16()
        count = reader.u16()
        masking = MaskingHelper(k, tuple(reader.u16()
                                         for _ in range(count)))
    payload = reader.bits()
    key_check = reader.raw(16)
    reader.finish()
    return DistillerPairingHelper(DistillerHelper(degree, coefficients),
                                  masking, SketchData(payload),
                                  key_check)


# ----------------------------------------------------------------------
# fuzzy extractor (reference solution)


def dump_fuzzy(helper: FuzzyKeyHelper) -> bytes:
    """Serialise the fuzzy-extractor helper bundle (Fig. 7 baseline).

    Payload: sketch bits; hash seed bits; u16 extracted key length;
    16-byte key check.
    """
    writer = _Writer()
    writer.bits(helper.extractor.sketch.payload)
    writer.bits(helper.extractor.hash_seed)
    writer.u16(helper.extractor.out_bits)
    if len(helper.key_check) != 16:
        raise FormatError("key check must be 16 bytes")
    writer.raw(helper.key_check)
    return _frame(TAG_FUZZY, writer.getvalue())


def load_fuzzy(blob: bytes) -> FuzzyKeyHelper:
    """Parse a fuzzy-extractor helper bundle (strict)."""
    reader = _unframe(blob, TAG_FUZZY)
    payload = reader.bits()
    hash_seed = reader.bits()
    out_bits = reader.u16()
    key_check = reader.raw(16)
    reader.finish()
    return FuzzyKeyHelper(
        FuzzyExtractorHelper(SketchData(payload), hash_seed, out_bits),
        key_check)


# ----------------------------------------------------------------------
# enrolled key bits (registry storage, not a helper bundle)


def dump_key_bits(key: np.ndarray) -> bytes:
    """Serialise an enrolled key bit vector through the container.

    The enrollment registry persists keys next to helper bundles; the
    same magic/version/tag/length framing applies so a truncated or
    mis-tagged key file fails parsing instead of yielding a wrong key.
    """
    writer = _Writer()
    writer.bits(key)
    return _frame(TAG_KEY_BITS, writer.getvalue())


def load_key_bits(blob: bytes) -> np.ndarray:
    """Parse an enrolled key bit vector (strict)."""
    reader = _unframe(blob, TAG_KEY_BITS)
    key = reader.bits()
    reader.finish()
    return key


# ----------------------------------------------------------------------
# type/tag dispatch

#: ``(tag, helper type, dump, load)`` rows — the single source of truth
#: for which helper bundles have a specified storage format.
_CODECS = (
    (TAG_SEQUENTIAL, SequentialKeyHelper, dump_sequential,
     load_sequential),
    (TAG_GROUP_BASED, GroupBasedKeyHelper, dump_group_based,
     load_group_based),
    (TAG_TEMP_AWARE, TempAwareKeyHelper, dump_temp_aware,
     load_temp_aware),
    (TAG_MASKING, MaskingHelper, dump_masking, load_masking),
    (TAG_DISTILLER_PAIRING, DistillerPairingHelper,
     dump_distiller_pairing, load_distiller_pairing),
    (TAG_FUZZY, FuzzyKeyHelper, dump_fuzzy, load_fuzzy),
)


def supports_helper(helper: object) -> bool:
    """Whether :func:`dump_helper` has a format for *helper*'s type."""
    return any(isinstance(helper, cls) for _, cls, _, _ in _CODECS)


def dump_helper(helper: object) -> bytes:
    """Serialise any supported helper bundle (dispatch on type).

    The results warehouse uses this to fingerprint fleet enrollments
    through the *specified* byte format rather than in-memory object
    identity, so a fingerprint is stable across process boundaries
    and library refactors.  Raises :class:`FormatError` for helper
    types without a registered format (callers can probe with
    :func:`supports_helper`).
    """
    for _, cls, dump, _ in _CODECS:
        if isinstance(helper, cls):
            return dump(helper)
    raise FormatError(
        f"no storage format registered for {type(helper).__name__}")


def load_helper(blob: bytes) -> object:
    """Parse any supported helper bundle (dispatch on the tag byte).

    The container is validated by the per-type strict parser; this
    wrapper only routes on the payload tag, rejecting unknown tags and
    blobs too short to carry the container header.
    """
    if len(blob) < 10 or blob[:4] != MAGIC:
        raise FormatError("blob is not a ROHD helper-data container")
    tag = blob[5]
    for known, _, _, load in _CODECS:
        if known == tag:
            return load(blob)
    raise FormatError(f"unknown payload tag {tag}")
