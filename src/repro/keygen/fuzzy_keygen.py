"""Key generator built on the fuzzy extractor (paper Fig. 7).

The reference architecture the paper advocates: RO array → response bits
(disjoint neighbour chain) → secure sketch (ECC) → universal hash →
key.  Contrary to the attacked constructions, the entropy problem is
handled *after* error correction by the hash, so no response bit is ever
exposed through a structural helper-data channel of the §VI kind: every
helper bit flip either is absorbed by the ECC/hash pipeline uniformly or
fails the whole reconstruction, independent of individual key bits.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

import numpy as np

from repro._rng import RNGLike, ensure_rng
from repro.ecc.sketch import CodeOffsetSketch
from repro.fuzzy.extractor import FuzzyExtractor, FuzzyExtractorHelper
from repro.fuzzy.toeplitz import ToeplitzHash
from repro.keygen.base import (
    CodeProvider,
    KeyGenerator,
    OperatingPoint,
    ReconstructionFailure,
    bch_provider,
    key_check_digest,
)
from repro.keygen.batch import (
    ConstantEvaluator,
    ResponseBitEvaluator,
    SketchCompletion,
)
from repro.pairing.base import response_bits, response_bits_batch
from repro.pairing.neighbor import neighbor_chain_pairs
from repro.puf.measurement import enroll_frequencies
from repro.puf.ro_array import ROArray


@dataclass(frozen=True)
class FuzzyKeyHelper:
    """Public helper data: extractor helper plus key-check commitment."""

    extractor: FuzzyExtractorHelper
    key_check: bytes

    def with_extractor(self, extractor: FuzzyExtractorHelper
                       ) -> "FuzzyKeyHelper":
        """Manipulated copy with replaced extractor helper data."""
        return replace(self, extractor=extractor)


@dataclass(frozen=True)
class _ToeplitzAssembler:
    """Picklable key assembly: recovered response → hashed key bits."""

    hasher: ToeplitzHash

    def __call__(self, recovered: np.ndarray) -> np.ndarray:
        """Hash a recovered response down to the extracted key."""
        return self.hasher(recovered)


class FuzzyExtractorKeyGen(KeyGenerator):
    """Device model of the Fig. 7 reference solution."""

    def __init__(self, rows: int, cols: int, out_bits: int = 128,
                 code_provider: CodeProvider = None,
                 enrollment_samples: int = 9):
        self._rows = int(rows)
        self._cols = int(cols)
        self._pairs = neighbor_chain_pairs(rows, cols, overlap=False)
        self._out_bits = int(out_bits)
        self._code_provider = code_provider or bch_provider(5)
        self._samples = int(enrollment_samples)
        bits = len(self._pairs)
        if self._out_bits > bits:
            raise ValueError(
                f"cannot extract {out_bits} bits from {bits} response "
                f"bits")
        self._extractor = FuzzyExtractor(
            CodeOffsetSketch(self._code_provider(bits), bits),
            self._out_bits)

    @property
    def extractor(self) -> FuzzyExtractor:
        """The underlying fuzzy extractor."""
        return self._extractor

    @property
    def bits(self) -> int:
        """Raw response length in bits."""
        return len(self._pairs)

    def enroll(self, array: ROArray, rng: RNGLike = None
               ) -> Tuple[FuzzyKeyHelper, np.ndarray]:
        """One-time enrollment; returns ``(helper, key_bits)``."""
        if (array.params.rows, array.params.cols) != (self._rows,
                                                      self._cols):
            raise ValueError("array layout does not match the key "
                             "generator geometry")
        gen = ensure_rng(rng)
        freqs = enroll_frequencies(array, self._samples, rng=gen)
        response = response_bits(freqs, self._pairs)
        key, extractor_helper = self._extractor.generate(response, gen)
        return FuzzyKeyHelper(extractor_helper,
                              key_check_digest(key)), key

    def reconstruct_from_frequencies(
            self, array: ROArray, freqs: np.ndarray,
            helper: FuzzyKeyHelper,
            op: OperatingPoint = OperatingPoint()) -> np.ndarray:
        """Regenerate the key from one ``(n,)`` measurement row."""
        response = response_bits(freqs, self._pairs)
        try:
            key = self._decode_or_fail(
                lambda: self._extractor.reproduce(response,
                                                  helper.extractor))
        except ValueError as exc:
            raise ReconstructionFailure(str(exc)) from exc
        return self._finish(key, helper.key_check)

    def batch_evaluator(self, array: ROArray, helper: FuzzyKeyHelper,
                        op: OperatingPoint = OperatingPoint()):
        """Vectorized evaluator: one decode per distinct pattern.

        The completion recovers the raw response through the code-offset
        sketch (the fusable decode kernel) and assembles the key with
        the helper's Toeplitz hash; a malformed hash seed fails every
        reconstruction observably, as on the scalar path.
        """
        pairs = self._pairs
        sketch = self._extractor.sketch
        extractor_helper = helper.extractor
        try:
            hasher = ToeplitzHash(extractor_helper.hash_seed,
                                  sketch.response_length,
                                  extractor_helper.out_bits)
        except ValueError:
            return ConstantEvaluator(False)

        def extract(freqs: np.ndarray) -> np.ndarray:
            return response_bits_batch(freqs, pairs)

        completion = SketchCompletion(
            sketch, extractor_helper.sketch, helper.key_check,
            assemble=_ToeplitzAssembler(hasher))
        return ResponseBitEvaluator(extract, completion)
