"""Vectorized success evaluation for batched oracle queries.

The helper-data attacks of paper §VI only ever observe one bit per
reconstruction attempt: did the device regenerate its key?  Estimating
the failure *rates* that drive every distinguisher therefore reduces to
mapping a batch of measurement vectors to a batch of success booleans —
and for every construction that outcome is a deterministic function of
the (discrete) response-bit vector the measurement produces.

That structure is what a :class:`BatchEvaluator` exploits: response
bits for a whole ``(B, n)`` measurement block are extracted in one
NumPy pass, and the expensive completion (ECC decode + key check) runs
once per *distinct* bit pattern instead of once per query.  In the
engineered Fig. 5 regimes only a handful of marginal bits ever flip, so
a block of hundreds of queries typically needs single-digit decodes.

Two execution protocols share that machinery (``docs/evaluators.md``):

* **One-shot** — :meth:`BatchEvaluator.outcomes` runs extraction,
  dedup and completion in a single call per device.  This is the
  legacy path, kept as the executable equivalence reference.
* **Two-phase** — :meth:`BatchEvaluator.plan` stops after extraction
  and dedup, returning an :class:`EvalPlan` that *declares* its kernel
  work (a :class:`~repro.ecc.kernel.KernelWorkload` keyed by the
  shared code/sketch); the caller runs the kernel — possibly fused
  with the same-key workloads of many other devices via
  :func:`repro.ecc.kernel.run_kernels` — and
  :meth:`EvalPlan.finalize` unwinds the outputs back into per-query
  success booleans.  Outcomes are bitwise-identical either way, for
  every batch composition.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro._dedup import iter_unique_rows
from repro.ecc.base import DecodingFailure
from repro.ecc.kernel import KernelWorkload, run_kernels
from repro.ecc.sketch import SecureSketch, SketchData
from repro.keygen.base import key_check_digest

#: Completion: response-bit vector -> reconstruction success.
CompletionFn = Callable[[np.ndarray], bool]
#: Batch completion: (U, bits) distinct-pattern matrix -> U successes.
BatchCompletionFn = Callable[[np.ndarray], np.ndarray]
#: Extraction: (B, n) measurement batch -> (B, bits) response matrix.
ExtractionFn = Callable[[np.ndarray], np.ndarray]
#: Masked extraction: (B, n) batch -> ((B, bits) matrix, (B,) validity).
MaskedExtractionFn = Callable[[np.ndarray],
                              Tuple[np.ndarray, np.ndarray]]
#: Environment-aware masked extraction: ((B, n) batch, per-row
#: ambient sample) -> ((B, bits) matrix, (B,) validity).
EnvExtractionFn = Callable[[np.ndarray, object],
                           Tuple[np.ndarray, np.ndarray]]


# ----------------------------------------------------------------------
# completions: distinct response pattern -> reconstruction success


class Completion(abc.ABC):
    """Finishes distinct response patterns into success booleans.

    A completion encapsulates everything *after* bit extraction and
    dedup: sketch recovery, key assembly and the application key
    check.  It speaks both protocols — the one-shot
    :meth:`complete_batch` (and scalar :meth:`complete`) reference
    path, and the two-phase :meth:`prepare`/:meth:`finish` split whose
    kernel step can be fused across devices.  The base implementation
    declares no kernel work: :meth:`prepare` defers the patterns and
    :meth:`finish` falls through to :meth:`complete_batch`.
    """

    def kernel_key(self) -> "tuple | None":
        """Structural identity of the kernel work, or ``None``."""
        return None

    def prepare(self, patterns: np.ndarray
                ) -> Tuple[Optional[KernelWorkload], object]:
        """Phase 1: declare kernel work for fresh distinct patterns.

        Returns ``(workload, state)``; the workload may be ``None``
        when no (fusable) kernel work exists, and *state* carries
        whatever :meth:`finish` needs besides the kernel outputs.
        """
        return None, patterns

    def finish(self, state: object, outputs: "Optional[tuple]"
               ) -> np.ndarray:
        """Phase 3: per-pattern successes from state + kernel outputs.

        Must be bitwise-identical to ``complete_batch`` on the
        patterns that were prepared.
        """
        return self.complete_batch(state)

    @abc.abstractmethod
    def complete(self, bits_row: np.ndarray) -> bool:
        """Scalar reference: success of one response-bit vector."""

    def complete_batch(self, patterns: np.ndarray) -> np.ndarray:
        """One-shot reference: successes of a distinct-pattern batch."""
        return np.array([self.complete(row) for row in patterns],
                        dtype=bool)


class CallableCompletion(Completion):
    """Adapter wrapping plain completion callables (no kernel work).

    Keeps schemes and tests that hand bare ``complete`` /
    ``complete_batch`` functions to the evaluators working; such
    completions run un-fused (their plans declare no workload).
    """

    def __init__(self, complete: CompletionFn,
                 complete_batch: Optional[BatchCompletionFn] = None):
        self._complete = complete
        self._complete_batch = complete_batch

    def complete(self, bits_row: np.ndarray) -> bool:
        """Scalar reference: success of one response-bit vector."""
        return bool(self._complete(bits_row))

    def complete_batch(self, patterns: np.ndarray) -> np.ndarray:
        """Batch callable when provided, else the scalar loop."""
        if self._complete_batch is None:
            return super().complete_batch(patterns)
        return np.asarray(self._complete_batch(patterns), dtype=bool)


@dataclass(frozen=True)
class SketchCompletion(Completion):
    """The common scheme completion: sketch recovery + key check.

    Every sketch-based construction finishes a response pattern the
    same way — recover the enrolled response through the secure
    sketch, optionally assemble the key from it (*assemble*; e.g.
    Kendall packing or the fuzzy extractor's Toeplitz hash), and
    compare the key's digest against the public commitment.  The
    two-phase split delegates to the sketch's
    :meth:`~repro.ecc.sketch.SecureSketch.plan_recover` /
    ``finish_recover`` pair, so the expensive decode kernel can fuse
    with every other device sharing the code
    (:mod:`repro.ecc.kernel`).

    The dataclass holds only picklable parts (sketch, helper payload,
    digest bytes and module-level assembler objects), so plans built
    from it can cross process boundaries under the fleet engine's
    copy-on-dispatch rule.
    """

    sketch: SecureSketch
    helper: SketchData
    key_check: bytes
    #: Optional key assembly: recovered response -> key bits.  May
    #: raise ``ValueError`` for observably-invalid recoveries (e.g. a
    #: mis-corrected stream that is not a valid Kendall word).  Must be
    #: picklable (a module-level callable or small dataclass).
    assemble: Optional[Callable[[np.ndarray], np.ndarray]] = None

    def kernel_key(self) -> "tuple | None":
        """The sketch's recovery-kernel identity."""
        return self.sketch.kernel_key()

    def prepare(self, patterns: np.ndarray
                ) -> Tuple[Optional[KernelWorkload], object]:
        """Declare the sketch-recovery workload for fresh patterns.

        A ``ValueError`` from the sketch (malformed helper payload)
        rejects every pattern alike, mirroring the one-shot path.
        """
        try:
            workload, state = self.sketch.plan_recover(patterns,
                                                       self.helper)
        except ValueError:
            return None, ("rejected", patterns.shape[0])
        return workload, ("planned", state)

    def finish(self, state: object, outputs: "Optional[tuple]"
               ) -> np.ndarray:
        """Unwind the sketch recovery and apply the key check."""
        tag, inner = state
        if tag == "rejected":
            return np.zeros(inner, dtype=bool)
        recovered, ok = self.sketch.finish_recover(inner, outputs)
        return self._check(recovered, ok)

    def complete(self, bits_row: np.ndarray) -> bool:
        """Scalar reference: recover, assemble, check one pattern."""
        try:
            recovered = self.sketch.recover(bits_row, self.helper)
            key = (recovered if self.assemble is None
                   else self.assemble(recovered))
        except (ValueError, DecodingFailure):
            return False
        return key_check_digest(key) == self.key_check

    def complete_batch(self, patterns: np.ndarray) -> np.ndarray:
        """One-shot reference through the sketch's ``recover_batch``."""
        try:
            recovered, ok = self.sketch.recover_batch(patterns,
                                                      self.helper)
        except ValueError:
            return np.zeros(patterns.shape[0], dtype=bool)
        return self._check(recovered, ok)

    def _check(self, recovered: np.ndarray, ok: np.ndarray
               ) -> np.ndarray:
        """Assemble keys for recovered rows and verify the digest."""
        out = np.zeros(ok.shape[0], dtype=bool)
        for i in np.flatnonzero(ok):
            key = recovered[i]
            if self.assemble is not None:
                try:
                    key = self.assemble(key)
                except ValueError:
                    continue
            out[i] = key_check_digest(key) == self.key_check
        return out


# ----------------------------------------------------------------------
# evaluation plans


@dataclass
class EvalPlan:
    """Phase-1 result of evaluating one measurement block.

    Produced by :meth:`BatchEvaluator.plan`: rows whose pattern was
    already memoized (or observably invalid) are resolved in
    ``outcomes``; the fresh distinct patterns wait in ``pending`` for
    the kernel outputs.  ``workload`` is the plan's declared share of
    the round's kernel work — group plans by ``workload.key`` and run
    them through :func:`repro.ecc.kernel.run_kernels` to fuse the
    kernel across devices, then hand each plan its own output slice
    via :meth:`finalize`.

    A plan holds only arrays, byte keys, the picklable completion and
    the memo dict, so it can cross a process boundary; like every
    fleet dispatch, pickling *copies* state (the memo stops being
    shared with the originating evaluator) — the copy-on-dispatch
    rule of :mod:`repro.fleet.parallel`.
    """

    #: Per-row success booleans; pre-filled for resolved rows.
    outcomes: np.ndarray
    #: Fresh groups awaiting the kernel: ``(pattern_bytes, rows)``,
    #: aligned with the rows of the prepared pattern matrix.
    pending: List[Tuple[bytes, np.ndarray]]
    #: Completion finishing the fresh patterns (``None`` if resolved).
    completion: Optional[Completion]
    #: Opaque completion state from :meth:`Completion.prepare`.
    state: object
    #: Declared kernel work (``None`` when nothing needs the kernel).
    workload: Optional[KernelWorkload]
    #: The evaluator's memo, updated with the finalized patterns.
    memo: Dict[bytes, bool] = field(default_factory=dict)

    @classmethod
    def resolved(cls, outcomes: np.ndarray) -> "EvalPlan":
        """A plan with every row already decided (no kernel work)."""
        return cls(np.asarray(outcomes, dtype=bool), [], None, None,
                   None)

    @property
    def kernel_key(self) -> "tuple | None":
        """The declared workload's fusion key, if any."""
        return None if self.workload is None else self.workload.key

    def finalize(self, outputs: "Optional[tuple]" = None) -> np.ndarray:
        """Phase 3: resolve pending patterns from the kernel outputs.

        *outputs* is this plan's slice of the (possibly fused) kernel
        results — exactly what ``run_kernels([plan.workload])[0]``
        would return.  Returns the complete per-row success vector;
        idempotent once finalized.
        """
        if self.pending:
            results = np.asarray(
                self.completion.finish(self.state, outputs),
                dtype=bool)
            for (key, rows), value in zip(self.pending, results):
                flag = bool(value)
                self.memo[key] = flag
                self.outcomes[rows] = flag
            self.pending = []
        return self.outcomes

    def execute(self) -> np.ndarray:
        """Run this plan's own kernel and finalize (un-fused driver)."""
        (outputs,) = run_kernels([self.workload])
        return self.finalize(outputs)


def _build_plan(bits: np.ndarray, rows: Optional[np.ndarray],
                memo: "_CompletionMemo", count: int) -> EvalPlan:
    """Dedup a bit matrix against the memo and prepare the rest.

    *rows* restricts the scan (masked evaluators); excluded rows stay
    ``False``, matching their observable refusal on the scalar path.
    """
    outcomes = np.zeros(count, dtype=bool)
    pending: List[Tuple[bytes, np.ndarray]] = []
    fresh: List[np.ndarray] = []
    for pattern, indices in iter_unique_rows(bits, rows):
        key = pattern.tobytes()
        hit = memo.data.get(key)
        if hit is None:
            pending.append((key, indices))
            fresh.append(pattern)
        else:
            outcomes[indices] = hit
    if not fresh:
        return EvalPlan(outcomes, [], None, None, None, memo.data)
    workload, state = memo.completion.prepare(np.stack(fresh))
    return EvalPlan(outcomes, pending, memo.completion, state,
                    workload, memo.data)


# ----------------------------------------------------------------------
# evaluators


class BatchEvaluator(abc.ABC):
    """Maps measurement batches to reconstruction-success booleans.

    ``outcomes(freqs)[i]`` must equal what a sequential
    ``reconstruct`` call observing measurement row ``i`` would report
    (``True`` = key regenerated), so batched and scalar simulation stay
    interchangeable query-for-query.  :meth:`plan` is the two-phase
    entry point with the same contract
    (``plan(freqs).finalize(outputs)`` ≡ ``outcomes(freqs)``); the
    base implementation evaluates eagerly and returns a resolved plan,
    which is always correct — just never fused.
    """

    @abc.abstractmethod
    def outcomes(self, freqs: np.ndarray) -> np.ndarray:
        """Success booleans for a ``(B, n)`` measurement batch."""

    def plan(self, freqs: np.ndarray) -> EvalPlan:
        """Phase 1: extract/dedup now, defer kernel work when able."""
        return EvalPlan.resolved(self.outcomes(freqs))

    def outcomes_env(self, freqs: np.ndarray, env) -> np.ndarray:
        """Environment-aware one-shot entry point.

        *env* is the per-row ambient
        :class:`~repro.scenario.trajectory.EnvironmentSample` of a
        trajectory-driven block (or ``None`` when an explicit
        operating point overrode the ambient).  The base
        implementation ignores it: for every construction except the
        temperature-aware one the response bits are a function of
        the measured frequencies alone — the ambient already acted
        through them.
        """
        return self.outcomes(freqs)

    def plan_env(self, freqs: np.ndarray, env) -> EvalPlan:
        """Two-phase twin of :meth:`outcomes_env` (same contract)."""
        return self.plan(freqs)


class ConstantEvaluator(BatchEvaluator):
    """Helper data whose outcome is measurement-independent.

    Structurally invalid helper data (rejected pair lists, mismatched
    group maps) fails every reconstruction before a single frequency is
    inspected; short-circuiting it keeps the batch path free of
    per-query validation.
    """

    def __init__(self, value: bool):
        self._value = bool(value)

    def outcomes(self, freqs: np.ndarray) -> np.ndarray:
        """Success booleans for a ``(B, n)`` measurement batch."""
        return np.full(np.asarray(freqs).shape[0], self._value,
                       dtype=bool)


class _CompletionMemo:
    """Per-helper cache of completion results keyed by bit pattern.

    Both protocols share it: the one-shot :meth:`fill` completes all
    not-yet-seen distinct patterns through the completion's batch
    reference path, while the two-phase plans read ``data`` directly
    at plan time and write finalized patterns back.  Either way a
    pattern is completed at most once per helper.
    """

    def __init__(self, completion: Completion):
        self.completion = completion
        self.data: Dict[bytes, bool] = {}

    def lookup(self, bits_row: np.ndarray) -> bool:
        key = bits_row.tobytes()
        hit = self.data.get(key)
        if hit is None:
            hit = self.data[key] = bool(
                self.completion.complete(bits_row))
        return hit

    def fill(self, bits: np.ndarray, out: np.ndarray,
             rows: Optional[np.ndarray] = None) -> None:
        """Write memoized outcomes for (a subset of) a bit matrix.

        *rows* restricts both the bit matrix rows considered and the
        positions of *out* written; distinct patterns are completed
        once.
        """
        groups = list(iter_unique_rows(bits, rows))
        fresh = [(pattern, pattern.tobytes())
                 for pattern, _ in groups
                 if pattern.tobytes() not in self.data]
        if fresh:
            results = self.completion.complete_batch(
                np.stack([pattern for pattern, _ in fresh]))
            for (_, key), outcome in zip(fresh, results):
                self.data[key] = bool(outcome)
        for pattern, indices in groups:
            out[indices] = self.lookup(pattern)


def _ensure_completion(completion,
                       complete_batch: Optional[BatchCompletionFn]
                       ) -> Completion:
    """Normalise a completion argument (object or bare callables)."""
    if isinstance(completion, Completion):
        return completion
    return CallableCompletion(completion, complete_batch)


class ResponseBitEvaluator(BatchEvaluator):
    """The common scheme shape: vectorized bits, memoized completion.

    *extract* turns a ``(B, n)`` measurement batch into the ``(B,
    bits)`` response matrix in one pass; *completion* finishes the
    distinct patterns — either a :class:`Completion` object (two-phase
    capable, e.g. :class:`SketchCompletion`) or a bare scalar callable
    with an optional *complete_batch* companion (one-shot only).
    """

    def __init__(self, extract: ExtractionFn, completion,
                 complete_batch: Optional[BatchCompletionFn] = None):
        self._extract = extract
        self._memo = _CompletionMemo(
            _ensure_completion(completion, complete_batch))

    def outcomes(self, freqs: np.ndarray) -> np.ndarray:
        """One-shot reference: success booleans for a ``(B, n)`` batch."""
        bits = self._extract(np.asarray(freqs, dtype=float))
        out = np.empty(bits.shape[0], dtype=bool)
        self._memo.fill(bits, out)
        return out

    def plan(self, freqs: np.ndarray) -> EvalPlan:
        """Phase 1: extract and dedup; declare the kernel workload."""
        bits = self._extract(np.asarray(freqs, dtype=float))
        return _build_plan(bits, None, self._memo, bits.shape[0])


class MaskedBitEvaluator(BatchEvaluator):
    """Vectorized extraction with per-row observable refusals.

    Like :class:`ResponseBitEvaluator`, but *extract* returns ``(bits,
    valid)``: rows whose scalar reconstruction would raise before bit
    extraction completes (e.g. the temperature-aware assistance-cycle
    refusal, which depends on each row's sensed temperature) carry
    ``valid = False`` and fail without ever reaching the completion
    stage.  Valid rows are completed once per distinct bit pattern.

    *extract_env*, when supplied, is the environment-aware variant
    used for trajectory-driven blocks: it additionally receives the
    per-row ambient sample, for schemes whose extraction consults
    the environment beyond the measured frequencies (the
    temperature-aware sensor read).  Both extractors must consume
    any shared transient streams identically per row.
    """

    def __init__(self, extract: MaskedExtractionFn, completion,
                 complete_batch: Optional[BatchCompletionFn] = None,
                 extract_env: Optional[EnvExtractionFn] = None):
        self._extract = extract
        self._extract_env = extract_env
        self._memo = _CompletionMemo(
            _ensure_completion(completion, complete_batch))

    def outcomes(self, freqs: np.ndarray) -> np.ndarray:
        """One-shot reference: success booleans for a ``(B, n)`` batch."""
        bits, valid = self._extract(np.asarray(freqs, dtype=float))
        return self._complete_outcomes(bits, valid)

    def plan(self, freqs: np.ndarray) -> EvalPlan:
        """Phase 1: extract and dedup the valid rows only."""
        bits, valid = self._extract(np.asarray(freqs, dtype=float))
        return self._complete_plan(bits, valid)

    def outcomes_env(self, freqs: np.ndarray, env) -> np.ndarray:
        """One-shot entry with per-row ambient environments."""
        if env is None or self._extract_env is None:
            return self.outcomes(freqs)
        bits, valid = self._extract_env(
            np.asarray(freqs, dtype=float), env)
        return self._complete_outcomes(bits, valid)

    def plan_env(self, freqs: np.ndarray, env) -> EvalPlan:
        """Two-phase entry with per-row ambient environments."""
        if env is None or self._extract_env is None:
            return self.plan(freqs)
        bits, valid = self._extract_env(
            np.asarray(freqs, dtype=float), env)
        return self._complete_plan(bits, valid)

    def _complete_outcomes(self, bits: np.ndarray,
                           valid: np.ndarray) -> np.ndarray:
        """Memoized completion of the valid rows (one-shot path)."""
        out = np.zeros(bits.shape[0], dtype=bool)
        rows = np.flatnonzero(np.asarray(valid, dtype=bool))
        if rows.size:
            self._memo.fill(bits, out, rows)
        return out

    def _complete_plan(self, bits: np.ndarray,
                       valid: np.ndarray) -> EvalPlan:
        """Dedup the valid rows into a plan (two-phase path)."""
        rows = np.flatnonzero(np.asarray(valid, dtype=bool))
        if rows.size == 0:
            return EvalPlan.resolved(
                np.zeros(bits.shape[0], dtype=bool))
        return _build_plan(bits, rows, self._memo, bits.shape[0])


class RowwiseBitEvaluator(BatchEvaluator):
    """Fallback for schemes whose bit extraction resists vectorization.

    *extract_row* maps one measurement vector to its response bits (or
    raises ``ValueError`` for an observable per-row failure, e.g. the
    temperature-aware assistance-cycle refusal).  Completion is still
    deduplicated, which is where the decode cost lives.
    """

    def __init__(self, extract_row: Callable[[np.ndarray], np.ndarray],
                 complete: CompletionFn, bits: int):
        self._extract_row = extract_row
        self._memo = _CompletionMemo(_ensure_completion(complete, None))
        self._bits = int(bits)

    def outcomes(self, freqs: np.ndarray) -> np.ndarray:
        """Success booleans for a ``(B, n)`` measurement batch."""
        freqs = np.asarray(freqs, dtype=float)
        count = freqs.shape[0]
        bits = np.zeros((count, self._bits), dtype=np.uint8)
        valid = np.ones(count, dtype=bool)
        for i in range(count):
            try:
                bits[i] = self._extract_row(freqs[i])
            except ValueError:
                valid[i] = False
        out = np.zeros(count, dtype=bool)
        self._memo.fill(bits, out, np.flatnonzero(valid))
        return out
