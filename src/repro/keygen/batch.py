"""Vectorized success evaluation for batched oracle queries.

The helper-data attacks of paper §VI only ever observe one bit per
reconstruction attempt: did the device regenerate its key?  Estimating
the failure *rates* that drive every distinguisher therefore reduces to
mapping a batch of measurement vectors to a batch of success booleans —
and for every construction that outcome is a deterministic function of
the (discrete) response-bit vector the measurement produces.

That structure is what a :class:`BatchEvaluator` exploits: response
bits for a whole ``(B, n)`` measurement block are extracted in one
NumPy pass, and the expensive completion (ECC decode + key check) runs
once per *distinct* bit pattern instead of once per query.  In the
engineered Fig. 5 regimes only a handful of marginal bits ever flip, so
a block of hundreds of queries typically needs single-digit decodes.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro._dedup import iter_unique_rows

#: Completion: response-bit vector -> reconstruction success.
CompletionFn = Callable[[np.ndarray], bool]
#: Batch completion: (U, bits) distinct-pattern matrix -> U successes.
BatchCompletionFn = Callable[[np.ndarray], np.ndarray]
#: Extraction: (B, n) measurement batch -> (B, bits) response matrix.
ExtractionFn = Callable[[np.ndarray], np.ndarray]
#: Masked extraction: (B, n) batch -> ((B, bits) matrix, (B,) validity).
MaskedExtractionFn = Callable[[np.ndarray],
                              Tuple[np.ndarray, np.ndarray]]


class BatchEvaluator(abc.ABC):
    """Maps measurement batches to reconstruction-success booleans.

    ``outcomes(freqs)[i]`` must equal what a sequential
    ``reconstruct`` call observing measurement row ``i`` would report
    (``True`` = key regenerated), so batched and scalar simulation stay
    interchangeable query-for-query.
    """

    @abc.abstractmethod
    def outcomes(self, freqs: np.ndarray) -> np.ndarray:
        """Success booleans for a ``(B, n)`` measurement batch."""


class ConstantEvaluator(BatchEvaluator):
    """Helper data whose outcome is measurement-independent.

    Structurally invalid helper data (rejected pair lists, mismatched
    group maps) fails every reconstruction before a single frequency is
    inspected; short-circuiting it keeps the batch path free of
    per-query validation.
    """

    def __init__(self, value: bool):
        self._value = bool(value)

    def outcomes(self, freqs: np.ndarray) -> np.ndarray:
        """Success booleans for a ``(B, n)`` measurement batch."""
        return np.full(np.asarray(freqs).shape[0], self._value,
                       dtype=bool)


class _CompletionMemo:
    """Per-helper cache of completion results keyed by bit pattern.

    When a *complete_batch* is supplied, all not-yet-seen distinct
    patterns of a fill are completed through it in one call — this is
    how the vectorized ECC layer (``recover_batch`` and friends)
    plugs into the oracle engine; *complete* remains the scalar
    fallback for single lookups.
    """

    def __init__(self, complete: CompletionFn,
                 complete_batch: Optional[BatchCompletionFn] = None):
        self._complete = complete
        self._complete_batch = complete_batch
        self._memo: Dict[bytes, bool] = {}

    def lookup(self, bits_row: np.ndarray) -> bool:
        key = bits_row.tobytes()
        hit = self._memo.get(key)
        if hit is None:
            hit = self._memo[key] = bool(self._complete(bits_row))
        return hit

    def fill(self, bits: np.ndarray, out: np.ndarray,
             rows: Optional[np.ndarray] = None) -> None:
        """Write memoized outcomes for (a subset of) a bit matrix.

        *rows* restricts both the bit matrix rows considered and the
        positions of *out* written; distinct patterns are completed
        once.
        """
        groups = list(iter_unique_rows(bits, rows))
        if self._complete_batch is not None:
            fresh = [(pattern, pattern.tobytes())
                     for pattern, _ in groups
                     if pattern.tobytes() not in self._memo]
            if fresh:
                outcomes = self._complete_batch(
                    np.stack([pattern for pattern, _ in fresh]))
                for (_, key), outcome in zip(fresh, outcomes):
                    self._memo[key] = bool(outcome)
        for pattern, indices in groups:
            out[indices] = self.lookup(pattern)


class ResponseBitEvaluator(BatchEvaluator):
    """The common scheme shape: vectorized bits, memoized completion.

    *extract* turns a ``(B, n)`` measurement batch into the ``(B,
    bits)`` response matrix in one pass; *complete* finishes a single
    response vector (sketch recovery, key packing, key check) and is
    called once per distinct pattern.  *complete_batch*, when given,
    finishes all fresh distinct patterns in one vectorized pass
    (e.g. through ``CodeOffsetSketch.recover_batch``).
    """

    def __init__(self, extract: ExtractionFn, complete: CompletionFn,
                 complete_batch: Optional[BatchCompletionFn] = None):
        self._extract = extract
        self._memo = _CompletionMemo(complete, complete_batch)

    def outcomes(self, freqs: np.ndarray) -> np.ndarray:
        """Success booleans for a ``(B, n)`` measurement batch."""
        bits = self._extract(np.asarray(freqs, dtype=float))
        out = np.empty(bits.shape[0], dtype=bool)
        self._memo.fill(bits, out)
        return out


class MaskedBitEvaluator(BatchEvaluator):
    """Vectorized extraction with per-row observable refusals.

    Like :class:`ResponseBitEvaluator`, but *extract* returns ``(bits,
    valid)``: rows whose scalar reconstruction would raise before bit
    extraction completes (e.g. the temperature-aware assistance-cycle
    refusal, which depends on each row's sensed temperature) carry
    ``valid = False`` and fail without ever reaching the completion
    stage.  Valid rows are completed once per distinct bit pattern,
    through *complete_batch* when provided.
    """

    def __init__(self, extract: MaskedExtractionFn,
                 complete: CompletionFn,
                 complete_batch: Optional[BatchCompletionFn] = None):
        self._extract = extract
        self._memo = _CompletionMemo(complete, complete_batch)

    def outcomes(self, freqs: np.ndarray) -> np.ndarray:
        """Success booleans for a ``(B, n)`` measurement batch."""
        bits, valid = self._extract(np.asarray(freqs, dtype=float))
        out = np.zeros(bits.shape[0], dtype=bool)
        rows = np.flatnonzero(np.asarray(valid, dtype=bool))
        if rows.size:
            self._memo.fill(bits, out, rows)
        return out


class RowwiseBitEvaluator(BatchEvaluator):
    """Fallback for schemes whose bit extraction resists vectorization.

    *extract_row* maps one measurement vector to its response bits (or
    raises ``ValueError`` for an observable per-row failure, e.g. the
    temperature-aware assistance-cycle refusal).  Completion is still
    deduplicated, which is where the decode cost lives.
    """

    def __init__(self, extract_row: Callable[[np.ndarray], np.ndarray],
                 complete: CompletionFn, bits: int):
        self._extract_row = extract_row
        self._memo = _CompletionMemo(complete)
        self._bits = int(bits)

    def outcomes(self, freqs: np.ndarray) -> np.ndarray:
        """Success booleans for a ``(B, n)`` measurement batch."""
        freqs = np.asarray(freqs, dtype=float)
        count = freqs.shape[0]
        bits = np.zeros((count, self._bits), dtype=np.uint8)
        valid = np.ones(count, dtype=bool)
        for i in range(count):
            try:
                bits[i] = self._extract_row(freqs[i])
            except ValueError:
                valid[i] = False
        out = np.zeros(count, dtype=bool)
        self._memo.fill(bits, out, np.flatnonzero(valid))
        return out
