"""End-to-end key generator over the temperature-aware cooperative PUF.

Pipeline (paper §IV-D + generic ECC): classify neighbour pairs over the
operating range → good bits + cooperating reference bits → code-offset
sketch → helper data {pair classification & cooperation records, ECC
redundancy, key check}.  Reconstruction reads the on-chip temperature
sensor to interpret the crossover intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

import numpy as np

from repro._rng import RNGLike, ensure_rng
from repro.ecc.sketch import SketchData
from repro.keygen.base import (
    CodeProvider,
    KeyGenerator,
    OperatingPoint,
    ReconstructionFailure,
    bch_provider,
    key_check_digest,
)
from repro.keygen.batch import (
    ConstantEvaluator,
    MaskedBitEvaluator,
    SketchCompletion,
)
from repro.pairing.temp_aware import TempAwareCooperative, TempAwareHelper
from repro.puf.measurement import TemperatureSensor
from repro.puf.ro_array import ROArray


@dataclass(frozen=True)
class TempAwareKeyHelper:
    """Complete public helper data of the construction."""

    scheme: TempAwareHelper
    sketch: SketchData
    key_check: bytes

    def with_scheme(self, scheme: TempAwareHelper) -> "TempAwareKeyHelper":
        """Manipulated copy with replaced cooperation records (§VI-B)."""
        return replace(self, scheme=scheme)


class TempAwareKeyGen(KeyGenerator):
    """Device model: temperature-aware cooperative pairs + ECC + check.

    The device reads its on-chip temperature sensor once per
    reconstruction attempt.  Sensor noise is drawn from a per-device
    stream seeded by *sensor_seed*, and the batched evaluator consumes
    that stream in exactly the per-query amounts the scalar path does —
    so with a seeded sensor, batched and scalar simulation of twin
    devices stay bitwise-equivalent query for query.  The default
    (``None``) keeps the historical behaviour of unpredictable fresh
    sensor noise.
    """

    def __init__(self, t_min: float, t_max: float, threshold: float,
                 code_provider: CodeProvider = None,
                 selection: str = "randomized",
                 enrollment_samples: int = 9,
                 sensor: TemperatureSensor = TemperatureSensor(),
                 sensor_seed: RNGLike = None):
        self._scheme = TempAwareCooperative(
            t_min, t_max, threshold, selection=selection,
            enrollment_samples=enrollment_samples)
        self._code_provider = code_provider or bch_provider(3)
        self._sensor = sensor
        self._sensor_rng = ensure_rng(sensor_seed)

    @property
    def scheme(self) -> TempAwareCooperative:
        """The temperature-aware cooperative pairing scheme."""
        return self._scheme

    def reseed_transient_streams(self, rng: RNGLike = None) -> None:
        """Replace the sensor noise stream (fleet sweep substreams).

        Subsequent scalar *and* batched reconstructions read the
        sensor from the new stream; the bitwise scalar/batch
        equivalence is unaffected as long as both paths share it.
        """
        self._sensor_rng = ensure_rng(rng)

    def enroll(self, array: ROArray, rng: RNGLike = None
               ) -> Tuple[TempAwareKeyHelper, np.ndarray]:
        """One-time enrollment; returns ``(helper, key_bits)``."""
        gen = ensure_rng(rng)
        scheme_helper, key = self._scheme.enroll(array, gen)
        if key.size == 0:
            raise ValueError("no usable pairs; relax the threshold")
        sketch = self.sketch_for(key.size)
        sketch_data = sketch.generate(key, gen)
        helper = TempAwareKeyHelper(scheme_helper, sketch_data,
                                    key_check_digest(key))
        return helper, key

    def reconstruct_from_frequencies(
            self, array: ROArray, freqs: np.ndarray,
            helper: TempAwareKeyHelper,
            op: OperatingPoint = OperatingPoint()) -> np.ndarray:
        """Regenerate the key from one ``(n,)`` measurement row."""
        temperature = (op.temperature if op.temperature is not None
                       else array.params.temp_nominal)
        sensed = self._sensor.read(temperature, rng=self._sensor_rng)
        try:
            bits = self._scheme.evaluate(freqs, helper.scheme, sensed)
        except ValueError as exc:
            raise ReconstructionFailure(str(exc)) from exc
        sketch = self.sketch_for(bits.size)
        recovered = self._decode_or_fail(
            lambda: sketch.recover(bits, helper.sketch))
        return self._finish(recovered, helper.key_check)

    def batch_evaluator(self, array: ROArray,
                        helper: TempAwareKeyHelper,
                        op: OperatingPoint = OperatingPoint()):
        """Vectorized success evaluator for *helper* at *op*.

        Sensor reads, interval interpretation and cooperative
        assistance are evaluated in one NumPy pass per block
        (:meth:`TempAwareCooperative.evaluate_batch`); the sketch
        recovery runs once per distinct response pattern.  Outcome
        ``i`` of a block equals what the ``i``-th sequential
        :meth:`reconstruct` call would observe, provided scalar and
        batched simulation share the sensor stream seeding.
        """
        temperature = (op.temperature if op.temperature is not None
                       else array.params.temp_nominal)
        scheme = self._scheme
        scheme_helper = helper.scheme
        sensor = self._sensor
        sensor_rng = self._sensor_rng
        bits = scheme_helper.bits
        try:
            sketch = self.sketch_for(bits)
        except ValueError:
            return ConstantEvaluator(False)

        def extract(freqs: np.ndarray):
            # One sensor read per query, exactly as on the scalar
            # path: a (B,) batch draw consumes the sensor stream like
            # B successive scalar reads.
            sensed = sensor.read_batch(temperature, freqs.shape[0],
                                       rng=sensor_rng)
            return scheme.evaluate_batch(freqs, scheme_helper, sensed)

        def extract_env(freqs: np.ndarray, env):
            # Trajectory-driven blocks: the ambient varies per query,
            # so the sensor reads each row's own temperature — same
            # stream, same per-query consumption as the scalar path.
            sensed = sensor.read_batch(env.temperatures,
                                       freqs.shape[0],
                                       rng=sensor_rng)
            return scheme.evaluate_batch(freqs, scheme_helper, sensed)

        return MaskedBitEvaluator(
            extract, SketchCompletion(sketch, helper.sketch,
                                      helper.key_check),
            extract_env=extract_env)
