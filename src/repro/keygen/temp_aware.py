"""End-to-end key generator over the temperature-aware cooperative PUF.

Pipeline (paper §IV-D + generic ECC): classify neighbour pairs over the
operating range → good bits + cooperating reference bits → code-offset
sketch → helper data {pair classification & cooperation records, ECC
redundancy, key check}.  Reconstruction reads the on-chip temperature
sensor to interpret the crossover intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

import numpy as np

from repro._rng import RNGLike, ensure_rng
from repro.ecc.base import DecodingFailure
from repro.ecc.sketch import SketchData
from repro.keygen.base import (
    CodeProvider,
    KeyGenerator,
    OperatingPoint,
    ReconstructionFailure,
    bch_provider,
    key_check_digest,
)
from repro.keygen.batch import ConstantEvaluator, RowwiseBitEvaluator
from repro.pairing.temp_aware import TempAwareCooperative, TempAwareHelper
from repro.puf.measurement import TemperatureSensor
from repro.puf.ro_array import ROArray


@dataclass(frozen=True)
class TempAwareKeyHelper:
    """Complete public helper data of the construction."""

    scheme: TempAwareHelper
    sketch: SketchData
    key_check: bytes

    def with_scheme(self, scheme: TempAwareHelper) -> "TempAwareKeyHelper":
        """Manipulated copy with replaced cooperation records (§VI-B)."""
        return replace(self, scheme=scheme)


class TempAwareKeyGen(KeyGenerator):
    """Device model: temperature-aware cooperative pairs + ECC + check."""

    def __init__(self, t_min: float, t_max: float, threshold: float,
                 code_provider: CodeProvider = None,
                 selection: str = "randomized",
                 enrollment_samples: int = 9,
                 sensor: TemperatureSensor = TemperatureSensor()):
        self._scheme = TempAwareCooperative(
            t_min, t_max, threshold, selection=selection,
            enrollment_samples=enrollment_samples)
        self._code_provider = code_provider or bch_provider(3)
        self._sensor = sensor

    @property
    def scheme(self) -> TempAwareCooperative:
        return self._scheme

    def enroll(self, array: ROArray, rng: RNGLike = None
               ) -> Tuple[TempAwareKeyHelper, np.ndarray]:
        gen = ensure_rng(rng)
        scheme_helper, key = self._scheme.enroll(array, gen)
        if key.size == 0:
            raise ValueError("no usable pairs; relax the threshold")
        sketch = self.sketch_for(key.size)
        sketch_data = sketch.generate(key, gen)
        helper = TempAwareKeyHelper(scheme_helper, sketch_data,
                                    key_check_digest(key))
        return helper, key

    def reconstruct_from_frequencies(
            self, array: ROArray, freqs: np.ndarray,
            helper: TempAwareKeyHelper,
            op: OperatingPoint = OperatingPoint()) -> np.ndarray:
        temperature = (op.temperature if op.temperature is not None
                       else array.params.temp_nominal)
        sensed = self._sensor.read(temperature)
        try:
            bits = self._scheme.evaluate(freqs, helper.scheme, sensed)
        except ValueError as exc:
            raise ReconstructionFailure(str(exc)) from exc
        sketch = self.sketch_for(bits.size)
        recovered = self._decode_or_fail(
            lambda: sketch.recover(bits, helper.sketch))
        return self._finish(recovered, helper.key_check)

    def batch_evaluator(self, array: ROArray,
                        helper: TempAwareKeyHelper,
                        op: OperatingPoint = OperatingPoint()):
        temperature = (op.temperature if op.temperature is not None
                       else array.params.temp_nominal)
        scheme = self._scheme
        scheme_helper = helper.scheme
        sensor = self._sensor
        sensor_rng = ensure_rng(None)
        bits = scheme_helper.bits
        try:
            sketch = self.sketch_for(bits)
        except ValueError:
            return ConstantEvaluator(False)
        sketch_data = helper.sketch
        key_check = helper.key_check

        def extract_row(freqs_row: np.ndarray) -> np.ndarray:
            # One fresh sensor read per query, as on the scalar path;
            # the interval interpretation makes the response bits
            # depend on the sensed value, so rows are evaluated
            # individually (the decode is still deduplicated).
            sensed = sensor.read(temperature, rng=sensor_rng)
            return scheme.evaluate(freqs_row, scheme_helper, sensed)

        def complete(bits_row: np.ndarray) -> bool:
            try:
                recovered = sketch.recover(bits_row, sketch_data)
            except (ValueError, DecodingFailure):
                return False
            return key_check_digest(recovered) == key_check

        return RowwiseBitEvaluator(extract_row, complete, bits)
