"""Device-side helper-data validation (hardening experiments).

Paper §VII-C argues that helper-data *formats and sanity checks* are
security-critical yet typically unspecified.  This module implements the
checks a defensive device could realistically perform on incoming
helper data, plus hardened key-generator variants that enforce them:

* **pair disjointness** for pair lists (already enforced by
  :class:`~repro.pairing.sequential.SequentialPairing`);
* **polynomial amplitude bounds** for distiller coefficients — the
  systematic trend of a real IC spans a few MHz, so a surface swinging
  orders of magnitude more is necessarily an attack payload (§VI-C);
* **measured-threshold verification** for group maps — the device can
  recompute, on its own residual measurements, whether every intra-group
  pair actually exceeds ``Δf_th``;
* **interval sanity** for temperature-aware cooperation records.

The hardening is deliberately *imperfect*: the checks close the steep
payload channels but are construction-specific patchwork — which is
exactly the paper's argument for preferring the fuzzy extractor.  The
bench ``bench_countermeasures.py`` quantifies what each check stops.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.distiller.distiller import DistillerHelper
from repro.grouping.algorithm import GroupingHelper
from repro.keygen.base import OperatingPoint, ReconstructionFailure
from repro.keygen.group_based import GroupBasedKeyGen, GroupBasedKeyHelper
from repro.keygen.sequential import (
    SequentialKeyHelper,
    SequentialPairingKeyGen,
)
from repro.keygen.temp_aware import TempAwareKeyGen, TempAwareKeyHelper
from repro.pairing.base import Pair
from repro.pairing.temp_aware import TempAwareHelper


class HelperDataRejected(ReconstructionFailure):
    """A device-side sanity check refused the helper data.

    Subclasses :class:`ReconstructionFailure` because a rejection is
    externally just another failed reconstruction (the attacker cannot
    tell a validation refusal from an ECC failure).
    """


def validate_distiller_amplitude(helper: DistillerHelper, rows: int,
                                 cols: int,
                                 max_span: float) -> None:
    """Reject polynomial coefficients whose surface span is implausible.

    Evaluates the stored polynomial over the physical array and compares
    its peak-to-peak span against *max_span* (a design-time bound, e.g.
    four times the expected systematic amplitude).
    """
    xs = np.arange(rows * cols, dtype=float) % cols
    ys = np.arange(rows * cols, dtype=float) // cols
    values = helper.polynomial(xs, ys)
    span = float(values.max() - values.min())
    if span > max_span:
        raise HelperDataRejected(
            f"distiller surface spans {span:.3e} Hz, exceeding the "
            f"plausibility bound {max_span:.3e} Hz")


def validate_group_thresholds(residuals: np.ndarray,
                              grouping: GroupingHelper,
                              threshold: float,
                              tolerance: float = 0.5) -> None:
    """Verify the grouping property on the device's own measurements.

    Every intra-group pair must exceed ``threshold`` (scaled by
    *tolerance* to absorb measurement noise) on the residuals the device
    just measured.  A repartitioned group map whose pairs owe their
    separation to an injected surface fails this check as soon as the
    injection itself is rejected or absent.
    """
    residuals = np.asarray(residuals, dtype=float)
    floor = threshold * tolerance
    for group in grouping.groups:
        members = list(group)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                if abs(residuals[a] - residuals[b]) <= floor:
                    raise HelperDataRejected(
                        f"group pair ({a}, {b}) violates the measured "
                        f"threshold")


def validate_group_membership(grouping: GroupingHelper, n: int) -> None:
    """Structural checks: indices in range, no oscillator re-used."""
    seen = set()
    for group in grouping.groups:
        for member in group:
            if not 0 <= member < n:
                raise HelperDataRejected(
                    f"group member {member} out of range")
            if member in seen:
                raise HelperDataRejected(
                    f"oscillator {member} appears in two groups")
            seen.add(member)


def validate_pair_thresholds(freqs: np.ndarray,
                             pairs: Sequence[Pair],
                             threshold: float,
                             tolerance: float = 0.5) -> None:
    """Verify the pairing property on the device's own measurements.

    Algorithm 1 only stores a pair when the enrolled frequency gap
    exceeds ``Δf_th``; a defensive device can recompute that property on
    the frequencies it just measured (scaled by *tolerance* to absorb
    measurement noise).  A substituted pair list whose gaps do not stem
    from the physical array fails the check.
    """
    freqs = np.asarray(freqs, dtype=float)
    floor = threshold * tolerance
    for a, b in pairs:
        if abs(freqs[a] - freqs[b]) <= floor:
            raise HelperDataRejected(
                f"pair ({a}, {b}) violates the measured threshold")


def validate_cooperation_records(scheme: TempAwareHelper) -> None:
    """Sanity checks on temperature-aware cooperation records.

    Intervals must be ordered and inside the operating range; assistant
    indices must reference cooperating pairs with non-intersecting
    intervals; good indices must reference good pairs.
    """
    coop_entries = {e.pair_index: e for e in scheme.cooperation}
    good = set(scheme.good_indices)
    for entry in scheme.cooperation:
        if not (scheme.t_min <= entry.t_low <= entry.t_high
                <= scheme.t_max):
            raise HelperDataRejected(
                f"cooperation interval [{entry.t_low}, {entry.t_high}] "
                f"outside the operating range")
        if entry.good_index not in good:
            raise HelperDataRejected(
                f"masking index {entry.good_index} is not a good pair")
        assistant = coop_entries.get(entry.assist_index)
        if assistant is None:
            raise HelperDataRejected(
                f"assistant {entry.assist_index} is not a cooperating "
                f"pair")
        if not (entry.t_high < assistant.t_low
                or assistant.t_high < entry.t_low):
            raise HelperDataRejected(
                "assistant interval intersects the requester's")


class HardenedGroupBasedKeyGen(GroupBasedKeyGen):
    """Group-based device that validates helper data before use.

    Enforces the distiller amplitude bound, group-map structure and the
    measured-threshold property on every reconstruction.
    """

    def __init__(self, rows: int, cols: int,
                 max_polynomial_span: float,
                 threshold_tolerance: float = 0.5, **kwargs):
        super().__init__(**kwargs)
        self._rows = int(rows)
        self._cols = int(cols)
        self._max_span = float(max_polynomial_span)
        self._tolerance = float(threshold_tolerance)

    def _validate(self, array, freqs,
                  helper: GroupBasedKeyHelper) -> None:
        validate_distiller_amplitude(helper.distiller, self._rows,
                                     self._cols, self._max_span)
        validate_group_membership(helper.grouping, array.n)
        residuals = self.distiller.residuals(array.x, array.y, freqs,
                                             helper.distiller)
        validate_group_thresholds(residuals, helper.grouping,
                                  self.grouping.threshold,
                                  self._tolerance)

    def reconstruct(self, array, helper: GroupBasedKeyHelper,
                    op: OperatingPoint = OperatingPoint()) -> np.ndarray:
        # Validation runs on its own measurement, as a real device
        # would sanity-check incoming helper data before the actual
        # regeneration readout; only the second readout regenerates.
        """Validate helper data on its own readout, then regenerate."""
        freqs = array.measure_frequencies(op.temperature, op.voltage)
        self._validate(array, freqs, helper)
        regen = array.measure_frequencies(op.temperature, op.voltage)
        return super().reconstruct_from_frequencies(array, regen,
                                                    helper, op)

    def reconstruct_from_frequencies(
            self, array, freqs, helper: GroupBasedKeyHelper,
            op: OperatingPoint = OperatingPoint()) -> np.ndarray:
        # Single-readout variant used by the batched fallback path:
        # validation and regeneration share the one measurement, i.e.
        # it models a device that sanity-checks the readout it is
        # about to use.  Statistically close to, but not
        # query-for-query identical with, the two-readout
        # :meth:`reconstruct` — the batch engine's bitwise-equivalence
        # guarantee therefore does not extend to this hardened model.
        """Single-readout variant for the batched fallback path."""
        self._validate(array, freqs, helper)
        return super().reconstruct_from_frequencies(array, freqs,
                                                    helper, op)

    def batch_evaluator(self, array, helper: GroupBasedKeyHelper,
                        op: OperatingPoint = OperatingPoint()):
        # The measured-threshold check depends on each query's own
        # residuals, so the bit-level fast path would skip it; fall
        # back to row-wise reconstruction.
        """Always ``None``: residual checks resist vectorization."""
        return None


class HardenedSequentialKeyGen(SequentialPairingKeyGen):
    """Sequential-pairing device that validates helper data before use.

    On top of the structural pair checks the base scheme already
    enforces (index ranges, disjointness), this variant recomputes the
    Algorithm 1 threshold property on its own readout: every stored
    pair must exceed ``Δf_th`` (scaled by *threshold_tolerance*) on the
    frequencies the device just measured.
    """

    def __init__(self, threshold: float,
                 threshold_tolerance: float = 0.5, **kwargs):
        super().__init__(threshold, **kwargs)
        self._tolerance = float(threshold_tolerance)

    def reconstruct_from_frequencies(
            self, array, freqs, helper: SequentialKeyHelper,
            op: OperatingPoint = OperatingPoint()) -> np.ndarray:
        """Reject pairs failing the measured threshold, then regenerate."""
        validate_pair_thresholds(freqs, helper.pairing.pairs,
                                 self.pairing.threshold,
                                 self._tolerance)
        return super().reconstruct_from_frequencies(array, freqs,
                                                    helper, op)

    def batch_evaluator(self, array, helper: SequentialKeyHelper,
                        op: OperatingPoint = OperatingPoint()):
        # The measured-threshold check depends on each query's own
        # frequencies, so the bit-level fast path would skip it; fall
        # back to row-wise reconstruction.
        """Always ``None``: per-readout checks resist vectorization."""
        return None


class HardenedTempAwareKeyGen(TempAwareKeyGen):
    """Temperature-aware device that validates cooperation records."""

    def reconstruct_from_frequencies(
            self, array, freqs, helper: TempAwareKeyHelper,
            op: OperatingPoint = OperatingPoint()) -> np.ndarray:
        """Reject invalid cooperation records, then reconstruct."""
        validate_cooperation_records(helper.scheme)
        return super().reconstruct_from_frequencies(array, freqs,
                                                    helper, op)

    def batch_evaluator(self, array, helper: TempAwareKeyHelper,
                        op: OperatingPoint = OperatingPoint()):
        """Validate records once, then use the vectorized path."""
        try:
            validate_cooperation_records(helper.scheme)
        except HelperDataRejected:
            from repro.keygen.batch import ConstantEvaluator

            return ConstantEvaluator(False)
        return super().batch_evaluator(array, helper, op)
