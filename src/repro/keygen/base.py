"""Common machinery for end-to-end key generators.

A *key generator* bundles one of the paper's helper-data constructions
with an ECC reliability layer and an application-level key check into a
complete enroll/reconstruct device model.  The key check models the
paper's observability assumption — *"an inability to reconstruct the key
should affect the observable behavior of any useful application"* — as a
public hash commitment: reconstruction succeeds iff the regenerated key
matches the committed one, exactly like a MAC verification or a
decryption of known-format data would behave.
"""

from __future__ import annotations

import abc
import hashlib
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro._rng import RNGLike
from repro.ecc.base import BlockCode, DecodingFailure, as_bits
from repro.ecc.bch import design_bch
from repro.puf.ro_array import ROArray


class ReconstructionFailure(Exception):
    """Key regeneration failed observably.

    Raised on an ECC decoding failure *or* on a key-check mismatch
    (silent mis-correction).  Both are externally indistinguishable to
    the attacker and both count as "failure" in the Fig. 5 statistics.
    """


@dataclass(frozen=True)
class OperatingPoint:
    """Environmental conditions of one reconstruction."""

    temperature: Optional[float] = None
    voltage: Optional[float] = None


#: A provider maps a response length to the block code protecting it.
CodeProvider = Callable[[int], BlockCode]


@dataclass(frozen=True)
class _TrivialProvider:
    """Provider of rate-1 codes (no error correction)."""

    def __call__(self, bits: int) -> BlockCode:
        from repro.ecc.simple import TrivialCode

        return TrivialCode(bits)


@dataclass(frozen=True)
class _BCHProvider:
    """Provider of the smallest shortened BCH with a fixed ``t``."""

    t: int
    max_m: int = 12

    def __call__(self, bits: int) -> BlockCode:
        return design_bch(bits, self.t, max_m=self.max_m)


@dataclass(frozen=True)
class _BlockwiseProvider:
    """Provider splitting the response across independent BCH blocks."""

    t: int
    block_data_bits: int
    max_m: int = 12

    def __call__(self, bits: int) -> BlockCode:
        from repro.ecc.simple import BlockwiseCode

        blocks = max(1, -(-bits // self.block_data_bits))
        inner = bch_provider(self.t, max_m=self.max_m)(
            self.block_data_bits)
        if blocks == 1:
            return inner
        return BlockwiseCode(inner, blocks)


@dataclass(frozen=True)
class _FixedCodeProvider:
    """Provider returning one pre-built code regardless of length."""

    code: BlockCode

    def __call__(self, bits: int) -> BlockCode:
        if bits > self.code.n:
            raise ValueError(
                f"response of {bits} bits exceeds code length "
                f"{self.code.n}")
        return self.code


def bch_provider(t: int, max_m: int = 12) -> CodeProvider:
    """Provider returning the smallest shortened BCH with the given t.

    Providers are plain picklable objects (not closures) so that key
    generators holding them can cross process boundaries — the parallel
    fleet engine ships enrolled devices to worker processes.
    """
    if t < 0:
        raise ValueError("t must be non-negative")
    if t == 0:
        return _TrivialProvider()
    return _BCHProvider(int(t), int(max_m))


def blockwise_provider(t: int, block_data_bits: int,
                       max_m: int = 12) -> CodeProvider:
    """Provider that splits the response across independent ECC blocks.

    Paper §VI assumes all bits fit one block "for ease of explanation"
    and notes the multi-block extension is straightforward; this
    provider builds that extension: the response is covered by
    ``ceil(bits / block_data_bits)`` copies of a shortened BCH, each
    correcting *t* errors independently.
    """
    if block_data_bits < 1:
        raise ValueError("block_data_bits must be positive")
    return _BlockwiseProvider(int(t), int(block_data_bits), int(max_m))


def fixed_code(code: BlockCode) -> CodeProvider:
    """Provider returning one pre-built code regardless of length."""
    return _FixedCodeProvider(code)


def key_check_digest(key_bits: np.ndarray) -> bytes:
    """Public commitment to a key: truncated SHA-256 over the bit string.

    Stored in helper data so the device (application) can detect a wrong
    key; attackers recompute it freely when reprogramming keys (§VI-C).
    """
    bits = as_bits(key_bits)
    payload = np.packbits(bits).tobytes() + len(bits).to_bytes(4, "big")
    return hashlib.sha256(payload).digest()[:16]


class KeyGenerator(abc.ABC):
    """Enroll/reconstruct interface shared by all constructions."""

    @abc.abstractmethod
    def enroll(self, array: ROArray, rng: RNGLike = None):
        """One-time enrollment; returns ``(helper, key_bits)``."""

    def sketch_for(self, bits: int):
        """The secure sketch protecting a *bits*-long response.

        Built through the construction's code provider and cached per
        response length: code design (field tables, generator
        polynomial) is deterministic and was previously repeated on
        every reconstruction, dominating the scalar hot path.
        """
        from repro.ecc.sketch import CodeOffsetSketch

        cache = self.__dict__.setdefault("_sketch_cache", {})
        sketch = cache.get(bits)
        if sketch is None:
            sketch = CodeOffsetSketch(self._code_provider(bits), bits)
            cache[bits] = sketch
        return sketch

    def reconstruct(self, array: ROArray, helper,
                    op: OperatingPoint = OperatingPoint()) -> np.ndarray:
        """Regenerate the key from a fresh noisy measurement.

        Raises :class:`ReconstructionFailure` when the device observably
        fails (ECC failure or key-check mismatch).
        """
        freqs = array.measure_frequencies(op.temperature, op.voltage)
        return self.reconstruct_from_frequencies(array, freqs, helper,
                                                 op)

    @abc.abstractmethod
    def reconstruct_from_frequencies(
            self, array: ROArray, freqs: np.ndarray, helper,
            op: OperatingPoint = OperatingPoint()) -> np.ndarray:
        """Regenerate the key from an already-taken measurement vector.

        This is the measurement-free tail of :meth:`reconstruct`; the
        batched simulation engine draws many measurement rows in one
        vectorized pass and feeds them through this path (or through the
        faster :meth:`batch_evaluator` when the scheme provides one).
        """

    def reseed_transient_streams(self, rng: RNGLike = None) -> None:
        """Re-seed per-query transient noise streams (no-op default).

        Measurement noise always comes from the caller (the device's
        stream or an explicit oracle stream), but some schemes consume
        *additional* per-query randomness — e.g. the temperature-aware
        on-chip sensor.  Fleet sweeps re-seed those streams from sweep
        substreams derived from the population seed, so successive
        sweeps draw independent transient noise while staying
        reproducible and worker-count invariant.
        """

    def batch_evaluator(self, array: ROArray, helper,
                        op: OperatingPoint = OperatingPoint()):
        """Vectorized success evaluator for this helper, or ``None``.

        Schemes with a vectorizable response-bit extraction return a
        :class:`repro.keygen.batch.BatchEvaluator` mapping a ``(B, n)``
        measurement batch to ``B`` success booleans, matching what
        *B* sequential :meth:`reconstruct` calls on the same
        measurements would observe.  ``None`` means callers must fall
        back to row-wise :meth:`reconstruct_from_frequencies`.

        Evaluators speak two equivalent protocols (see
        ``docs/evaluators.md``): the one-shot ``outcomes(freqs)``
        reference call, and the two-phase ``plan(freqs)`` →
        fused-kernel → ``EvalPlan.finalize(outputs)`` split that lets
        a lock-step campaign stack the ECC kernel work of every
        device sharing a code into one call.  All shipped schemes
        return two-phase-capable evaluators built on
        :class:`repro.keygen.batch.SketchCompletion`.
        """
        return None

    def _finish(self, recovered_key: np.ndarray,
                key_check: bytes) -> np.ndarray:
        """Apply the application-level key check."""
        if key_check_digest(recovered_key) != key_check:
            raise ReconstructionFailure("key check mismatch")
        return recovered_key

    @staticmethod
    def _decode_or_fail(action: Callable[[], np.ndarray]) -> np.ndarray:
        """Translate ECC failures into observable reconstruction failures."""
        try:
            return action()
        except DecodingFailure as exc:
            raise ReconstructionFailure(str(exc)) from exc
