"""End-to-end group-based RO PUF key generator (paper Fig. 4).

Pipeline: RO array → entropy distillation → grouping algorithm →
Kendall coding → ECC → entropy packing → secret key.  Public helper
data, exactly as drawn on the IC boundary in Fig. 4: polynomial
coefficients, group information and ECC redundancy (plus the key-check
commitment that models the key-dependent application).

Every helper component is attacker-writable; the §VI-C attack rewrites
all of them at once to *reprogram* the device key.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

import numpy as np

from repro._rng import RNGLike, ensure_rng
from repro.distiller.distiller import DistillerHelper, EntropyDistiller
from repro.ecc.sketch import SketchData
from repro.grouping.algorithm import GroupingHelper, GroupingScheme
from repro.grouping.kendall import (
    kendall_bit_count,
    kendall_encode,
    order_from_frequencies,
    pair_table,
)
from repro.grouping.packing import pack_key
from repro.keygen.base import (
    CodeProvider,
    KeyGenerator,
    OperatingPoint,
    ReconstructionFailure,
    bch_provider,
    key_check_digest,
)
from repro.keygen.batch import (
    ConstantEvaluator,
    ResponseBitEvaluator,
    SketchCompletion,
)
from repro.puf.measurement import enroll_frequencies
from repro.puf.ro_array import ROArray


@dataclass(frozen=True)
class GroupBasedKeyHelper:
    """Complete public helper data of the group-based construction."""

    distiller: DistillerHelper
    grouping: GroupingHelper
    sketch: SketchData
    key_check: bytes

    def with_distiller(self, distiller: DistillerHelper
                       ) -> "GroupBasedKeyHelper":
        """Manipulated copy with replaced polynomial coefficients."""
        return replace(self, distiller=distiller)

    def with_grouping(self, grouping: GroupingHelper
                      ) -> "GroupBasedKeyHelper":
        """Manipulated copy with a repartitioned group map."""
        return replace(self, grouping=grouping)

    def with_sketch(self, sketch: SketchData) -> "GroupBasedKeyHelper":
        """Manipulated copy with replaced ECC redundancy."""
        return replace(self, sketch=sketch)

    def with_key_check(self, key_check: bytes) -> "GroupBasedKeyHelper":
        """Manipulated copy committing to a (reprogrammed) key."""
        return replace(self, key_check=key_check)


def kendall_stream(residuals: np.ndarray,
                   grouping: GroupingHelper) -> np.ndarray:
    """Concatenated Kendall bits of every group, in stored-member labelling.

    The canonical label of a member is its position in the stored group
    tuple; the measured descending-residual order of the labels is
    Kendall-encoded per group and concatenated in group order.
    """
    residuals = np.asarray(residuals, dtype=float)
    chunks: List[np.ndarray] = []
    for group in grouping.groups:
        member_values = residuals[list(group)]
        chunks.append(kendall_encode(order_from_frequencies(member_values)))
    if not chunks:
        return np.zeros(0, dtype=np.uint8)
    return np.concatenate(chunks)


def kendall_stream_batch(residuals: np.ndarray,
                         grouping: GroupingHelper) -> np.ndarray:
    """Kendall streams for a ``(B, n)`` residual batch, ``(B, bits)``.

    Row ``i`` equals ``kendall_stream(residuals[i], grouping)``.  Per
    group, the batch of descending-residual orders comes from one
    stable axis-1 argsort; the discordance bit of label pair ``(x, y)``
    is then just a rank comparison, so no per-row Python work remains.
    """
    residuals = np.asarray(residuals, dtype=float)
    if residuals.ndim != 2:
        raise ValueError("batch evaluation needs a (B, n) matrix")
    chunks: List[np.ndarray] = []
    for group in grouping.groups:
        members = list(group)
        if not members:
            raise ValueError("empty group in helper data")
        values = residuals[:, members]
        order = np.argsort(-values, axis=1, kind="stable")
        # rank[b, label] = position of the label in row b's order.
        rank = np.argsort(order, axis=1, kind="stable")
        xs, ys = pair_table(len(members))
        chunks.append((rank[:, ys] < rank[:, xs]).astype(np.uint8))
    if not chunks:
        return np.zeros((residuals.shape[0], 0), dtype=np.uint8)
    return np.concatenate(chunks, axis=1)


@dataclass(frozen=True)
class _PackKeyAssembler:
    """Picklable key assembly: Kendall stream → packed key bits.

    Raises ``ValueError`` when a mis-corrected stream is not a valid
    Kendall word — an observable reconstruction failure, handled by
    the completion.
    """

    sizes: Tuple[int, ...]

    def __call__(self, stream: np.ndarray) -> np.ndarray:
        """Pack a corrected Kendall stream into key bits."""
        return pack_key(stream, self.sizes)


class GroupBasedKeyGen(KeyGenerator):
    """Device model of the DATE 2013 group-based construction."""

    def __init__(self, distiller_degree: int = 2,
                 group_threshold: float = 50e3,
                 code_provider: CodeProvider = None,
                 storage_order: str = "sorted",
                 enrollment_samples: int = 9,
                 min_group_size: int = 2):
        self._distiller = EntropyDistiller(distiller_degree)
        self._grouping = GroupingScheme(group_threshold,
                                        storage_order=storage_order,
                                        min_group_size=min_group_size)
        self._code_provider = code_provider or bch_provider(3)
        self._samples = int(enrollment_samples)

    @property
    def distiller(self) -> EntropyDistiller:
        """The entropy distiller removing systematic variation."""
        return self._distiller

    @property
    def grouping(self) -> GroupingScheme:
        """The grouping scheme partitioning distilled residuals."""
        return self._grouping

    # ------------------------------------------------------------------

    def enroll(self, array: ROArray, rng: RNGLike = None
               ) -> Tuple[GroupBasedKeyHelper, np.ndarray]:
        """One-time enrollment; returns ``(helper, key_bits)``."""
        gen = ensure_rng(rng)
        freqs = enroll_frequencies(array, self._samples, rng=gen)
        distiller_helper, residuals = self._distiller.enroll(
            array.x, array.y, freqs)
        grouping_helper = self._grouping.enroll(residuals)
        if not grouping_helper.groups:
            raise ValueError("grouping produced no usable groups; "
                             "lower the threshold")
        stream = kendall_stream(residuals, grouping_helper)
        sketch = self.sketch_for(stream.size)
        sketch_data = sketch.generate(stream, gen)
        key = pack_key(stream, grouping_helper.sizes)
        helper = GroupBasedKeyHelper(distiller_helper, grouping_helper,
                                     sketch_data, key_check_digest(key))
        return helper, key

    def reconstruct_from_frequencies(
            self, array: ROArray, freqs: np.ndarray,
            helper: GroupBasedKeyHelper,
            op: OperatingPoint = OperatingPoint()) -> np.ndarray:
        """Regenerate the key from one ``(n,)`` measurement row."""
        residuals = self._distiller.residuals(array.x, array.y, freqs,
                                              helper.distiller)
        try:
            stream = kendall_stream(residuals, helper.grouping)
            sketch = self.sketch_for(stream.size)
            corrected = self._decode_or_fail(
                lambda: sketch.recover(stream, helper.sketch))
            key = pack_key(corrected, helper.grouping.sizes)
        except ValueError as exc:
            # Malformed helper data (wrong payload length, invalid
            # Kendall word after mis-correction, bad group indices).
            raise ReconstructionFailure(str(exc)) from exc
        return self._finish(key, helper.key_check)

    def batch_evaluator(self, array: ROArray,
                        helper: GroupBasedKeyHelper,
                        op: OperatingPoint = OperatingPoint()):
        """Vectorized evaluator: one decode per distinct pattern."""
        grouping = helper.grouping
        try:
            bits = sum(kendall_bit_count(len(g))
                       for g in grouping.groups)
            if any(len(g) == 0 for g in grouping.groups):
                raise ValueError("empty group in helper data")
            sketch = self.sketch_for(bits) if bits else None
        except ValueError:
            return ConstantEvaluator(False)
        if sketch is None:
            # A stream of zero bits cannot be provisioned; the scalar
            # path fails on sketch construction for every query.
            return ConstantEvaluator(False)
        x, y = array.x, array.y
        distiller = self._distiller
        distiller_helper = helper.distiller

        def extract(freqs: np.ndarray) -> np.ndarray:
            residuals = distiller.residuals_batch(x, y, freqs,
                                                  distiller_helper)
            return kendall_stream_batch(residuals, grouping)

        completion = SketchCompletion(
            sketch, helper.sketch, helper.key_check,
            assemble=_PackKeyAssembler(tuple(grouping.sizes)))
        return ResponseBitEvaluator(extract, completion)
