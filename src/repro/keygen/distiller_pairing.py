"""Entropy distiller composed with RO pairing schemes (paper §V-A/§VI-D).

The DAC 2013 distiller is not tied to the group-based construction; the
paper's §VI-D attacks target its composition with the §IV pairing
schemes.  Pipeline: RO array → distillation → pair responses →
(optionally 1-out-of-k selection) → ECC → key.  Helper data: polynomial
coefficients, selection indices (masking mode), ECC redundancy, key
check.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from repro._rng import RNGLike, ensure_rng
from repro.distiller.distiller import DistillerHelper, EntropyDistiller
from repro.ecc.sketch import SketchData
from repro.keygen.base import (
    CodeProvider,
    KeyGenerator,
    OperatingPoint,
    ReconstructionFailure,
    bch_provider,
    key_check_digest,
)
from repro.keygen.batch import (
    ConstantEvaluator,
    ResponseBitEvaluator,
    SketchCompletion,
)
from repro.pairing.base import Pair, response_bits, response_bits_batch
from repro.pairing.masking import MaskingHelper, OneOutOfKMasking
from repro.pairing.neighbor import neighbor_chain_pairs
from repro.puf.measurement import enroll_frequencies
from repro.puf.ro_array import ROArray

#: Supported pairing modes.
PAIRING_MODES = ("neighbor-disjoint", "neighbor-overlap", "masking")


@dataclass(frozen=True)
class DistillerPairingHelper:
    """Complete public helper data of the composed construction."""

    distiller: DistillerHelper
    masking: Optional[MaskingHelper]
    sketch: SketchData
    key_check: bytes

    def with_distiller(self, distiller: DistillerHelper
                       ) -> "DistillerPairingHelper":
        """Manipulated copy with replaced polynomial coefficients."""
        return replace(self, distiller=distiller)

    def with_masking(self, masking: MaskingHelper
                     ) -> "DistillerPairingHelper":
        """Manipulated copy with replaced selection indices."""
        return replace(self, masking=masking)

    def with_sketch(self, sketch: SketchData) -> "DistillerPairingHelper":
        """Manipulated copy with replaced ECC redundancy."""
        return replace(self, sketch=sketch)

    def with_key_check(self, key_check: bytes) -> "DistillerPairingHelper":
        """Manipulated copy committing to a (reprogrammed) key."""
        return replace(self, key_check=key_check)


class DistillerPairingKeyGen(KeyGenerator):
    """Device model: distiller + pairing scheme + ECC + key check."""

    def __init__(self, rows: int, cols: int,
                 distiller_degree: int = 2,
                 pairing_mode: str = "neighbor-disjoint",
                 k: int = 5,
                 code_provider: CodeProvider = None,
                 enrollment_samples: int = 9):
        if pairing_mode not in PAIRING_MODES:
            raise ValueError(f"pairing_mode must be one of {PAIRING_MODES}")
        self._rows = int(rows)
        self._cols = int(cols)
        self._distiller = EntropyDistiller(distiller_degree)
        self._mode = pairing_mode
        self._code_provider = code_provider or bch_provider(3)
        self._samples = int(enrollment_samples)

        if pairing_mode == "masking":
            base = neighbor_chain_pairs(rows, cols, overlap=False)
            self._masking: Optional[OneOutOfKMasking] = \
                OneOutOfKMasking(base, k)
            self._pairs: List[Pair] = base
        else:
            overlap = pairing_mode == "neighbor-overlap"
            self._masking = None
            self._pairs = neighbor_chain_pairs(rows, cols, overlap=overlap)

    @property
    def pairing_mode(self) -> str:
        """Active pairing mode (one of :data:`PAIRING_MODES`)."""
        return self._mode

    @property
    def pairs(self) -> List[Pair]:
        """The fixed geometric pair set (pre-selection in masking mode)."""
        return list(self._pairs)

    @property
    def masking(self) -> Optional[OneOutOfKMasking]:
        """The masking pairing scheme, when the mode uses one."""
        return self._masking

    @property
    def distiller(self) -> EntropyDistiller:
        """The entropy distiller removing systematic variation."""
        return self._distiller

    @property
    def bits(self) -> int:
        """Response length in bits."""
        if self._masking is not None:
            return self._masking.groups
        return len(self._pairs)

    # ------------------------------------------------------------------

    def _responses(self, residuals: np.ndarray,
                   masking_helper: Optional[MaskingHelper]) -> np.ndarray:
        if self._masking is not None:
            if masking_helper is None:
                raise ValueError("masking mode requires masking helper")
            return self._masking.evaluate(residuals, masking_helper)
        return response_bits(residuals, self._pairs)

    def enroll(self, array: ROArray, rng: RNGLike = None
               ) -> Tuple[DistillerPairingHelper, np.ndarray]:
        """One-time enrollment; returns ``(helper, key_bits)``."""
        if (array.params.rows, array.params.cols) != (self._rows,
                                                      self._cols):
            raise ValueError("array layout does not match the key "
                             "generator geometry")
        gen = ensure_rng(rng)
        freqs = enroll_frequencies(array, self._samples, rng=gen)
        distiller_helper, residuals = self._distiller.enroll(
            array.x, array.y, freqs)
        masking_helper = None
        if self._masking is not None:
            masking_helper, key = self._masking.enroll(residuals)
        else:
            key = response_bits(residuals, self._pairs)
        sketch = self.sketch_for(key.size)
        sketch_data = sketch.generate(key, gen)
        helper = DistillerPairingHelper(distiller_helper, masking_helper,
                                        sketch_data,
                                        key_check_digest(key))
        return helper, key

    def reconstruct_from_frequencies(
            self, array: ROArray, freqs: np.ndarray,
            helper: DistillerPairingHelper,
            op: OperatingPoint = OperatingPoint()) -> np.ndarray:
        """Regenerate the key from one ``(n,)`` measurement row."""
        residuals = self._distiller.residuals(array.x, array.y, freqs,
                                              helper.distiller)
        try:
            bits = self._responses(residuals, helper.masking)
            sketch = self.sketch_for(bits.size)
            recovered = self._decode_or_fail(
                lambda: sketch.recover(bits, helper.sketch))
        except ValueError as exc:
            raise ReconstructionFailure(str(exc)) from exc
        return self._finish(recovered, helper.key_check)

    def batch_evaluator(self, array: ROArray,
                        helper: DistillerPairingHelper,
                        op: OperatingPoint = OperatingPoint()):
        """Vectorized evaluator: one decode per distinct pattern."""
        x, y = array.x, array.y
        try:
            if self._masking is not None:
                if helper.masking is None:
                    raise ValueError("masking mode requires masking "
                                     "helper")
                pairs = self._masking.selected_pairs(helper.masking)
            else:
                pairs = self._pairs
            sketch = self.sketch_for(len(pairs))
        except ValueError:
            # Mismatched selection helper or unprovisionable length:
            # every reconstruction fails observably.
            return ConstantEvaluator(False)
        distiller = self._distiller
        distiller_helper = helper.distiller

        def extract(freqs: np.ndarray) -> np.ndarray:
            residuals = distiller.residuals_batch(x, y, freqs,
                                                  distiller_helper)
            return response_bits_batch(residuals, pairs)

        return ResponseBitEvaluator(
            extract, SketchCompletion(sketch, helper.sketch,
                                      helper.key_check))
