"""End-to-end key generators: one device model per construction."""

from repro.keygen.base import (
    CodeProvider,
    KeyGenerator,
    OperatingPoint,
    ReconstructionFailure,
    bch_provider,
    blockwise_provider,
    fixed_code,
    key_check_digest,
)
from repro.keygen.batch import (
    BatchEvaluator,
    CallableCompletion,
    Completion,
    ConstantEvaluator,
    EvalPlan,
    MaskedBitEvaluator,
    ResponseBitEvaluator,
    RowwiseBitEvaluator,
    SketchCompletion,
)
from repro.keygen.sequential import (
    SequentialKeyHelper,
    SequentialPairingKeyGen,
)
from repro.keygen.temp_aware import TempAwareKeyGen, TempAwareKeyHelper
from repro.keygen.group_based import (
    GroupBasedKeyGen,
    GroupBasedKeyHelper,
    kendall_stream,
)
from repro.keygen.distiller_pairing import (
    DistillerPairingHelper,
    DistillerPairingKeyGen,
    PAIRING_MODES,
)
from repro.keygen.fuzzy_keygen import FuzzyExtractorKeyGen, FuzzyKeyHelper
from repro.keygen.validation import (
    HardenedGroupBasedKeyGen,
    HardenedSequentialKeyGen,
    HardenedTempAwareKeyGen,
    HelperDataRejected,
    validate_cooperation_records,
    validate_distiller_amplitude,
    validate_group_membership,
    validate_group_thresholds,
    validate_pair_thresholds,
)

__all__ = [
    "CodeProvider",
    "KeyGenerator",
    "OperatingPoint",
    "ReconstructionFailure",
    "bch_provider",
    "blockwise_provider",
    "fixed_code",
    "key_check_digest",
    "BatchEvaluator",
    "CallableCompletion",
    "Completion",
    "ConstantEvaluator",
    "EvalPlan",
    "MaskedBitEvaluator",
    "ResponseBitEvaluator",
    "RowwiseBitEvaluator",
    "SketchCompletion",
    "SequentialKeyHelper",
    "SequentialPairingKeyGen",
    "TempAwareKeyGen",
    "TempAwareKeyHelper",
    "GroupBasedKeyGen",
    "GroupBasedKeyHelper",
    "kendall_stream",
    "DistillerPairingHelper",
    "DistillerPairingKeyGen",
    "PAIRING_MODES",
    "FuzzyExtractorKeyGen",
    "FuzzyKeyHelper",
    "HardenedGroupBasedKeyGen",
    "HardenedSequentialKeyGen",
    "HardenedTempAwareKeyGen",
    "HelperDataRejected",
    "validate_cooperation_records",
    "validate_distiller_amplitude",
    "validate_group_membership",
    "validate_group_thresholds",
    "validate_pair_thresholds",
]
