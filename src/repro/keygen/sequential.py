"""End-to-end key generator over the sequential pairing algorithm.

Pipeline (paper §IV-C with the generic ECC assumption of §VI): enroll
averaged frequencies → Algorithm 1 pair selection → response bits →
code-offset sketch → public helper data {pair list, ECC redundancy,
key check}.  The key is the vector of enrolled response bits.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

import numpy as np

from repro._rng import RNGLike, ensure_rng
from repro.ecc.sketch import SketchData
from repro.keygen.base import (
    CodeProvider,
    KeyGenerator,
    OperatingPoint,
    ReconstructionFailure,
    bch_provider,
    key_check_digest,
)
from repro.keygen.batch import (
    ConstantEvaluator,
    ResponseBitEvaluator,
    SketchCompletion,
)
from repro.pairing.base import response_bits_batch, validate_pairs
from repro.pairing.sequential import (
    SequentialPairing,
    SequentialPairingHelper,
)
from repro.puf.measurement import enroll_frequencies
from repro.puf.ro_array import ROArray


@dataclass(frozen=True)
class SequentialKeyHelper:
    """Complete public helper data of the construction."""

    pairing: SequentialPairingHelper
    sketch: SketchData
    key_check: bytes

    def with_pairing(self, pairing: SequentialPairingHelper
                     ) -> "SequentialKeyHelper":
        """Manipulated copy with replaced pair list (§VI-A attacks)."""
        return replace(self, pairing=pairing)

    def with_sketch(self, sketch: SketchData) -> "SequentialKeyHelper":
        """Manipulated copy with replaced ECC redundancy."""
        return replace(self, sketch=sketch)


class SequentialPairingKeyGen(KeyGenerator):
    """Device model: sequential pairing + ECC + key check."""

    def __init__(self, threshold: float,
                 code_provider: CodeProvider = None,
                 storage_order: str = "randomized",
                 enrollment_samples: int = 9):
        self._pairing = SequentialPairing(threshold,
                                          storage_order=storage_order)
        self._code_provider = code_provider or bch_provider(3)
        self._samples = int(enrollment_samples)

    @property
    def pairing(self) -> SequentialPairing:
        """The sequential pairing scheme (paper Algorithm 1)."""
        return self._pairing

    def enroll(self, array: ROArray, rng: RNGLike = None
               ) -> Tuple[SequentialKeyHelper, np.ndarray]:
        """One-time enrollment; returns ``(helper, key_bits)``."""
        gen = ensure_rng(rng)
        freqs = enroll_frequencies(array, self._samples, rng=gen)
        pairing_helper, key = self._pairing.enroll(freqs, gen)
        if key.size == 0:
            raise ValueError(
                "sequential pairing selected no pairs; lower the "
                "threshold")
        sketch = self.sketch_for(key.size)
        sketch_data = sketch.generate(key, gen)
        helper = SequentialKeyHelper(pairing_helper, sketch_data,
                                     key_check_digest(key))
        return helper, key

    def reconstruct_from_frequencies(
            self, array: ROArray, freqs: np.ndarray,
            helper: SequentialKeyHelper,
            op: OperatingPoint = OperatingPoint()) -> np.ndarray:
        """Regenerate the key from one ``(n,)`` measurement row."""
        try:
            bits = self._pairing.evaluate(freqs, helper.pairing)
        except ValueError as exc:
            # Helper-data sanity check rejected the pair list.
            raise ReconstructionFailure(str(exc)) from exc
        sketch = self.sketch_for(bits.size)
        recovered = self._decode_or_fail(
            lambda: sketch.recover(bits, helper.sketch))
        return self._finish(recovered, helper.key_check)

    def batch_evaluator(self, array: ROArray,
                        helper: SequentialKeyHelper,
                        op: OperatingPoint = OperatingPoint()):
        """Vectorized evaluator: one decode per distinct pattern.

        The completion is a two-phase :class:`SketchCompletion`, so a
        lock-step campaign can fuse this device's decode workload with
        every other device sharing the code (``docs/evaluators.md``).
        """
        pairs = helper.pairing.pairs
        try:
            validate_pairs(pairs, array.n,
                           allow_reuse=not self._pairing.enforce_disjoint)
        except ValueError:
            # Rejected pair list: every query fails observably.
            return ConstantEvaluator(False)
        sketch = self.sketch_for(len(pairs))

        def extract(freqs: np.ndarray) -> np.ndarray:
            return response_bits_batch(freqs, pairs)

        return ResponseBitEvaluator(
            extract, SketchCompletion(sketch, helper.sketch,
                                      helper.key_check))
