"""Row-deduplication shared by every batch evaluation path.

Failure-rate workloads concentrate on few distinct discrete patterns
(response bits, received words, noisy readings), so each batch layer
applies its expensive scalar completion once per *distinct* row and
broadcasts the result.  This module holds the one grouping primitive
they all share.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np


def iter_unique_rows(matrix: np.ndarray,
                     rows: Optional[np.ndarray] = None
                     ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(pattern, indices)`` per distinct row of a 2-D array.

    *rows* restricts the scan to a subset of row indices; the yielded
    ``indices`` are always positions in the original *matrix*.
    """
    if rows is None:
        rows = np.arange(matrix.shape[0])
    if rows.size == 0:
        return
    unique, inverse = np.unique(matrix[rows], axis=0,
                                return_inverse=True)
    inverse = inverse.reshape(-1)
    for index in range(unique.shape[0]):
        yield unique[index], rows[inverse == index]
