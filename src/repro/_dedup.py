"""Row-deduplication shared by every batch evaluation path.

Failure-rate workloads concentrate on few distinct discrete patterns
(response bits, received words, noisy readings), so each batch layer
applies its expensive scalar completion once per *distinct* row and
broadcasts the result.  This module holds the grouping primitives they
all share.

Two regimes, one contract.  Large blocks (Monte-Carlo sweeps, the
decode-engine benches) group via ``np.unique(axis=0)``; small blocks —
the adaptive-distinguisher rounds of the attack engine, typically
≤ 16 rows — use hashed ``tobytes`` grouping instead, which skips the
structured-dtype sort machinery that dominates tiny batches.  Group
*contents* are identical either way; only the group iteration order
differs (lexicographic vs first occurrence), which no consumer depends
on: every caller computes a per-pattern result and scatters it back to
the pattern's row indices.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

#: Below this row count the hashed grouping beats the vectorized sort.
SMALL_BLOCK = 128


def iter_unique_rows(matrix: np.ndarray,
                     rows: Optional[np.ndarray] = None
                     ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(pattern, indices)`` per distinct row of a 2-D array.

    *rows* restricts the scan to a subset of row indices; the yielded
    ``indices`` are always positions in the original *matrix*.
    """
    if rows is None:
        rows = np.arange(matrix.shape[0])
    if rows.size == 0:
        return
    subset = matrix[rows]
    if subset.shape[0] <= SMALL_BLOCK:
        groups: dict = {}
        data = np.ascontiguousarray(subset)
        for position in range(data.shape[0]):
            groups.setdefault(data[position].tobytes(),
                              []).append(position)
        for positions in groups.values():
            yield subset[positions[0]], rows[np.array(positions)]
        return
    unique, inverse = np.unique(subset, axis=0, return_inverse=True)
    inverse = inverse.reshape(-1)
    for index in range(unique.shape[0]):
        yield unique[index], rows[inverse == index]


def unique_rows(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Distinct rows of a 2-D array plus the row → distinct map.

    The allocation-light sibling of :func:`iter_unique_rows` for
    callers that solve all distinct rows in one vectorized kernel and
    scatter with ``distinct_result[inverse]``.  Same contract as
    ``np.unique(matrix, axis=0, return_inverse=True)`` except that the
    distinct rows of a small block come back in first-occurrence order
    rather than sorted — immaterial to scatter-back consumers.
    """
    count = matrix.shape[0]
    if count <= SMALL_BLOCK:
        data = np.ascontiguousarray(matrix)
        first: dict = {}
        inverse = np.empty(count, dtype=np.intp)
        order: List[int] = []
        for position in range(count):
            key = data[position].tobytes()
            slot = first.get(key)
            if slot is None:
                slot = first[key] = len(order)
                order.append(position)
            inverse[position] = slot
        return matrix[order], inverse
    distinct, inverse = np.unique(matrix, axis=0, return_inverse=True)
    return distinct, inverse.reshape(-1)
