"""Kendall and compact coding of intra-group frequency orders
(paper §V-C, Table I).

A group of ``g`` oscillators has ``g!`` possible frequency orders.  Two
binary representations are used by the group-based RO PUF:

* **compact coding** — the lexicographic rank of the order, in
  ``ceil(log2 g!)`` bits (minimum length);
* **Kendall coding** — one bit per unordered pair of members, set when
  the pair appears *discordant* (inverted) relative to the canonical
  member labelling.  Adjacent-rank swaps — the dominant physical error —
  flip exactly one Kendall bit, which is what relaxes the ECC
  requirements (at a quadratic cost in length).

Conventions.  Members of a group carry canonical *labels*
``0 .. g-1`` (their position in the stored group helper data).  An
*order* is the tuple of labels sorted by descending measured frequency;
``order = (2, 0, 1, 3)`` means label 2 is fastest (the "CABD" row of
Table I).  Pair bits are emitted in lexicographic label order
``(0,1), (0,2), ..., (g-2, g-1)``; the bit for ``(x, y)`` is 1 iff ``y``
precedes ``x`` in the order.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import permutations
from math import factorial
from typing import List, Sequence, Tuple

import numpy as np


@lru_cache(maxsize=None)
def pair_table(size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Cached label-pair index tables for a size-``size`` group.

    Returns ``(xs, ys)`` — the first and second members of every
    unordered label pair, in the lexicographic emission order
    ``(0,1), (0,2), ..., (g-2, g-1)``.  The arrays are the NumPy-gather
    equivalent of ``itertools.combinations(range(size), 2)`` and are
    computed once per group size (they are pure functions of ``size``),
    so encode/decode and the batched Kendall extraction never rebuild
    pair lists in Python.  Both arrays are read-only views; copy before
    mutating.
    """
    if size < 0:
        raise ValueError("group size must be non-negative")
    grid_x, grid_y = np.triu_indices(size, k=1)
    xs = grid_x.astype(np.intp)
    ys = grid_y.astype(np.intp)
    xs.setflags(write=False)
    ys.setflags(write=False)
    return xs, ys


def order_from_frequencies(member_freqs: Sequence[float]) -> Tuple[int, ...]:
    """Descending-frequency order of member labels.

    Ties resolve to the lower label first (stable argsort), matching the
    discrete comparator convention.
    """
    freqs = np.asarray(member_freqs, dtype=float)
    if freqs.ndim != 1 or freqs.shape[0] < 1:
        raise ValueError("need a one-dimensional non-empty vector")
    return tuple(int(i) for i in np.argsort(-freqs, kind="stable"))


def _check_order(order: Sequence[int]) -> Tuple[int, ...]:
    order = tuple(int(v) for v in order)
    if sorted(order) != list(range(len(order))):
        raise ValueError(f"{order!r} is not a permutation of labels")
    return order


def kendall_bit_count(size: int) -> int:
    """Kendall code length ``g (g - 1) / 2`` for a size-``size`` group."""
    return size * (size - 1) // 2


def kendall_encode(order: Sequence[int]) -> np.ndarray:
    """Kendall code of an order: one discordance bit per label pair.

    Vectorized: the order's rank vector is inverted once and the
    discordance bits of all pairs come from one gather through the
    cached :func:`pair_table`.
    """
    order = _check_order(order)
    size = len(order)
    position = np.empty(size, dtype=np.intp)
    position[list(order)] = np.arange(size, dtype=np.intp)
    xs, ys = pair_table(size)
    return (position[ys] < position[xs]).astype(np.uint8)


def kendall_decode(bits: np.ndarray, size: int) -> Tuple[int, ...]:
    """Inverse of :func:`kendall_encode`.

    A Kendall codeword is *valid* iff its pairwise-precedence tournament
    is a total order; then each label's rank equals the number of labels
    preceding it.  Invalid words (possible after uncorrected bit errors
    — Kendall coding is non-uniform, paper §V-E) raise ``ValueError``.
    """
    bits = np.asarray(bits)
    expected = kendall_bit_count(size)
    if bits.shape != (expected,):
        raise ValueError(
            f"group size {size} needs {expected} Kendall bits")
    if expected and not np.isin(bits, (0, 1)).all():
        raise ValueError("Kendall bits must be 0/1")
    xs, ys = pair_table(size)
    # Each pair has exactly one *preceded* member (x when the bit is
    # set, else y); a label's rank equals how many labels precede it,
    # i.e. how many pairs it is preceded in.
    preceded = np.where(bits.astype(bool), xs, ys)
    ranks = np.bincount(preceded, minlength=size)
    if not np.array_equal(np.sort(ranks), np.arange(size)):
        raise ValueError("bit vector is not a valid Kendall codeword")
    order = np.empty(size, dtype=np.intp)
    order[ranks] = np.arange(size, dtype=np.intp)
    return tuple(int(label) for label in order)


def is_valid_kendall(bits: np.ndarray, size: int) -> bool:
    """Whether a bit vector decodes to a permutation."""
    try:
        kendall_decode(bits, size)
    except ValueError:
        return False
    return True


def compact_rank(order: Sequence[int]) -> int:
    """Lexicographic rank of an order among all ``g!`` permutations."""
    order = _check_order(order)
    size = len(order)
    remaining = list(range(size))
    rank = 0
    for position, label in enumerate(order):
        smaller = remaining.index(label)
        rank += smaller * factorial(size - 1 - position)
        remaining.remove(label)
    return rank


def order_from_rank(rank: int, size: int) -> Tuple[int, ...]:
    """Inverse of :func:`compact_rank`."""
    total = factorial(size)
    if not 0 <= rank < total:
        raise ValueError(f"rank {rank} outside [0, {size}!)")
    remaining = list(range(size))
    order = []
    for position in range(size):
        block = factorial(size - 1 - position)
        index, rank = divmod(rank, block)
        order.append(remaining.pop(index))
    return tuple(order)


def compact_bit_count(size: int) -> int:
    """Compact code length ``ceil(log2 g!)``."""
    return max(1, (factorial(size) - 1).bit_length())


def compact_encode(order: Sequence[int]) -> np.ndarray:
    """Compact code: the rank in MSB-first bits (Table I convention)."""
    order = _check_order(order)
    rank = compact_rank(order)
    width = compact_bit_count(len(order))
    return np.array([(rank >> (width - 1 - i)) & 1 for i in range(width)],
                    dtype=np.uint8)


def compact_decode(bits: np.ndarray, size: int) -> Tuple[int, ...]:
    """Inverse of :func:`compact_encode`."""
    bits = np.asarray(bits)
    width = compact_bit_count(size)
    if bits.shape != (width,):
        raise ValueError(f"group size {size} needs {width} compact bits")
    rank = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError("compact bits must be 0/1")
        rank = (rank << 1) | int(bit)
    return order_from_rank(rank, size)


def table1_rows(size: int = 4,
                labels: str = "ABCD") -> List[Tuple[str, str, str]]:
    """Regenerate paper Table I: ``(order, compact, kendall)`` strings.

    Rows are emitted in lexicographic order of the permutation, matching
    the paper's layout read column-first.
    """
    if len(labels) < size:
        raise ValueError("not enough labels for the group size")
    rows = []
    for order in permutations(range(size)):
        name = "".join(labels[i] for i in order)
        compact = "".join(str(b) for b in compact_encode(order))
        kendall = "".join(str(b) for b in kendall_encode(order))
        rows.append((name, compact, kendall))
    return rows


def adjacent_swap_distance(order_a: Sequence[int],
                           order_b: Sequence[int]) -> int:
    """Kendall-tau distance: Hamming distance of the Kendall codes.

    Equals the minimum number of adjacent transpositions turning one
    order into the other — "one error per flip" (paper §V-C).
    """
    return int(np.sum(kendall_encode(order_a) != kendall_encode(order_b)))
