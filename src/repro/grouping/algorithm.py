"""The grouping algorithm of the group-based RO PUF (paper §V-B, Alg. 2).

Oscillators are partitioned strictly into groups such that *every* pair
within a group exceeds the discrepancy threshold ``Δf_th``.  The greedy
construction walks the oscillators in descending frequency order and
drops each one into the first group whose most-recently-added member is
more than ``Δf_th`` faster; because insertions are monotonically
decreasing, this guarantees the all-pairs property per group.

The available entropy is ``Σ_j log2(|G_j|!)`` bits — few large groups
beat many small groups, which is what the greedy first-fit achieves.

Helper-data storage order matters (paper §VII-C): members are added in
descending frequency order, so storing groups in *construction order*
hands the attacker the complete intra-group frequency ranking (i.e. the
key) for free.  :class:`GroupingScheme` therefore supports both the
secure ``"sorted"`` (by oscillator index) policy and the leaky
``"construction"`` policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import lgamma
from typing import List, Sequence, Tuple

import numpy as np


def group_ros(frequencies: np.ndarray,
              threshold: float) -> List[List[int]]:
    """Algorithm 2 verbatim (0-based indices).

    Returns groups as lists of oscillator indices in construction order,
    i.e. descending enrollment frequency within each group.
    """
    freqs = np.asarray(frequencies, dtype=float)
    n = freqs.shape[0]
    if n < 1:
        raise ValueError("need at least one oscillator")
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    pi = np.argsort(-freqs, kind="stable")
    groups: List[List[int]] = []
    last_freq: List[float] = []  # frequency of each group's last member
    for index in pi:
        f = freqs[index]
        placed = False
        for j in range(len(groups)):
            if last_freq[j] - f > threshold:
                groups[j].append(int(index))
                last_freq[j] = f
                placed = True
                break
        if not placed:
            # The sentinel RO0.f = ∞ of the pseudocode: open a new group.
            groups.append([int(index)])
            last_freq.append(f)
    return groups


def verify_grouping(frequencies: np.ndarray,
                    groups: Sequence[Sequence[int]],
                    threshold: float) -> bool:
    """Check the all-pairs property: every intra-group pair exceeds
    *threshold*, and the partition is strict (each RO exactly once)."""
    freqs = np.asarray(frequencies, dtype=float)
    seen = set()
    for group in groups:
        for member in group:
            if member in seen:
                return False
            seen.add(member)
        for i, a in enumerate(group):
            for b in group[i + 1:]:
                if abs(freqs[a] - freqs[b]) <= threshold:
                    return False
    return len(seen) == freqs.shape[0]


def grouping_entropy(groups: Sequence[Sequence[int]]) -> float:
    """Available entropy ``Σ_j log2(|G_j|!)`` in bits (paper §V-B)."""
    return sum(lgamma(len(group) + 1) for group in groups) / np.log(2)


@dataclass(frozen=True)
class GroupingHelper:
    """Public helper data: the group partition.

    ``groups[j]`` lists the member oscillator indices of group ``j``.
    Member order within each stored group follows the scheme's storage
    policy; the *canonical labelling* used by Kendall coding is always
    the stored order.
    """

    groups: Tuple[Tuple[int, ...], ...]
    threshold: float

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "groups",
            tuple(tuple(int(m) for m in group) for group in self.groups))

    @property
    def sizes(self) -> Tuple[int, ...]:
        """Size of every stored group, in storage order."""
        return tuple(len(group) for group in self.groups)

    def with_groups(self, groups: Sequence[Sequence[int]]
                    ) -> "GroupingHelper":
        """Manipulated copy with a replaced partition (the §VI-C
        repartitioning tool)."""
        return GroupingHelper(tuple(tuple(g) for g in groups),
                              self.threshold)


class GroupingScheme:
    """Enrollment wrapper applying a storage-order policy to Alg. 2."""

    def __init__(self, threshold: float, storage_order: str = "sorted",
                 min_group_size: int = 2):
        """
        Parameters
        ----------
        threshold:
            Frequency discrepancy threshold ``Δf_th`` in Hz.
        storage_order:
            ``"sorted"`` (member indices ascending — secure) or
            ``"construction"`` (descending enrollment frequency — leaks
            the full intra-group ranking, §VII-C).
        min_group_size:
            Groups smaller than this are dropped from the key material;
            singleton groups carry ``log2(1!) = 0`` bits.
        """
        if storage_order not in ("sorted", "construction"):
            raise ValueError(
                "storage_order must be 'sorted' or 'construction'")
        if min_group_size < 1:
            raise ValueError("min_group_size must be positive")
        self._threshold = float(threshold)
        self._storage_order = storage_order
        self._min_size = int(min_group_size)

    @property
    def threshold(self) -> float:
        """Intra-group reliability threshold in Hz."""
        return self._threshold

    @property
    def storage_order(self) -> str:
        """Helper-data storage-order policy."""
        return self._storage_order

    def enroll(self, frequencies: np.ndarray) -> GroupingHelper:
        """Partition the enrollment frequencies into stored groups."""
        raw = group_ros(frequencies, self._threshold)
        kept = [group for group in raw if len(group) >= self._min_size]
        if self._storage_order == "sorted":
            stored = [sorted(group) for group in kept]
        else:
            stored = kept
        return GroupingHelper(tuple(tuple(g) for g in stored),
                              self._threshold)
