"""Entropy packing: Kendall → compact re-encoding (paper §V-E).

Kendall coding is deliberately redundant — only ``g!`` of the
``2^{g(g-1)/2}`` bit vectors are valid — so after error correction the
group-based construction converts each group's Kendall word to the
compact representation "to maintain entropy".  As the paper notes, the
fix is partial: ``g!`` is not a power of two for ``g > 2``, so residual
non-uniformity remains; :func:`packing_loss_bits` quantifies it.
"""

from __future__ import annotations

from math import factorial, log2
from typing import List, Sequence

import numpy as np

from repro.grouping.kendall import (
    compact_bit_count,
    compact_encode,
    kendall_bit_count,
    kendall_decode,
    kendall_encode,
)


def pack_group(kendall_bits: np.ndarray, size: int) -> np.ndarray:
    """Convert one group's (error-corrected) Kendall word to compact bits."""
    return compact_encode(kendall_decode(kendall_bits, size))


def unpack_group(compact_bits: np.ndarray, size: int) -> np.ndarray:
    """Convert one group's compact word back to Kendall bits."""
    from repro.grouping.kendall import compact_decode

    return kendall_encode(compact_decode(compact_bits, size))


def split_blocks(bits: np.ndarray,
                 sizes: Sequence[int]) -> List[np.ndarray]:
    """Split a concatenated Kendall bitstream into per-group words."""
    bits = np.asarray(bits)
    lengths = [kendall_bit_count(size) for size in sizes]
    if bits.shape != (sum(lengths),):
        raise ValueError(
            f"expected {sum(lengths)} bits for sizes {tuple(sizes)}")
    chunks = []
    offset = 0
    for length in lengths:
        chunks.append(bits[offset:offset + length])
        offset += length
    return chunks


def pack_key(kendall_bits: np.ndarray,
             sizes: Sequence[int]) -> np.ndarray:
    """Entropy-pack a concatenated Kendall stream into the final key bits.

    Each group contributes ``ceil(log2 g!)`` compact bits, concatenated
    in group order.
    """
    packed = [pack_group(chunk, size)
              for chunk, size in zip(split_blocks(kendall_bits, sizes),
                                     sizes)]
    if not packed:
        return np.zeros(0, dtype=np.uint8)
    return np.concatenate(packed)


def packed_length(sizes: Sequence[int]) -> int:
    """Key length in bits after entropy packing."""
    return sum(compact_bit_count(size) for size in sizes)


def packing_loss_bits(sizes: Sequence[int]) -> float:
    """Residual non-uniformity after packing, in bits.

    ``Σ_j (ceil(log2 g_j!) − log2 g_j!)`` — zero only when every group
    size has a factorial that is a power of two (``g <= 2``).
    """
    return float(sum(compact_bit_count(size) - log2(factorial(size))
                     for size in sizes))
