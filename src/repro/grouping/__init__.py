"""Group-based RO PUF building blocks (paper §V).

The grouping algorithm (Alg. 2), Kendall/compact coding of intra-group
frequency orders (Table I) and entropy packing.
"""

from repro.grouping.algorithm import (
    GroupingHelper,
    GroupingScheme,
    group_ros,
    grouping_entropy,
    verify_grouping,
)
from repro.grouping.kendall import (
    adjacent_swap_distance,
    compact_bit_count,
    compact_decode,
    compact_encode,
    compact_rank,
    is_valid_kendall,
    kendall_bit_count,
    kendall_decode,
    kendall_encode,
    order_from_frequencies,
    order_from_rank,
    pair_table,
    table1_rows,
)
from repro.grouping.packing import (
    pack_group,
    pack_key,
    packed_length,
    packing_loss_bits,
    split_blocks,
    unpack_group,
)

__all__ = [
    "GroupingHelper",
    "GroupingScheme",
    "group_ros",
    "grouping_entropy",
    "verify_grouping",
    "adjacent_swap_distance",
    "compact_bit_count",
    "compact_decode",
    "compact_encode",
    "compact_rank",
    "is_valid_kendall",
    "kendall_bit_count",
    "kendall_decode",
    "kendall_encode",
    "order_from_frequencies",
    "order_from_rank",
    "pair_table",
    "table1_rows",
    "pack_group",
    "pack_key",
    "packed_length",
    "packing_loss_bits",
    "split_blocks",
    "unpack_group",
]
