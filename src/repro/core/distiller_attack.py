"""Attacks on entropy-distiller + RO-pairing constructions
(paper §VI-D, Fig. 6b/6c).

Same methodology as the group-based attack: a steep symmetric quadratic
injected into the distiller coefficients pins every response bit except
those of pairs whose injected values collide — the *isolated* bits left
to the device's true random variation.  For disjoint pairings (Fig. 6b,
1-out-of-k masking) a single bit is isolated per placement; for
overlapping neighbour chains (Fig. 6c) the geometry can leave several
bits undetermined at once, and the attack enumerates all ``2^u`` joint
hypotheses (the paper's ``2^4`` example) — each hypothesis is a full
reprogrammed helper set (coefficients + ECC redundancy + commitment)
and the arg-min failure rate wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.framework import repair_with_commitment
from repro.core.lockstep import (
    AttackSteps,
    SelectionRequest,
    drive,
)
from repro.core.injection import (
    predicted_pair_bits,
    symmetric_quadratic,
)
from repro.core.oracle import HelperDataOracle
from repro.keygen.base import key_check_digest
from repro.keygen.distiller_pairing import (
    DistillerPairingHelper,
    DistillerPairingKeyGen,
)


@dataclass(frozen=True)
class DistillerAttackResult:
    """Outcome of a §VI-D attack.

    ``key`` holds the recovered response bits in key order;
    ``hypothesis_rounds`` lists, per placement, how many joint
    hypotheses were enumerated (1 bit → 2, Fig. 6c style 4 bits → 16).
    """

    key: np.ndarray
    confirmed: bool
    queries: int
    hypothesis_rounds: Tuple[int, ...]


class DistillerPairingAttack:
    """Drives the §VI-D attacks against an oracle-wrapped device."""

    def __init__(self, oracle: HelperDataOracle,
                 keygen: DistillerPairingKeyGen,
                 helper: DistillerPairingHelper,
                 rows: int, cols: int,
                 steepness: float = 1e12,
                 queries_per_hypothesis: int = 6,
                 max_joint_bits: int = 8,
                 injected_errors: Optional[int] = None):
        self._oracle = oracle
        self._keygen = keygen
        self._helper = helper
        self._rows = int(rows)
        self._cols = int(cols)
        self._steepness = float(steepness)
        self._queries_per_hypothesis = int(queries_per_hypothesis)
        self._max_joint = int(max_joint_bits)
        self._injected = injected_errors
        self._margin = steepness / (2.0 * (rows + 1) ** 2)

    # ------------------------------------------------------------------

    def _cell_xy(self, index: int) -> Tuple[float, float]:
        return float(index % self._cols), float(index // self._cols)

    def _key_pairs(self) -> List[Tuple[int, int]]:
        """The pairs feeding key bits, in key order.

        For masking mode these are the *enrolled selections* read from
        the public helper data; for neighbour modes the fixed chain.
        """
        if self._keygen.masking is not None:
            return self._keygen.masking.selected_pairs(
                self._helper.masking)
        return self._keygen.pairs

    def _predicted(self, payload) -> List[int]:
        cells = self._rows * self._cols
        xs = (np.arange(cells) % self._cols).astype(float)
        ys = (np.arange(cells) // self._cols).astype(float)
        values = -payload(xs, ys)
        return predicted_pair_bits(values, self._key_pairs(),
                                   self._margin)

    def _isolate_steps(self, target: int) -> AttackSteps:
        """Stepwise :meth:`isolate`; returns ``(learned, count, queries)``.

        Builds the full reprogrammed helper set per joint hypothesis
        and yields one :class:`SelectionRequest` for the arg-min scan.
        """
        pairs = self._key_pairs()
        if not 0 <= target < len(pairs):
            raise ValueError(f"target position {target} out of range")
        u, v = pairs[target]
        payload = symmetric_quadratic(self._cell_xy(u), self._cell_xy(v),
                                      self._rows, self._steepness)
        predicted = self._predicted(payload)
        isolated = [pos for pos, bit in enumerate(predicted) if bit < 0]
        if target not in isolated:
            raise AssertionError("target bit was not isolated")
        if len(isolated) > self._max_joint:
            raise ValueError(
                f"{len(isolated)} bits isolated at once exceeds the "
                f"joint-hypothesis cap {self._max_joint}")

        sketch = self._keygen.sketch_for(len(pairs))
        injected = (self._injected if self._injected is not None
                    else sketch.code.t)
        determined = [pos for pos, bit in enumerate(predicted)
                      if bit >= 0]
        if injected > len(determined):
            raise ValueError("not enough determined bits to carry the "
                             "error injection")
        seed = np.zeros(sketch.code.k, dtype=np.uint8)

        helpers = {}
        for assignment in product((0, 1), repeat=len(isolated)):
            reference = np.array(
                [bit if bit >= 0 else 0 for bit in predicted],
                dtype=np.uint8)
            for position, bit in zip(isolated, assignment):
                reference[position] = bit
            for position in determined[:injected]:
                reference[position] ^= 1
            helpers[assignment] = DistillerPairingHelper(
                distiller=self._helper.distiller.with_added(payload),
                masking=self._helper.masking,
                sketch=sketch.helper_for_response(reference, seed),
                key_check=key_check_digest(reference))
        outcome = yield SelectionRequest(
            helpers,
            queries_per_hypothesis=self._queries_per_hypothesis)
        learned = dict(zip(isolated, outcome.label))
        return learned, len(helpers), outcome.queries

    def isolate(self, target: int) -> Tuple[Dict[int, int], int]:
        """Learn the true bits of every pair isolated by one placement.

        Centres the quadratic on the *target* key position's pair; all
        positions whose injected discrepancy collapses (the target plus
        geometric mirror pairs, cf. Fig. 6c) become joint hypothesis
        bits.  Returns ``{position: bit}`` for every isolated position
        and the number of hypotheses enumerated.
        """
        learned, count, _ = drive(self._isolate_steps(target),
                                  self._oracle)
        return learned, count

    # ------------------------------------------------------------------

    def steps(self) -> AttackSteps:
        """Stepwise protocol of the full attack (lock-step entry).

        One :class:`SelectionRequest` per quadratic placement; returns
        the :class:`DistillerAttackResult` with the query bill summed
        from the selection outcomes.
        """
        pairs = self._key_pairs()
        queries = 0
        known: Dict[int, int] = {}
        rounds: List[int] = []
        for target in range(len(pairs)):
            if target in known:
                continue
            learned, hypotheses, spent = \
                yield from self._isolate_steps(target)
            known.update(learned)
            rounds.append(hypotheses)
            queries += spent
        key = np.array([known[pos] for pos in range(len(pairs))],
                       dtype=np.uint8)
        # Marginal (near-tie) pairs may have been frozen on the other
        # side at enrollment; the public commitment fixes them offline.
        repaired = repair_with_commitment(key, self._helper.key_check,
                                          max_flips=2)
        if repaired is not None:
            key = repaired
        confirmed = key_check_digest(key) == self._helper.key_check
        return DistillerAttackResult(
            key=key, confirmed=confirmed, queries=queries,
            hypothesis_rounds=tuple(rounds))

    def run(self) -> DistillerAttackResult:
        """Recover every key bit, sliding the isolation pattern.

        Drives :meth:`steps` against the attack's own oracle — the
        scalar per-device reference for the lock-step campaign engine.
        """
        return drive(self.steps(), self._oracle)
