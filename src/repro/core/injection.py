"""Attacker-side error injection and polynomial payload construction.

Every §VI attack "injects additional errors, intentionally and
symmetrically" to move the device's error count next to the ECC
correction boundary ``t`` (the common PDF offset of Fig. 5).  This
module collects the deterministic injection primitives:

* orientation flips / position swaps of stored pairs (sequential
  pairing, §VI-A);
* crossover-interval rewrites (temperature-aware, §VI-B);
* reference-bit inversions inside recomputed ECC redundancy
  (group-based / distiller, §VI-C: *"we just compute the ECC redundancy
  given some inverted bit values"*);
* the steep symmetric quadratic surfaces that overshadow random
  variation everywhere except at an attacker-chosen target pair
  (§VI-C/D, Fig. 6).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.pairing.sequential import SequentialPairingHelper
from repro.pairing.temp_aware import TempAwareHelper
from repro.puf.variation import Polynomial2D


# ----------------------------------------------------------------------
# sequential pairing (§VI-A)


def flip_orientations(helper: SequentialPairingHelper,
                      positions: Sequence[int]) -> SequentialPairingHelper:
    """Reverse the stored index order of the given pairs.

    Each flip inverts exactly one response bit, deterministically and
    regardless of its secret value: *k* flips put exactly *k* errors at
    the ECC input (plus noise).  This is the attacker's precision
    throttle for the Fig. 5 offset.
    """
    result = helper
    for position in positions:
        result = result.with_flipped_orientation(position)
    return result


def swap_positions(helper: SequentialPairingHelper,
                   swaps: Sequence[Tuple[int, int]]
                   ) -> SequentialPairingHelper:
    """Swap stored list positions of pair index tuples.

    A swap introduces two errors iff the two pairs' response bits
    differ — the paper's original accelerator ("initially, the
    additional pairs can be chosen at random; after revealing some
    response bit relations, one can select these pairs which will
    introduce a pair of erroneous bits for sure").
    """
    result = helper
    for i, j in swaps:
        result = result.with_swapped_positions(i, j)
    return result


# ----------------------------------------------------------------------
# temperature-aware cooperative (§VI-B)


def break_inversions(helper: TempAwareHelper, temperature: float,
                     count: int,
                     exclude: Sequence[int] = ()) -> TempAwareHelper:
    """Inject up to *count* deterministic errors via interval rewrites.

    For a cooperating pair whose crossover interval lies *below* the
    attack temperature, the device compensates the crossover by
    inverting the measured bit (``T > T_h``).  Rewriting the stored
    interval to sit above the attack temperature silently drops that
    inversion — one guaranteed bit error.  Symmetrically, a pair with
    its interval above the temperature can be forced *into* an
    inversion.  Entries whose *pair index* appears in *exclude* (the
    attack's target, assistant, candidate) are left untouched.  Pairs
    assisting an entry
    whose interval covers the attack temperature are protected
    automatically: corrupting their stored interval would corrupt the
    assisted bit too, and the injected error count would no longer be
    exact.

    Returns the modified helper; raises ``ValueError`` if fewer than
    *count* injectable entries exist.
    """
    protected = set(exclude)
    for entry in helper.cooperation:
        if entry.t_low <= temperature <= entry.t_high:
            protected.add(entry.pair_index)
            protected.add(entry.assist_index)

    result = helper
    injected = 0
    span = max(helper.t_max - helper.t_min, 1.0)
    for position, entry in enumerate(helper.cooperation):
        if injected >= count:
            break
        if entry.pair_index in protected:
            continue
        if entry.t_high < temperature:
            # Device would invert; move the interval above T to stop it.
            result = result.replace_entry(position, entry.with_interval(
                temperature + span, temperature + 2 * span))
            injected += 1
        elif entry.t_low > temperature:
            # Device would not invert; move the interval below T to
            # force a spurious inversion.
            result = result.replace_entry(position, entry.with_interval(
                temperature - 2 * span, temperature - span))
            injected += 1
    if injected < count:
        raise ValueError(
            f"only {injected} of {count} requested errors are injectable "
            f"at T={temperature}")
    return result


# ----------------------------------------------------------------------
# distiller payloads (§VI-C/D, Fig. 6)


def symmetric_quadratic(point_a: Tuple[float, float],
                        point_b: Tuple[float, float],
                        rows: int,
                        steepness: float = 1e9) -> Polynomial2D:
    """Steep quadratic surface equal at two chosen cells.

    Constructs ``Q(x, y) = steepness * s(x, y)^2`` with the linear form
    ``s(x, y) = (x - m_x) + (y - m_y) / (rows + 1)`` centred on the
    midpoint ``m`` of the two target cells.  Properties:

    * ``Q(a) = Q(b)`` — the target pair's injected values cancel, so its
      response bit stays determined by the *device's own* random
      variation (the triangle-marked extremum of Fig. 6);
    * ``s`` is injective over the integer grid (the ``1/(rows+1)``
      y-weight cannot be cancelled by integer column offsets), so
      ``Q`` collides only on cells exactly symmetric about ``m``;
    * the gradient magnitude is ``O(steepness)``, overshadowing random
      frequency variation everywhere else.
    """
    ax, ay = point_a
    bx, by = point_b
    if (ax, ay) == (bx, by):
        raise ValueError("target cells must differ")
    mx = (ax + bx) / 2.0
    my = (ay + by) / 2.0
    w = 1.0 / (rows + 1)
    # s^2 = (x - mx)^2 + 2 w (x - mx)(y - my) + w^2 (y - my)^2, expanded
    # onto canonical degree-2 terms (1, x, y, x^2, xy, y^2).
    c0 = mx * mx + 2 * w * mx * my + w * w * my * my
    cx = -2 * mx - 2 * w * my
    cy = -2 * w * mx - 2 * w * w * my
    cxx = 1.0
    cxy = 2 * w
    cyy = w * w
    coeffs = steepness * np.array([c0, cx, cy, cxx, cxy, cyy])
    return Polynomial2D(2, coeffs)


def injected_values(payload: Polynomial2D, x: np.ndarray,
                    y: np.ndarray) -> np.ndarray:
    """Injected *residual* contribution ``-Q`` at every oscillator.

    The device subtracts the stored polynomial, so adding ``Q`` to the
    stored coefficients superimposes ``-Q(x, y)`` onto the residual map.
    """
    return -payload(np.asarray(x, dtype=float), np.asarray(y, dtype=float))


def predicted_pair_bits(values: np.ndarray,
                        pairs: Sequence[Tuple[int, int]],
                        margin: float) -> List[int]:
    """Predict each pair's response bit under an injected value map.

    Returns ``1``/``0`` for pairs whose injected discrepancy exceeds
    *margin* (attacker-determined bits) and ``-1`` for pairs left to
    random variation (undetermined — hypothesis targets).
    """
    vals = np.asarray(values, dtype=float)
    bits: List[int] = []
    for a, b in pairs:
        delta = vals[a] - vals[b]
        if delta > margin:
            bits.append(1)
        elif delta < -margin:
            bits.append(0)
        else:
            bits.append(-1)
    return bits


def pair_cells_by_value(values: np.ndarray, exclude: Sequence[int],
                        min_gap: float) -> List[Tuple[int, int]]:
    """Greedy disjoint pairing of cells with well-separated values.

    Used by the §VI-C repartitioning: every produced pair's injected
    values differ by at least *min_gap*, so its response bit is fully
    attacker-determined.  Cells in *exclude* (the isolation target) are
    skipped; at most one trailing cell may remain unpaired and is
    dropped (it would form a singleton group with zero entropy anyway).
    """
    vals = np.asarray(values, dtype=float)
    order = [int(i) for i in np.argsort(vals, kind="stable")
             if int(i) not in set(exclude)]
    pairs: List[Tuple[int, int]] = []
    pending: List[int] = []
    for cell in order:
        if not pending:
            pending.append(cell)
            continue
        if abs(vals[cell] - vals[pending[0]]) >= min_gap:
            pairs.append((pending.pop(0), cell))
            # Any cells skipped because they tied with the previous
            # anchor can now pair with later, larger values.
            continue
        pending.append(cell)
    while len(pending) >= 2:
        a = pending.pop(0)
        partner = next((c for c in pending
                        if abs(vals[c] - vals[a]) >= min_gap), None)
        if partner is None:
            break
        pending.remove(partner)
        pairs.append((a, partner))
    return pairs
