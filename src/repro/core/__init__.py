"""The paper's contribution: helper-data manipulation attacks (§VI).

Failure-rate hypothesis testing (Fig. 5) plus one attack driver per
construction: sequential pairing (§VI-A), temperature-aware cooperative
(§VI-B), group-based (§VI-C, Fig. 6a) and distiller + pairing (§VI-D,
Fig. 6b/6c).
"""

from repro.core.framework import (
    ComparisonOutcome,
    FailureRateComparer,
    SelectionOutcome,
    repair_with_commitment,
    select_hypothesis,
)
from repro.core.injection import (
    break_inversions,
    flip_orientations,
    injected_values,
    pair_cells_by_value,
    predicted_pair_bits,
    swap_positions,
    symmetric_quadratic,
)
from repro.core.oracle import HelperDataOracle
from repro.core.batch_oracle import BatchOracle
from repro.core.lockstep import (
    ComparisonRequest,
    QueryBlockRequest,
    SelectionRequest,
    SPRTRequest,
    drive,
    execute_request,
    outcome_queries,
)
from repro.core.sprt import SPRTDistinguisher, SPRTOutcome
from repro.core.sequential_attack import (
    SequentialAttackResult,
    SequentialPairingAttack,
)
from repro.core.temp_aware_attack import (
    ParityUnionFind,
    TempAwareAttack,
    TempAwareAttackResult,
)
from repro.core.group_attack import GroupAttackResult, GroupBasedAttack
from repro.core.distiller_attack import (
    DistillerAttackResult,
    DistillerPairingAttack,
)

__all__ = [
    "ComparisonOutcome",
    "FailureRateComparer",
    "SelectionOutcome",
    "repair_with_commitment",
    "select_hypothesis",
    "break_inversions",
    "flip_orientations",
    "injected_values",
    "pair_cells_by_value",
    "predicted_pair_bits",
    "swap_positions",
    "symmetric_quadratic",
    "HelperDataOracle",
    "BatchOracle",
    "ComparisonRequest",
    "QueryBlockRequest",
    "SelectionRequest",
    "SPRTRequest",
    "drive",
    "execute_request",
    "outcome_queries",
    "SPRTDistinguisher",
    "SPRTOutcome",
    "SequentialAttackResult",
    "SequentialPairingAttack",
    "TempAwareAttackResult",
    "TempAwareAttack",
    "ParityUnionFind",
    "GroupAttackResult",
    "GroupBasedAttack",
    "DistillerAttackResult",
    "DistillerPairingAttack",
]
