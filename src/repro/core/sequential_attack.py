"""Key-recovery attack on the sequential pairing construction
(paper §VI-A).

For every pair position ``j``, the attacker swaps helper-data positions
``0`` and ``j``: the swap is invisible iff ``r_0 = r_j`` and introduces
two bit errors otherwise.  With the error count pre-loaded to the ECC
boundary by deterministic injection, the two hypotheses separate
cleanly in the failure rate.  Matching ``r_0`` against every other bit
leaves two candidate keys (the vector and its complement); the final
decision writes candidate-consistent ECC redundancy plus key-check and
observes which candidate the application accepts.

Reproduction note (recorded in EXPERIMENTS.md): for *narrow-sense BCH*
codes the all-ones word is a codeword, so complement candidates are
*indistinguishable* through ECC-redundancy manipulation alone — the
code-offset sketch recovers the true response either way.  The final
decision therefore goes through the application commitment (key check),
which is itself writable helper data; with a non-complement-closed code
the paper's pure-ECC comparison works as stated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.framework import (
    ComparisonOutcome,
    FailureRateComparer,
    repair_with_commitment,
)
from repro.core.injection import flip_orientations
from repro.core.lockstep import (
    AttackSteps,
    ComparisonRequest,
    QueryBlockRequest,
    SPRTRequest,
    drive,
    outcome_queries,
)
from repro.core.oracle import HelperDataOracle
from repro.keygen.base import OperatingPoint, key_check_digest
from repro.keygen.sequential import (
    SequentialKeyHelper,
    SequentialPairingKeyGen,
)


@dataclass(frozen=True)
class SequentialAttackResult:
    """Outcome of the §VI-A attack.

    ``relations[j]`` is the recovered value of ``r_0 XOR r_j`` (index 0
    is 0 by definition).  ``key`` is the fully resolved key when the
    final decision step ran, else ``None``.
    """

    relations: np.ndarray
    key: Optional[np.ndarray]
    queries: int
    comparisons: Tuple[ComparisonOutcome, ...]

    @property
    def candidates(self) -> Tuple[np.ndarray, np.ndarray]:
        """The two candidate keys implied by the relations."""
        first = self.relations.astype(np.uint8)
        return first, (first ^ 1).astype(np.uint8)


class SequentialPairingAttack:
    """Drives the §VI-A attack against an oracle-wrapped device."""

    def __init__(self, oracle: HelperDataOracle,
                 keygen: SequentialPairingKeyGen,
                 helper: SequentialKeyHelper,
                 comparer: Optional[FailureRateComparer] = None,
                 injected_errors: Optional[int] = None,
                 op: Optional[OperatingPoint] = None):
        """
        Parameters
        ----------
        oracle:
            Failure oracle of the device under attack.
        keygen:
            The (public) construction parameters of the device.
        helper:
            The original public helper data, as read from NVM.
        injected_errors:
            Deterministic error count pre-loaded via orientation flips.
            Defaults to ``t - 1`` of the construction's ECC: a correct
            hypothesis then fails only when noise adds two or more
            errors, while a wrong hypothesis (+2 errors) almost always
            fails — maximum Fig. 5 separation.
        """
        self._oracle = oracle
        self._keygen = keygen
        self._helper = helper
        self._comparer = comparer or FailureRateComparer()
        self._op = op
        bits = helper.pairing.bits
        if bits < 2:
            raise ValueError("need at least two pairs to attack")
        code = keygen.sketch_for(bits).code
        from repro.ecc.simple import BlockwiseCode

        if isinstance(code, BlockwiseCode):
            # Multi-block ECC (the paper's "fairly straightforward"
            # extension): a swap drops one error into block(0) and one
            # into block(target), so pre-loading block(0) to its inner
            # boundary t suffices — the H1 swap then overflows it.
            self._block_size: Optional[int] = code.inner.n
            self._inner_code = code.inner
            default = code.inner.t
        else:
            self._block_size = None
            self._inner_code = code
            default = max(code.t - 1, 0)
        self._injected = (injected_errors if injected_errors is not None
                          else default)
        self._ml_decoder = not code.bounded_distance

    @property
    def injected_errors(self) -> int:
        """Deterministic error count injected per comparison."""
        return self._injected

    def _injection_positions(self, target: int) -> List[int]:
        """Positions to orientation-flip, avoiding pair 0 and the target.

        With a blockwise ECC the injected errors must share position
        0's block, otherwise they load the wrong decoder.
        """
        bits = self._helper.pairing.bits
        if self._block_size is None:
            positions = [p for p in range(bits) if p not in (0, target)]
        else:
            positions = [p for p in range(min(self._block_size, bits))
                         if p not in (0, target)]
        if len(positions) < self._injected:
            raise ValueError("not enough pairs to carry the injection")
        return positions[:self._injected]

    def _relation_steps(self, target: int) -> AttackSteps:
        """Stepwise :meth:`test_relation`; returns the same pair."""
        if not 1 <= target < self._helper.pairing.bits:
            raise ValueError("target must be a non-zero pair position")
        injected = flip_orientations(self._helper.pairing,
                                     self._injection_positions(target))
        reference = self._helper.with_pairing(injected)
        test = self._helper.with_pairing(
            injected.with_swapped_positions(0, target))
        outcome = yield ComparisonRequest(reference, test,
                                          self._comparer, self._op)
        # Lower failure rate for the swapped helper would mean the swap
        # *removed* errors, which the construction cannot produce; treat
        # tie as "equal" (no extra errors observed).
        relation = 1 if outcome.decision == "a" else 0
        return relation, outcome

    def test_relation(self, target: int) -> Tuple[int, ComparisonOutcome]:
        """Recover ``r_0 XOR r_target`` with one paired comparison.

        Builds a *reference* helper carrying only the injected errors
        and a *test* helper additionally swapping positions 0 and
        *target*; the test helper fails more iff the bits differ.
        """
        return drive(self._relation_steps(target), self._oracle)

    def _paired_relations_steps(self) -> AttackSteps:
        """Stepwise paired-comparer relation recovery."""
        bits = self._helper.pairing.bits
        relations = np.zeros(bits, dtype=np.uint8)
        outcomes: List[ComparisonOutcome] = []
        for target in range(1, bits):
            relation, outcome = yield from self._relation_steps(target)
            relations[target] = relation
            outcomes.append(outcome)
        return relations, outcomes

    def recover_relations(self) -> Tuple[np.ndarray,
                                         List[ComparisonOutcome]]:
        """Match ``r_0`` against every other response bit."""
        if self._ml_decoder:
            return self._recover_relations_ml(), []
        return drive(self._paired_relations_steps(), self._oracle)

    # ------------------------------------------------------------------
    # maximum-likelihood (non-bounded-distance) decoders

    def _ml_rate_steps(self, helper, samples: int) -> AttackSteps:
        """Stepwise empirical failure rate over *samples* queries."""
        outcomes = yield QueryBlockRequest(helper, samples, self._op)
        return np.count_nonzero(~outcomes) / samples

    def _ml_calibrate_steps(self, anchor: int,
                            samples: int = 4) -> AttackSteps:
        """Find an injection whose failure signature *moves* when one
        extra error lands on *anchor*.

        ML decoders (e.g. first-order Reed–Muller) have no failure
        radius: a pattern at exactly half the minimum distance resolves
        deterministically but *codeword-dependently*, so no offline
        search can guarantee separation.  Instead the attacker
        calibrates online: flip a candidate injection set, then
        additionally flip the anchor itself (a guaranteed extra error,
        independent of any secret), and keep the first set whose two
        failure signatures differ.  Returns the injection positions and
        the failure signature (0/1) of the anchor-error case.
        """
        pairing = self._helper.pairing
        bits = pairing.bits
        block = self._block_size or self._inner_code.n
        block_start = (anchor // block) * block
        block_end = min(block_start + block, bits)
        candidates = [p for p in range(block_start, block_end)
                      if p != anchor]
        rng = np.random.default_rng(anchor)
        inner_t = self._inner_code.t
        for trial in range(60):
            size = inner_t + (trial % 2)
            if size > len(candidates):
                size = len(candidates)
            subset = sorted(rng.choice(candidates, size=size,
                                       replace=False).tolist())
            base = flip_orientations(pairing, subset)
            rate_eq = yield from self._ml_rate_steps(
                self._helper.with_pairing(base), samples)
            rate_neq = yield from self._ml_rate_steps(
                self._helper.with_pairing(
                    base.with_flipped_orientation(anchor)), samples)
            if rate_eq <= 0.25 and rate_neq >= 0.75:
                return [int(p) for p in subset], 1
            if rate_eq >= 0.75 and rate_neq <= 0.25:
                return [int(p) for p in subset], 0
        raise ValueError(
            f"no separating injection found for anchor {anchor}")

    def _ml_calibrate_anchor(self, anchor: int,
                             samples: int = 4) -> Tuple[List[int], int]:
        """Scalar drive of :meth:`_ml_calibrate_steps`."""
        return drive(self._ml_calibrate_steps(anchor, samples),
                     self._oracle)

    def _ml_test_steps(self, anchor: int, positions: List[int],
                       neq_signature: int, target: int,
                       samples: int = 4) -> AttackSteps:
        """One relation test against a calibrated anchor signature."""
        injected = flip_orientations(self._helper.pairing, positions)
        test = self._helper.with_pairing(
            injected.with_swapped_positions(anchor, target))
        rate = yield from self._ml_rate_steps(test, samples)
        observed = 1 if rate >= 0.5 else 0
        return 1 if observed == neq_signature else 0

    def _ml_relations_steps(self) -> AttackSteps:
        """Stepwise relation recovery against an ML-decoded layer.

        Anchor A (position 0) handles every target outside its block;
        targets sharing block 0 are compared against a second anchor in
        the next block and chained through ``rel(0, B)``.
        """
        bits = self._helper.pairing.bits
        block = self._block_size or self._inner_code.n
        relations = np.zeros(bits, dtype=np.uint8)
        positions_a, signature_a = yield from self._ml_calibrate_steps(
            0)
        in_block0 = [t for t in range(1, bits) if t < block]
        outside = [t for t in range(1, bits) if t >= block]
        for target in outside:
            relations[target] = yield from self._ml_test_steps(
                0, positions_a, signature_a, target)
        if in_block0:
            if not outside:
                raise ValueError(
                    "single-block ML code: swap targets always share "
                    "the anchor block; brute-force the (tiny) key "
                    "against the public commitment instead")
            anchor_b = outside[0]
            positions_b, signature_b = \
                yield from self._ml_calibrate_steps(anchor_b)
            rel_0_b = relations[anchor_b]
            for target in in_block0:
                rel_b_t = yield from self._ml_test_steps(
                    anchor_b, positions_b, signature_b, target)
                relations[target] = rel_0_b ^ rel_b_t
        return relations

    def _recover_relations_ml(self) -> np.ndarray:
        """Relation recovery against an ML-decoded reliability layer."""
        return drive(self._ml_relations_steps(), self._oracle)

    def _sprt_relations_steps(self, calibration_queries: int = 25
                              ) -> AttackSteps:
        """Stepwise SPRT relation recovery (calibration + tests).

        Calibration is expressed as two fixed query blocks whose
        failure counts feed ``SPRTDistinguisher.from_counts`` — the
        same constructor ``calibrate`` uses, so the stepwise and
        direct calibrations share one implementation.
        """
        from repro.core.sprt import SPRTDistinguisher

        bits = self._helper.pairing.bits
        if self._injected + 3 > bits - 1:
            raise ValueError("not enough pairs for SPRT calibration")
        # Injection drawn from the tail of the pair list; the unequal
        # calibration adds TWO extra errors, mirroring what a swap of
        # unequal bits produces.
        tail = list(range(bits - self._injected, bits))
        extras = [bits - self._injected - 2, bits - self._injected - 1]
        base = flip_orientations(self._helper.pairing, tail)
        helper_eq = self._helper.with_pairing(base)
        helper_neq = self._helper.with_pairing(
            flip_orientations(base, extras))
        outcomes_eq = yield QueryBlockRequest(
            helper_eq, calibration_queries, self._op)
        outcomes_neq = yield QueryBlockRequest(
            helper_neq, calibration_queries, self._op)
        sprt = SPRTDistinguisher.from_counts(
            int(np.count_nonzero(~outcomes_eq)),
            int(np.count_nonzero(~outcomes_neq)), calibration_queries)

        relations = np.zeros(bits, dtype=np.uint8)
        occupied = set(tail)
        for target in range(1, bits):
            if target in occupied:
                # Move the injection away from this target.
                positions = [p for p in range(1, bits)
                             if p != target][:self._injected]
                injected = flip_orientations(self._helper.pairing,
                                             positions)
            else:
                injected = base
            test = self._helper.with_pairing(
                injected.with_swapped_positions(0, target))
            outcome = yield SPRTRequest(sprt, test, self._op)
            relations[target] = 1 if outcome.decision == "neq" else 0
        return relations

    def recover_relations_sprt(self, calibration_queries: int = 25
                               ) -> np.ndarray:
        """SPRT variant: one calibration, then single-helper tests.

        The paired comparer queries a reference helper alongside every
        test helper; Wald's SPRT instead calibrates the two failure
        rates once (injection only vs injection + one known extra
        error) and then tests each swapped helper alone — roughly
        halving the query bill in the engineered regime.
        """
        return drive(self._sprt_relations_steps(calibration_queries),
                     self._oracle)

    def _resolve_steps(self, relations: np.ndarray) -> AttackSteps:
        """Stepwise two-candidate resolution (§VI-A final decision)."""
        bits = relations.shape[0]
        sketch = self._keygen.sketch_for(bits)
        seed = np.zeros(sketch.code.k, dtype=np.uint8)
        for candidate in (relations.astype(np.uint8),
                          (relations ^ 1).astype(np.uint8)):
            programmed = SequentialKeyHelper(
                self._helper.pairing,
                sketch.helper_for_response(candidate, seed),
                key_check_digest(candidate))
            # A handful of retries guards against a noise burst failing
            # the correct candidate's reconstruction.
            outcomes = yield QueryBlockRequest(programmed, 3, self._op,
                                               stop_on_success=True)
            if outcomes.any():
                return candidate
        # Neither candidate was accepted: a few relations were called
        # wrong (marginal bits in a noisy regime).  The key-check digest
        # is public helper data, so low-weight mistakes are repaired
        # offline at zero query cost.
        for candidate in (relations.astype(np.uint8),
                          (relations ^ 1).astype(np.uint8)):
            repaired = repair_with_commitment(
                candidate, self._helper.key_check, max_flips=2)
            if repaired is not None:
                return repaired
        return None

    def resolve_key(self, relations: np.ndarray) -> Optional[np.ndarray]:
        """Final decision between the two candidate keys (§VI-A).

        Writes, for each candidate, ECC redundancy consistent with the
        candidate plus the matching key-check commitment, and observes
        which reconstruction the application accepts.
        """
        return drive(self._resolve_steps(relations), self._oracle)

    def _attack_body_steps(self, method: str) -> AttackSteps:
        """Relations plus candidate resolution, without accounting."""
        if method == "paired":
            if self._ml_decoder:
                relations = yield from self._ml_relations_steps()
                outcomes: List[ComparisonOutcome] = []
            else:
                relations, outcomes = \
                    yield from self._paired_relations_steps()
        elif method == "sprt":
            relations = yield from self._sprt_relations_steps()
            outcomes = []
        else:
            raise ValueError("method must be 'paired' or 'sprt'")
        key = yield from self._resolve_steps(relations)
        return relations, key, outcomes

    def steps(self, method: str = "paired") -> AttackSteps:
        """Stepwise protocol of the full attack (lock-step entry).

        Yields comparison / SPRT / query-block requests and returns
        the :class:`SequentialAttackResult`; the query bill is summed
        from the delivered outcomes, so scalar and lock-step execution
        report identical totals.
        """
        inner = self._attack_body_steps(method)
        queries = 0
        reply = None
        while True:
            try:
                request = inner.send(reply)
            except StopIteration as stop:
                relations, key, outcomes = stop.value
                return SequentialAttackResult(
                    relations=relations, key=key, queries=queries,
                    comparisons=tuple(outcomes))
            reply = yield request
            queries += outcome_queries(reply)

    def run(self, method: str = "paired") -> SequentialAttackResult:
        """Full attack: relations, then the two-candidate resolution.

        ``method`` selects the distinguisher: ``"paired"`` (adaptive
        reference/test comparison, no calibration) or ``"sprt"``
        (Wald's sequential test after a one-time calibration).  Drives
        :meth:`steps` against the attack's own oracle — the scalar
        per-device reference for the lock-step campaign engine.
        """
        return drive(self.steps(method), self._oracle)
