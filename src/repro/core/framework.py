"""Statistical framework of the helper-data manipulation attacks
(paper §VI, Fig. 5).

Response bits are attacked one by one (or in small groups).  Each
hypothesis about the bits corresponds to a specific helper-data
manipulation; the hypotheses are distinguished by their key-regeneration
*failure rates*: the correct hypothesis leaves the error count at the
ECC input lower, hence fails less often.  Error injection shifts all
hypotheses' error PDFs toward the correction boundary ``t`` so that the
rate gap becomes observable with few queries (the "common offset" of
Fig. 5).

Two distinguishers are provided:

* :class:`FailureRateComparer` — paired adaptive comparison of two
  helpers with Hoeffding early stopping; used when hypotheses form a
  binary choice (equal/unequal, 0/1).
* :func:`select_hypothesis` — fixed-budget arg-min selection over many
  labelled helpers; used for the multi-bit ``2^u``-hypothesis variants
  (paper Fig. 6c).

Both drive a :class:`~repro.core.batch_oracle.BatchOracle` in
vectorized blocks (decisions, query counts and stream positions match
the single-query walk bitwise); the lock-step campaign engine
(:mod:`repro.core.lockstep`) additionally advances the same decision
rules for whole device batches at once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from repro.core.batch_oracle import BatchOracle
from repro.core.oracle import HelperDataOracle
from repro.keygen.base import OperatingPoint, key_check_digest


@dataclass(frozen=True)
class ComparisonOutcome:
    """Result of a paired failure-rate comparison.

    ``decision`` is ``"a"`` or ``"b"`` for the helper with the *lower*
    estimated failure rate, or ``"tie"`` when the budget ran out without
    statistically meaningful separation.
    """

    decision: str
    queries: int
    failures_a: int
    failures_b: int
    samples: int

    @property
    def rate_a(self) -> float:
        """Empirical failure rate of helper ``a``."""
        return self.failures_a / self.samples if self.samples else 0.0

    @property
    def rate_b(self) -> float:
        """Empirical failure rate of helper ``b``."""
        return self.failures_b / self.samples if self.samples else 0.0


class FailureRateComparer:
    """Adaptive paired comparison of two helpers' failure rates.

    Samples the two helpers in paired a/b order and stops as soon as
    the empirical rate difference exceeds a two-sided Hoeffding bound
    at the configured confidence, or when the per-side budget is
    exhausted (then resolving by a two-proportion z-test, with
    ``"tie"`` on insignificance).  Despite the sequential decision
    rule, queries are *not* issued one at a time: a scalar oracle is
    walked query by query, while a
    :class:`~repro.core.batch_oracle.BatchOracle` is driven in
    speculative vectorized blocks whose unused rows are unwound, and
    the lock-step engine (:mod:`repro.core.lockstep`) advances many
    devices' comparisons through the same rules in shared rounds —
    all three paths land on bitwise-identical decisions and query
    counts.
    """

    def __init__(self, max_queries_per_side: int = 40,
                 min_queries_per_side: int = 3,
                 confidence: float = 0.999,
                 identical_stop: Optional[int] = 6):
        """
        Parameters
        ----------
        identical_stop:
            When both helpers show *identical extreme* behaviour (both
            zero failures, or both all failures) after this many paired
            samples, stop and report a tie.  In the engineered Fig. 5
            regime — injection placing the correct hypothesis just below
            the ECC boundary and a wrong one just above — "both never
            fail" already refutes the unequal hypothesis, so waiting for
            the full budget is wasted queries.  Set ``None`` to disable
            for un-engineered comparisons.
        """
        if not 0.5 < confidence < 1.0:
            raise ValueError("confidence must be in (0.5, 1)")
        if min_queries_per_side < 1:
            raise ValueError("min_queries_per_side must be positive")
        if max_queries_per_side < min_queries_per_side:
            raise ValueError("max budget below minimum budget")
        self._max = int(max_queries_per_side)
        self._min = int(min_queries_per_side)
        self._confidence = float(confidence)
        self._identical_stop = (None if identical_stop is None
                                else int(identical_stop))

    @property
    def max_queries_per_side(self) -> int:
        """Per-helper query budget of one comparison."""
        return self._max

    @property
    def min_queries_per_side(self) -> int:
        """Paired samples required before any stopping rule applies."""
        return self._min

    @property
    def confidence(self) -> float:
        """Two-sided confidence level of the Hoeffding stopping rule."""
        return self._confidence

    @property
    def identical_stop(self) -> Optional[int]:
        """Identical-extremes early-stop threshold (``None`` = off)."""
        return self._identical_stop

    def _bound(self, samples: int) -> float:
        """Hoeffding bound on the difference of two Bernoulli means."""
        delta = 1.0 - self._confidence
        return 2.0 * math.sqrt(math.log(2.0 / delta) / (2.0 * samples))

    @staticmethod
    def _significant(failures_a: int, failures_b: int,
                     samples: int, z_threshold: float = 3.0) -> bool:
        """Two-proportion z-test at budget exhaustion.

        A raw-majority decision on exhaustion would turn two *equal*
        moderate failure rates into a coin flip; insignificant
        differences must resolve to a tie instead.
        """
        p_a = failures_a / samples
        p_b = failures_b / samples
        variance = (p_a * (1 - p_a) + p_b * (1 - p_b)) / samples
        if variance == 0.0:
            return p_a != p_b
        return abs(p_a - p_b) / math.sqrt(variance) > z_threshold

    def compare(self, oracle: HelperDataOracle, helper_a, helper_b,
                op: Optional[OperatingPoint] = None) -> ComparisonOutcome:
        """Decide which helper fails less often.

        A :class:`~repro.core.batch_oracle.BatchOracle` is driven in
        vectorized blocks; decisions, per-comparison query counts and
        the oracle's noise-stream position all match the sequential
        path bitwise (unused block rows are unwound).
        """
        if isinstance(oracle, BatchOracle):
            return self._compare_blocked(oracle, helper_a, helper_b, op)
        start = oracle.queries
        failures_a = 0
        failures_b = 0
        samples = 0
        separated = False
        for _ in range(self._max):
            failures_a += 0 if oracle.query(helper_a, op) else 1
            failures_b += 0 if oracle.query(helper_b, op) else 1
            samples += 1
            if samples < self._min:
                continue
            # Fast path: perfectly separated outcomes.  If one helper
            # never failed while the other always did, the posterior odds
            # of the rates being equal decay as 2^-samples; a handful of
            # samples already beats the Hoeffding criterion by orders of
            # magnitude (the near-deterministic regime the error
            # injection engineers on purpose).
            if {failures_a, failures_b} == {0, samples}:
                separated = True
                break
            if (self._identical_stop is not None
                    and samples >= self._identical_stop
                    and failures_a == failures_b
                    and failures_a in (0, samples)):
                break
            gap = abs(failures_a - failures_b) / samples
            if gap > self._bound(samples):
                separated = True
                break
        if not separated:
            separated = self._significant(failures_a, failures_b,
                                          samples)
        if not separated or failures_a == failures_b:
            decision = "tie"
        elif failures_a < failures_b:
            decision = "a"
        else:
            decision = "b"
        return ComparisonOutcome(decision, oracle.queries - start,
                                 failures_a, failures_b, samples)

    def _compare_blocked(self, oracle: BatchOracle, helper_a, helper_b,
                         op: Optional[OperatingPoint]
                         ) -> ComparisonOutcome:
        """Block-vectorized :meth:`compare` over a batched oracle.

        Delegates to the lock-step ``ComparisonEngine`` with a single
        lane, so the vectorized form of the stopping rules exists
        exactly once — the same code advances one device's block walk
        and a whole campaign batch.  Rows past the decision point are
        unwound by the engine; stream position and query count land
        where the sequential loop would have stopped.
        """
        # Imported here: lockstep depends on this module at import
        # time for the outcome/request vocabulary.
        from repro.core.lockstep import (
            ComparisonEngine,
            ComparisonRequest,
            Lane,
        )

        lane = Lane(oracle, ComparisonRequest(helper_a, helper_b,
                                              self, op))
        engine = ComparisonEngine()
        while not lane.finished:
            engine.step([lane])
        return lane.outcome


@dataclass(frozen=True)
class SelectionOutcome:
    """Result of an arg-min hypothesis selection."""

    label: Hashable
    queries: int
    rates: Dict[Hashable, float]


def select_hypothesis(oracle: HelperDataOracle,
                      helpers: Dict[Hashable, object],
                      queries_per_hypothesis: int = 8,
                      op: Optional[OperatingPoint] = None,
                      early_stop: bool = True) -> SelectionOutcome:
    """Pick the hypothesis whose helper data fails least often.

    With *early_stop*, a hypothesis that records zero failures over its
    full budget short-circuits the scan — with well-chosen error
    injection only the correct hypothesis behaves that way, which is
    what keeps the ``2^u`` multi-bit variants affordable.
    """
    if not helpers:
        raise ValueError("need at least one hypothesis")
    start = oracle.queries
    batched = isinstance(oracle, BatchOracle)
    rates: Dict[Hashable, float] = {}
    best: Tuple[float, Hashable] = (math.inf, None)
    for label, helper in helpers.items():
        # Each hypothesis always consumes its full fixed budget, so a
        # batched oracle answers it in one vectorized block.
        if batched:
            outcomes = oracle.query_block(helper,
                                          queries_per_hypothesis, op)
            failures = int(np.count_nonzero(~outcomes))
        else:
            failures = sum(0 if oracle.query(helper, op) else 1
                           for _ in range(queries_per_hypothesis))
        rate = failures / queries_per_hypothesis
        rates[label] = rate
        if rate < best[0]:
            best = (rate, label)
        if early_stop and failures == 0:
            break
    return SelectionOutcome(best[1], oracle.queries - start, rates)


def repair_with_commitment(key: np.ndarray, commitment: bytes,
                           max_flips: int = 2) -> Optional[np.ndarray]:
    """Offline low-weight repair of a recovered key against the public
    key-check commitment.

    Marginal response bits (|Δf| comparable to the noise floor) are
    genuine coin flips at reconstruction time, so a statistical attack
    can land on the opposite side of the value frozen at enrollment.
    Because the commitment digest is itself *public helper data*, the
    attacker fixes such bits for free: enumerate all flip patterns up to
    weight *max_flips* and test digests offline — zero device queries.

    Returns the corrected key, the unmodified key when it already
    matches, or ``None`` if no candidate within the radius matches.
    """
    key = np.asarray(key, dtype=np.uint8)
    if key_check_digest(key) == commitment:
        return key.copy()
    positions = range(key.shape[0])
    for weight in range(1, max_flips + 1):
        for flips in combinations(positions, weight):
            candidate = key.copy()
            candidate[list(flips)] ^= 1
            if key_check_digest(candidate) == commitment:
                return candidate
    return None
