"""Full key recovery on the group-based RO PUF (paper §VI-C, Fig. 6a).

The attacker controls every helper component of Fig. 4 and uses that to
*reprogram* the device key:

1. **Polynomial injection** — a steep quadratic added to the stored
   distiller coefficients overshadows the random frequency variation
   everywhere except at one attacker-chosen target pair of oscillators,
   whose injected values cancel by symmetry (the triangle-marked
   extremum of Fig. 6a).
2. **Repartitioning** — the group helper data is rewritten into pairs
   whose injected discrepancies are enormous, so every response bit
   except the target's is attacker-determined.
3. **ECC/key-check reprogramming** — redundancy and commitment are
   recomputed for each hypothesis about the target bit, with extra
   reference-bit inversions as deterministic error injection.

One paired failure-rate comparison then reveals whether the target
oscillator's residual exceeds its partner's.  Driving a comparison sort
with this oracle recovers the full frequency order of every *original*
group — i.e. the complete device key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.framework import (
    FailureRateComparer,
    repair_with_commitment,
)
from repro.core.lockstep import AttackSteps, ComparisonRequest, drive
from repro.core.injection import (
    pair_cells_by_value,
    predicted_pair_bits,
    symmetric_quadratic,
)
from repro.core.oracle import HelperDataOracle
from repro.keygen.base import key_check_digest
from repro.keygen.group_based import GroupBasedKeyGen, GroupBasedKeyHelper
from repro.grouping.kendall import kendall_encode
from repro.grouping.packing import pack_key


@dataclass(frozen=True)
class GroupAttackResult:
    """Outcome of the §VI-C attack.

    ``orders[j]`` is the recovered descending-residual order of stored
    group ``j`` (as label positions into the stored member tuple);
    ``key`` is the reassembled packed key and ``confirmed`` records
    whether its digest matches the device's public commitment.
    """

    orders: Tuple[Tuple[int, ...], ...]
    key: np.ndarray
    confirmed: bool
    queries: int
    comparisons: int


class GroupBasedAttack:
    """Drives the §VI-C attack against an oracle-wrapped device."""

    def __init__(self, oracle: HelperDataOracle, keygen: GroupBasedKeyGen,
                 helper: GroupBasedKeyHelper, rows: int, cols: int,
                 comparer: Optional[FailureRateComparer] = None,
                 steepness: float = 1e12,
                 injected_errors: Optional[int] = None):
        self._oracle = oracle
        self._keygen = keygen
        self._helper = helper
        self._rows = int(rows)
        self._cols = int(cols)
        self._comparer = comparer or FailureRateComparer()
        self._steepness = float(steepness)
        self._injected = injected_errors
        self._comparisons = 0
        # Injected-value collisions are exact by construction; any two
        # distinct values differ by at least steepness / (rows + 1)^2.
        self._margin = steepness / (2.0 * (rows + 1) ** 2)

    # ------------------------------------------------------------------

    def _cell_xy(self, index: int) -> Tuple[float, float]:
        return float(index % self._cols), float(index // self._cols)

    def _attack_helpers(self, u: int, v: int
                        ) -> Tuple[GroupBasedKeyHelper,
                                   GroupBasedKeyHelper]:
        """Hypothesis helpers for "residual(u) > residual(v)" ∈ {0, 1}."""
        payload = symmetric_quadratic(self._cell_xy(u), self._cell_xy(v),
                                      self._rows, self._steepness)
        cells = self._rows * self._cols
        xs = np.arange(cells) % self._cols
        ys = np.arange(cells) // self._cols
        values = -payload(xs.astype(float), ys.astype(float))

        forced = pair_cells_by_value(values, exclude=(u, v),
                                     min_gap=self._margin)
        groups = [(u, v)] + forced
        grouping = self._helper.grouping.with_groups(groups)

        # Kendall bit of a stored 2-group (a, b) is 1 iff b's residual
        # exceeds a's, i.e. the inverse of the response-bit convention.
        responses = predicted_pair_bits(values, forced, self._margin)
        if any(bit < 0 for bit in responses):
            raise AssertionError("forced pair left undetermined")
        forced_bits = [1 - bit for bit in responses]

        sketch = self._keygen.sketch_for(len(groups))
        injected = (self._injected if self._injected is not None
                    else sketch.code.t)
        if injected > len(forced_bits):
            raise ValueError("not enough forced groups to carry the "
                             "error injection")
        seed = np.zeros(sketch.code.k, dtype=np.uint8)

        helpers = []
        for hypothesis in (0, 1):
            stream = np.array([hypothesis] + forced_bits, dtype=np.uint8)
            # Deterministic injection: invert reference bits of the
            # first `injected` forced groups ("we just compute the ECC
            # redundancy given some inverted bit values").
            stream[1:1 + injected] ^= 1
            key = pack_key(stream, [2] * len(groups))
            helpers.append(GroupBasedKeyHelper(
                distiller=self._helper.distiller.with_added(payload),
                grouping=grouping,
                sketch=sketch.helper_for_response(stream, seed),
                key_check=key_check_digest(key)))
        return helpers[0], helpers[1]

    def compare_ros(self, u: int, v: int) -> bool:
        """Oracle-driven comparison: is ``residual(u) > residual(v)``?

        The Kendall bit of the target group ``(u, v)`` is 0 when u's
        residual is larger; hypothesis helpers carry 0 and 1 and the one
        matching the device's secret fails less.
        """
        helper0, helper1 = self._attack_helpers(u, v)
        outcome = self._comparer.compare(self._oracle, helper0, helper1)
        self._comparisons += 1
        return outcome.decision != "b"  # hypothesis 0 won (or tie)

    # ------------------------------------------------------------------

    def _order_steps(self, members: Sequence[int]) -> AttackSteps:
        """Stepwise comparison-sort of one stored group's members.

        Binary-insertion sort: ``O(g log g)`` oracle comparisons per
        group instead of the naive ``g^2`` pairwise matrix.  Each
        comparison is yielded as a :class:`ComparisonRequest`; returns
        ``(order, queries)``.
        """
        members = [int(m) for m in members]
        queries = 0
        sorted_desc: List[int] = []
        for member in members:
            lo, hi = 0, len(sorted_desc)
            while lo < hi:
                mid = (lo + hi) // 2
                helper0, helper1 = self._attack_helpers(
                    sorted_desc[mid], member)
                outcome = yield ComparisonRequest(
                    helper0, helper1, self._comparer)
                self._comparisons += 1
                queries += outcome.queries
                if outcome.decision != "b":  # hypothesis 0 (or tie)
                    lo = mid + 1
                else:
                    hi = mid
            sorted_desc.insert(lo, member)
        label_of = {member: position
                    for position, member in enumerate(members)}
        return tuple(label_of[m] for m in sorted_desc), queries

    def recover_group_order(self, members: Sequence[int]
                            ) -> Tuple[int, ...]:
        """Comparison-sort one stored group's members by residual."""
        order, _ = drive(self._order_steps(members), self._oracle)
        return order

    def steps(self) -> AttackSteps:
        """Stepwise protocol of the full attack (lock-step entry).

        Yields one :class:`ComparisonRequest` at a time — the
        binary-insertion sort makes each comparison depend on the
        previous decision, so the per-device frontier is exactly one
        request — and returns the :class:`GroupAttackResult`.
        """
        self._comparisons = 0
        queries = 0
        orders = []
        for group in self._helper.grouping.groups:
            order, group_queries = yield from self._order_steps(group)
            orders.append(order)
            queries += group_queries
        orders = tuple(orders)
        stream = np.concatenate([kendall_encode(order)
                                 for order in orders]) \
            if orders else np.zeros(0, dtype=np.uint8)
        key = pack_key(stream, self._helper.grouping.sizes)
        # A wrong call on a marginal comparison perturbs a few packed
        # bits; the public commitment repairs those offline.
        repaired = repair_with_commitment(key, self._helper.key_check,
                                          max_flips=2)
        if repaired is not None:
            key = repaired
        confirmed = key_check_digest(key) == self._helper.key_check
        return GroupAttackResult(
            orders=orders, key=key, confirmed=confirmed,
            queries=queries, comparisons=self._comparisons)

    def run(self) -> GroupAttackResult:
        """Recover every original group's order and reassemble the key.

        Drives :meth:`steps` against the attack's own oracle — the
        scalar per-device reference the lock-step campaign engine is
        asserted bitwise-equal against.
        """
        return drive(self.steps(), self._oracle)
