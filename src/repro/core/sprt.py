"""Sequential probability ratio test (SPRT) distinguisher.

An efficiency extension over the Hoeffding-based
:class:`~repro.core.framework.FailureRateComparer`: when the attacker
can calibrate the two failure rates a hypothesis pair produces (which
the Fig. 5 engineering makes predictable — ``p_low`` just below the ECC
boundary, ``p_high`` just above), Wald's SPRT reaches a decision with
close to the information-theoretic minimum number of queries.

The test here distinguishes, for a *single* manipulated helper, between

* ``H_eq``  — the manipulation introduced no extra errors; failures
  occur with probability ``p_low``;
* ``H_neq`` — the manipulation introduced extra errors; failures occur
  with probability ``p_high``.

It therefore needs only *one* helper (no paired reference), halving the
per-decision query count in the near-deterministic regime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.batch_oracle import BatchOracle
from repro.core.oracle import HelperDataOracle
from repro.keygen.base import OperatingPoint


@dataclass(frozen=True)
class SPRTOutcome:
    """Decision of one sequential test.

    ``decision`` is ``"eq"``, ``"neq"`` or ``"undecided"`` (budget
    exhausted between the Wald boundaries — resolved by proximity).
    """

    decision: str
    queries: int
    failures: int
    log_likelihood_ratio: float


class SPRTDistinguisher:
    """Wald's SPRT over Bernoulli failure observations.

    Parameters
    ----------
    p_low, p_high:
        Calibrated failure probabilities under the equal / unequal
        hypotheses.  The attacker estimates them once per device from a
        handful of calibration queries (see :meth:`calibrate`).
    alpha, beta:
        Tolerated false-accept probabilities for ``H_neq`` and
        ``H_eq`` respectively.
    max_queries:
        Hard budget; on exhaustion the sign of the likelihood ratio
        decides.
    """

    def __init__(self, p_low: float, p_high: float,
                 alpha: float = 1e-3, beta: float = 1e-3,
                 max_queries: int = 200):
        if not 0.0 <= p_low < p_high <= 1.0:
            raise ValueError("need 0 <= p_low < p_high <= 1")
        if not (0.0 < alpha < 0.5 and 0.0 < beta < 0.5):
            raise ValueError("alpha and beta must be in (0, 0.5)")
        # Clamp away from {0, 1} so the log-likelihood stays finite.
        self._p_low = min(max(p_low, 1e-6), 1 - 1e-6)
        self._p_high = min(max(p_high, 1e-6), 1 - 1e-6)
        self._upper = math.log((1.0 - beta) / alpha)
        self._lower = math.log(beta / (1.0 - alpha))
        self._llr_fail = math.log(self._p_high / self._p_low)
        self._llr_success = math.log((1.0 - self._p_high)
                                     / (1.0 - self._p_low))
        self._max = int(max_queries)

    @property
    def p_low(self) -> float:
        """Hypothesised failure rate of the lower-rate model."""
        return self._p_low

    @property
    def p_high(self) -> float:
        """Hypothesised failure rate of the higher-rate model."""
        return self._p_high

    @property
    def boundaries(self) -> Tuple[float, float]:
        """Wald acceptance boundaries ``(lower, upper)`` on the LLR."""
        return self._lower, self._upper

    @property
    def llr_steps(self) -> Tuple[float, float]:
        """Per-observation LLR increments ``(success, failure)``."""
        return self._llr_success, self._llr_fail

    @property
    def max_queries(self) -> int:
        """Hard per-test query budget."""
        return self._max

    @classmethod
    def from_counts(cls, fails_eq: int, fails_neq: int, queries: int,
                    **kwargs) -> "SPRTDistinguisher":
        """Build from two calibration failure counts.

        The one place the Laplace-smoothed rate estimates and the
        separation guard live: :meth:`calibrate` and the stepwise
        attack calibration
        (``SequentialPairingAttack._sprt_relations_steps``) both feed
        their observed counts through here, so the two paths cannot
        drift apart.
        """
        p_low = (fails_eq + 1) / (queries + 2)
        p_high = (fails_neq + 1) / (queries + 2)
        if p_high <= p_low:
            raise ValueError(
                "calibration helpers are not separated; increase the "
                "injected error count")
        return cls(p_low, p_high, **kwargs)

    @classmethod
    def calibrate(cls, oracle: HelperDataOracle, helper_eq, helper_neq,
                  queries: int = 30,
                  op: Optional[OperatingPoint] = None,
                  **kwargs) -> "SPRTDistinguisher":
        """Estimate ``p_low`` / ``p_high`` from two reference helpers.

        *helper_eq* should carry the injected offset only;
        *helper_neq* the offset plus a known extra error (e.g. a known
        orientation flip).  A Laplace-smoothed estimate keeps the
        probabilities off the boundary.
        """
        if isinstance(oracle, BatchOracle):
            fails_eq = int(np.count_nonzero(
                ~oracle.query_block(helper_eq, queries, op)))
            fails_neq = int(np.count_nonzero(
                ~oracle.query_block(helper_neq, queries, op)))
        else:
            fails_eq = sum(0 if oracle.query(helper_eq, op) else 1
                           for _ in range(queries))
            fails_neq = sum(0 if oracle.query(helper_neq, op) else 1
                            for _ in range(queries))
        return cls.from_counts(fails_eq, fails_neq, queries, **kwargs)

    def test(self, oracle: HelperDataOracle, helper,
             op: Optional[OperatingPoint] = None) -> SPRTOutcome:
        """Run the sequential test against one manipulated helper.

        A :class:`~repro.core.batch_oracle.BatchOracle` is consumed in
        vectorized blocks with unused rows unwound, so outcome,
        query count and oracle state match the scalar walk bitwise.
        """
        if isinstance(oracle, BatchOracle):
            return self._test_blocked(oracle, helper, op)
        llr = 0.0
        failures = 0
        queries = 0
        for _ in range(self._max):
            queries += 1
            if oracle.query(helper, op):
                llr += self._llr_success
            else:
                failures += 1
                llr += self._llr_fail
            if llr >= self._upper:
                return SPRTOutcome("neq", queries, failures, llr)
            if llr <= self._lower:
                return SPRTOutcome("eq", queries, failures, llr)
        decision = "neq" if llr > 0 else "eq"
        return SPRTOutcome(decision, queries, failures, llr)

    def _test_blocked(self, oracle: BatchOracle, helper,
                      op: Optional[OperatingPoint]) -> SPRTOutcome:
        """Block-vectorized Wald walk.

        Delegates to the lock-step ``SPRTEngine`` with a single lane,
        so the vectorized walk (carry-seeded cumulative sum, first
        boundary crossing decides, tail rows unwound) exists exactly
        once for single tests and campaign batches alike.
        """
        # Imported here: lockstep depends on this module at import
        # time for the outcome/request vocabulary.
        from repro.core.lockstep import Lane, SPRTEngine, SPRTRequest

        lane = Lane(oracle, SPRTRequest(self, helper, op))
        engine = SPRTEngine()
        while not lane.finished:
            engine.step([lane])
        return lane.outcome

    def expected_queries(self, true_p: float) -> float:
        """Wald's approximation of E[queries] at failure rate *true_p*.

        Useful for planning: in the engineered near-deterministic regime
        this evaluates to a small single-digit number.
        """
        true_p = min(max(true_p, 1e-9), 1 - 1e-9)
        drift = (true_p * self._llr_fail
                 + (1 - true_p) * self._llr_success)
        if drift == 0.0:
            return float(self._max)
        target = self._upper if drift > 0 else self._lower
        return min(abs(target / drift), float(self._max))
