"""The attacker's view of a device: a helper-data failure oracle.

Paper §VI: the attacker can (a) read and write the public helper data
and (b) observe whether key reconstruction succeeded — *"an inability to
reconstruct the key should affect the observable behavior of any useful
application"*.  :class:`HelperDataOracle` packages exactly that
interface around a simulated device and counts every query, so attack
cost is always reported in observable-failure queries.
"""

from __future__ import annotations

from typing import Optional


from repro.keygen.base import (
    KeyGenerator,
    OperatingPoint,
    ReconstructionFailure,
)
from repro.puf.ro_array import ROArray


class HelperDataOracle:
    """Query interface: write helper data, observe success/failure.

    The oracle never exposes frequencies, response bits or keys — only
    the boolean outcome of a reconstruction attempt, which is the
    weakest observation model the paper's attacks need.
    """

    def __init__(self, array: ROArray, keygen: KeyGenerator,
                 op: OperatingPoint = OperatingPoint()):
        self._array = array
        self._keygen = keygen
        self._op = op
        self._queries = 0

    @property
    def queries(self) -> int:
        """Total reconstruction attempts observed so far."""
        return self._queries

    @property
    def default_op(self) -> OperatingPoint:
        """Operating point used when a query does not specify one."""
        return self._op

    def reset_query_count(self) -> None:
        """Zero the query counter."""
        self._queries = 0

    def query(self, helper, op: Optional[OperatingPoint] = None) -> bool:
        """One reconstruction attempt under the given helper data.

        Returns ``True`` on success.  The attacker may choose the
        environmental operating point (e.g. bake the device to a
        temperature inside a crossover interval, §VI-B).
        """
        self._queries += 1
        try:
            self._keygen.reconstruct(self._array, helper,
                                     op if op is not None else self._op)
        except ReconstructionFailure:
            return False
        return True

    def failure_rate(self, helper, queries: int,
                     op: Optional[OperatingPoint] = None) -> float:
        """Empirical failure probability over *queries* attempts."""
        if queries < 1:
            raise ValueError("need at least one query")
        failures = sum(0 if self.query(helper, op) else 1
                       for _ in range(queries))
        return failures / queries
