"""Attack on the temperature-aware cooperative RO PUF (paper §VI-B).

The attacker bakes the device to a temperature inside a target
cooperating pair's crossover interval, so that its key bit is
reconstructed through assistance, then rewrites the stored assistant
index to point at another cooperating pair ``c``: reconstruction is
unaffected iff ``r_c = r_assist`` and gains one bit error otherwise.
Deterministic error injection via interval rewrites
(:func:`repro.core.injection.break_inversions`) pushes the error count
to the ECC boundary so the two hypotheses separate.

Walking all targets merges the pairwise relations into connected
components (tracked with a parity union-find), recovering the response
bit of *every cooperating pair* up to one global unknown per component —
the partial key recovery the paper claims.  As a bonus, every
cooperation record publicly asserts ``r_c ⊕ r_good ⊕ r_assist = 0``, so
the masking good pairs' bits fall into the same components for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.batch_oracle import BatchOracle
from repro.core.framework import ComparisonOutcome, FailureRateComparer
from repro.core.injection import break_inversions
from repro.core.oracle import HelperDataOracle
from repro.keygen.base import OperatingPoint
from repro.keygen.temp_aware import TempAwareKeyGen, TempAwareKeyHelper


class ParityUnionFind:
    """Union-find over bit variables with XOR edge weights.

    ``relation(a, b)`` returns ``r_a XOR r_b`` when both variables are
    in the same component, else ``None``.
    """

    def __init__(self, size: int):
        self._parent = list(range(size))
        self._parity = [0] * size  # parity to parent

    def find(self, node: int) -> Tuple[int, int]:
        """Root of *node* and parity of ``r_node XOR r_root``."""
        if self._parent[node] == node:
            return node, 0
        root, parity = self.find(self._parent[node])
        self._parent[node] = root
        self._parity[node] ^= parity
        return root, self._parity[node]

    def union(self, a: int, b: int, parity: int) -> bool:
        """Assert ``r_a XOR r_b = parity``; returns False on conflict."""
        root_a, par_a = self.find(a)
        root_b, par_b = self.find(b)
        if root_a == root_b:
            return (par_a ^ par_b) == parity
        self._parent[root_a] = root_b
        self._parity[root_a] = par_a ^ par_b ^ parity
        return True

    def relation(self, a: int, b: int) -> Optional[int]:
        """``r_a XOR r_b`` when linked, else ``None``."""
        root_a, par_a = self.find(a)
        root_b, par_b = self.find(b)
        if root_a != root_b:
            return None
        return par_a ^ par_b

    def same_component(self, a: int, b: int) -> bool:
        """Whether *a* and *b* share a connected component."""
        return self.find(a)[0] == self.find(b)[0]


@dataclass(frozen=True)
class TempAwareAttackResult:
    """Outcome of the §VI-B attack.

    ``coop_relations[i]`` is the recovered ``r_i XOR r_0`` over the
    cooperating-pair reference bits (entry order), ``-1`` where the
    relation graph stayed disconnected.  ``good_bits`` maps a masking
    good pair's *pair index* to its recovered **absolute** bit value:
    the public constraint asserts ``r_good = r_coop XOR r_assist`` and
    the XOR of two same-component variables cancels the component's
    global unknown — so the good-pair bits fall out exactly, for free.
    """

    coop_relations: np.ndarray
    good_bits: Dict[int, int]
    queries: int
    comparisons: Tuple[ComparisonOutcome, ...]

    @property
    def resolved_fraction(self) -> float:
        """Fraction of cooperating pairs with a recovered relation."""
        total = self.coop_relations.shape[0]
        if total == 0:
            return 1.0
        return float(np.sum(self.coop_relations >= 0)) / total


class TempAwareAttack:
    """Drives the §VI-B attack against an oracle-wrapped device.

    The canonical oracle is a :class:`~repro.core.batch_oracle.
    BatchOracle`: every failure-rate comparison then evaluates its
    paired queries in vectorized blocks (with the temperature-aware
    batch evaluator doing sensor reads, interval interpretation and
    assistance in NumPy), while decisions and query counts stay
    bitwise-identical to scalar simulation.  A scalar
    :class:`~repro.core.oracle.HelperDataOracle` is still accepted and
    drives the same comparisons one query at a time.
    """

    def __init__(self, oracle: Union[BatchOracle, HelperDataOracle],
                 keygen: TempAwareKeyGen,
                 helper: TempAwareKeyHelper,
                 comparer: Optional[FailureRateComparer] = None,
                 injected_errors: Optional[int] = None,
                 stability_margin: float = 2.0):
        """
        Parameters
        ----------
        stability_margin:
            Minimum distance (°C) the attack temperature keeps from the
            interval boundaries of every pair whose stability the test
            relies on.  The device reads its temperature through a noisy
            sensor; an attack temperature within sensor noise of a
            candidate's boundary makes reconstruction flake *regardless*
            of the hypothesis, fabricating a spurious failure-rate gap.
        """
        self._oracle = oracle
        self._keygen = keygen
        self._helper = helper
        self._comparer = comparer or FailureRateComparer()
        self._margin = float(stability_margin)
        bits = helper.scheme.bits
        code_t = keygen.sketch_for(bits).code.t
        self._injected = (injected_errors if injected_errors is not None
                          else code_t)

    # ------------------------------------------------------------------

    def _stable_at(self, position: int, temperature: float) -> bool:
        entry = self._helper.scheme.cooperation[position]
        return (temperature < entry.t_low - self._margin
                or temperature > entry.t_high + self._margin)

    def _protected_pairs(self, target: int, candidate: int,
                         temperature: float) -> set:
        """Pair indices the injection must not touch at this temperature."""
        scheme = self._helper.scheme
        entry = scheme.cooperation[target]
        cand_entry = scheme.cooperation[candidate]
        protected = {entry.pair_index, cand_entry.pair_index,
                     entry.assist_index}
        for other in scheme.cooperation:
            if other.t_low <= temperature <= other.t_high:
                protected.add(other.pair_index)
                protected.add(other.assist_index)
        return protected

    def _injectable_count(self, temperature: float,
                          protected: set) -> int:
        """How many deterministic errors are available at *temperature*."""
        count = 0
        for entry in self._helper.scheme.cooperation:
            if entry.pair_index in protected:
                continue
            if entry.t_high < temperature or entry.t_low > temperature:
                count += 1
        return count

    def _attack_temperature(self, target: int,
                            candidate: int) -> Optional[float]:
        """A temperature inside the target's crossover interval at which
        the candidate and original assistant are stable with margin and
        enough injection capacity remains, or ``None``."""
        scheme = self._helper.scheme
        entry = scheme.cooperation[target]
        pair_to_position = {e.pair_index: i
                            for i, e in enumerate(scheme.cooperation)}
        assist_position = pair_to_position.get(entry.assist_index)
        span = entry.t_high - entry.t_low
        candidates_t = [entry.t_low + span * fraction
                        for fraction in (0.5, 0.25, 0.75, 0.1, 0.9)]
        for temperature in candidates_t:
            if not self._stable_at(candidate, temperature):
                continue
            if assist_position is not None and \
                    not self._stable_at(assist_position, temperature):
                continue
            protected = self._protected_pairs(target, candidate,
                                              temperature)
            if self._injectable_count(temperature,
                                      protected) < self._injected:
                continue
            return temperature
        return None

    def test_candidate(self, target: int, candidate: int,
                       temperature: Optional[float] = None
                       ) -> Tuple[int, ComparisonOutcome]:
        """Recover ``r_candidate XOR r_assist(target)``.

        Bakes the device into the target's crossover interval, rewrites
        the assistant index, and compares failure rates against the
        injection-only reference.
        """
        scheme = self._helper.scheme
        entry = scheme.cooperation[target]
        cand_entry = scheme.cooperation[candidate]
        if temperature is None:
            temperature = self._attack_temperature(target, candidate)
            if temperature is None:
                raise ValueError("no margin-safe attack temperature in "
                                 "the target's interval")
        if not self._stable_at(candidate, temperature):
            raise ValueError("candidate is unstable at the attack "
                             "temperature")
        op = OperatingPoint(temperature=temperature)

        # Pairs assisting any entry active at this temperature must not
        # carry injected errors, or the assisted bits break too.
        protected = self._protected_pairs(target, candidate, temperature)
        injected_scheme = break_inversions(scheme, temperature,
                                           self._injected,
                                           exclude=sorted(protected))
        reference = self._helper.with_scheme(injected_scheme)
        test = self._helper.with_scheme(injected_scheme.replace_entry(
            target, entry.with_assist(cand_entry.pair_index)))
        outcome = self._comparer.compare(self._oracle, reference, test,
                                         op)
        relation = 1 if outcome.decision == "a" else 0
        return relation, outcome

    # ------------------------------------------------------------------

    def run(self) -> TempAwareAttackResult:
        """Recover all cooperating-pair bit relations.

        Iterates over target entries, testing only candidates whose
        relation to the target's assistant is not already implied by the
        union-find — no redundant oracle queries.
        """
        scheme = self._helper.scheme
        entries = scheme.cooperation
        count = len(entries)
        start = self._oracle.queries
        outcomes: List[ComparisonOutcome] = []
        if count == 0:
            return TempAwareAttackResult(np.zeros(0, dtype=np.int8), {},
                                         0, ())

        pair_to_position = {e.pair_index: i
                            for i, e in enumerate(entries)}
        graph = ParityUnionFind(count)
        for target in range(count):
            assist_position = pair_to_position.get(
                entries[target].assist_index)
            if assist_position is None:
                continue
            for candidate in range(count):
                if candidate in (target, assist_position):
                    continue
                if graph.relation(candidate, assist_position) is not None:
                    continue
                temperature = self._attack_temperature(target, candidate)
                if temperature is None:
                    continue
                relation, outcome = self.test_candidate(
                    target, candidate, temperature)
                outcomes.append(outcome)
                graph.union(candidate, assist_position, relation)

        relations = np.full(count, -1, dtype=np.int8)
        relations[0] = 0
        for i in range(count):
            rel = graph.relation(i, 0)
            if rel is not None:
                relations[i] = rel

        # Free absolute bits from the public masking constraints:
        # r_good = r_coop ⊕ r_assist, and the XOR of two variables in
        # the same component cancels the global unknown.
        good_bits: Dict[int, int] = {}
        for position, entry in enumerate(entries):
            assist_position = pair_to_position.get(entry.assist_index)
            if assist_position is None:
                continue
            parity = graph.relation(position, assist_position)
            if parity is None:
                continue
            good_bits[entry.good_index] = parity

        return TempAwareAttackResult(
            coop_relations=relations,
            good_bits=good_bits,
            queries=self._oracle.queries - start,
            comparisons=tuple(outcomes))
