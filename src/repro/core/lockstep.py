"""Stepwise attack protocol and lock-step distinguisher rounds.

The adaptive §VI attacks are, at heart, state machines: build a pair
(or set) of hypothesis helpers, ask a distinguisher which one the
device likes best, branch on the answer, repeat.  This module makes
that structure explicit so one attack can be executed two ways:

* **Scalar drive** — :func:`drive` feeds one attack generator from one
  oracle, executing each yielded request through exactly the calls the
  pre-stepwise drivers made (``FailureRateComparer.compare``,
  :func:`~repro.core.framework.select_hypothesis`,
  ``SPRTDistinguisher.test``, single queries).  This is the executable
  equivalence reference.
* **Lock-step rounds** — the campaign scheduler
  (:class:`repro.fleet.campaign.LockstepCampaign`) gathers the pending
  request of every active device each round and advances them together
  through the :class:`LaneEngine` subclasses below: one noise block per
  device per round, with the Hoeffding/Wald/arg-min bookkeeping
  evaluated for the whole batch in a handful of NumPy passes
  (per-device accept/reject/continue masks, exactly like the per-row
  discrepancy masks of the batched Berlekamp–Massey decoder).

**Equivalence contract.**  Each device owns its oracle and noise
stream, and a lane only ever consumes rows from its own oracle in
request order, unwinding speculative tails; all stopping rules are
evaluated at every sample index with the same IEEE operation sequence
as the scalar walk.  Decisions, per-comparison query counts, recovered
keys and final stream positions are therefore **bitwise-identical** to
the scalar per-device loop for every batch composition — asserted in
``tests/fleet/test_campaign.py`` and in
``benchmarks/bench_attack_lockstep.py``.

An attack participates by exposing ``steps()``: a generator yielding
:class:`ComparisonRequest`, :class:`SelectionRequest`,
:class:`SPRTRequest` or :class:`QueryBlockRequest` objects, receiving
the matching outcome back at each ``yield``, and returning its result
object.  ``run()`` keeps working on any oracle via :func:`drive`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    Dict,
    Generator,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core.batch_oracle import BatchOracle
from repro.ecc.kernel import run_kernels
from repro.core.framework import (
    ComparisonOutcome,
    FailureRateComparer,
    SelectionOutcome,
    select_hypothesis,
)
from repro.core.oracle import HelperDataOracle
from repro.core.sprt import SPRTDistinguisher, SPRTOutcome
from repro.keygen.base import OperatingPoint

#: A stepwise attack: yields requests, receives outcomes, returns its
#: result object.
AttackSteps = Generator


# ----------------------------------------------------------------------
# request protocol


@dataclass(frozen=True)
class ComparisonRequest:
    """Ask which of two helpers fails less often (paired Hoeffding).

    Answered with a :class:`~repro.core.framework.ComparisonOutcome`.
    ``comparer`` carries the stopping-rule configuration; the scalar
    drive calls it directly, the lock-step engine reads its budgets and
    confidence and replays the same rules batch-wide.
    """

    helper_a: object
    helper_b: object
    comparer: FailureRateComparer = field(
        default_factory=FailureRateComparer)
    op: Optional[OperatingPoint] = None


@dataclass(frozen=True)
class SelectionRequest:
    """Ask which of many labelled helpers fails least (arg-min scan).

    Answered with a :class:`~repro.core.framework.SelectionOutcome`.
    Hypotheses are scanned in dict order with the fixed per-hypothesis
    budget; with *early_stop* a zero-failure hypothesis ends the scan.
    """

    helpers: Dict[Hashable, object]
    queries_per_hypothesis: int = 8
    op: Optional[OperatingPoint] = None
    early_stop: bool = True


@dataclass(frozen=True)
class SPRTRequest:
    """Ask for a Wald sequential test of one manipulated helper.

    Answered with a :class:`~repro.core.sprt.SPRTOutcome`.  The
    calibrated :class:`~repro.core.sprt.SPRTDistinguisher` travels with
    the request (calibration itself is two
    :class:`QueryBlockRequest`\\ s).
    """

    distinguisher: SPRTDistinguisher
    helper: object
    op: Optional[OperatingPoint] = None


@dataclass(frozen=True)
class QueryBlockRequest:
    """Ask for raw reconstruction outcomes under one helper.

    Answered with a boolean success vector.  With *stop_on_success*
    the walk ends at the first success (the §VI-A candidate-resolution
    probe), so the reply may be shorter than *count*; its length is the
    number of queries consumed either way.
    """

    helper: object
    count: int
    op: Optional[OperatingPoint] = None
    stop_on_success: bool = False


# ----------------------------------------------------------------------
# scalar reference executor


def execute_request(request, oracle) -> object:
    """Execute one protocol request against one oracle, scalar-style.

    Dispatches to exactly the calls the pre-stepwise attack drivers
    made, so a generator driven through this function reproduces the
    legacy behaviour query for query on both oracle types.
    """
    if isinstance(request, ComparisonRequest):
        return request.comparer.compare(oracle, request.helper_a,
                                        request.helper_b, request.op)
    if isinstance(request, SelectionRequest):
        return select_hypothesis(
            oracle, request.helpers,
            queries_per_hypothesis=request.queries_per_hypothesis,
            op=request.op, early_stop=request.early_stop)
    if isinstance(request, SPRTRequest):
        return request.distinguisher.test(oracle, request.helper,
                                          request.op)
    if isinstance(request, QueryBlockRequest):
        if request.stop_on_success:
            outcomes: List[bool] = []
            for _ in range(request.count):
                outcomes.append(bool(oracle.query(request.helper,
                                                  request.op)))
                if outcomes[-1]:
                    break
            return np.array(outcomes, dtype=bool)
        if isinstance(oracle, BatchOracle):
            return oracle.query_block(request.helper, request.count,
                                      request.op)
        return np.array([oracle.query(request.helper, request.op)
                         for _ in range(request.count)], dtype=bool)
    raise TypeError(f"not a lock-step protocol request: {request!r}")


def outcome_queries(reply) -> int:
    """Oracle queries consumed by one answered protocol request.

    Lets a stepwise attack account its query bill from the outcomes it
    receives instead of peeking at an oracle counter (which a lock-step
    campaign shares per device, not per attack phase).
    """
    if isinstance(reply, (ComparisonOutcome, SelectionOutcome,
                          SPRTOutcome)):
        return int(reply.queries)
    if isinstance(reply, np.ndarray):
        return int(reply.shape[0])
    raise TypeError(f"not a protocol outcome: {reply!r}")


def drive(steps: AttackSteps, oracle: HelperDataOracle) -> object:
    """Run a stepwise attack generator to completion on one oracle.

    The scalar reference executor: each yielded request is answered
    via :func:`execute_request` and the generator's return value is
    handed back.  Works with both the scalar
    :class:`~repro.core.oracle.HelperDataOracle` and the
    :class:`~repro.core.batch_oracle.BatchOracle`.
    """
    reply = None
    while True:
        try:
            request = steps.send(reply)
        except StopIteration as stop:
            return stop.value
        reply = execute_request(request, oracle)


# ----------------------------------------------------------------------
# lock-step lane engines


class Lane:
    """One device's seat in a lock-step round: oracle + pending work.

    ``state`` is engine-private decision state carried between rounds
    (cumulative failure counts, a running log-likelihood, a scan
    position); it lives on the lane so an abandoned campaign cannot
    leak stale state into a recycled object id.
    """

    def __init__(self, oracle: BatchOracle, request) -> None:
        self.oracle = oracle
        self.request = request
        self.outcome: Optional[object] = None
        self.state: Optional[object] = None

    @property
    def finished(self) -> bool:
        """Whether the pending request has produced its outcome."""
        return self.outcome is not None


class LaneEngine:
    """Advances a batch of same-type requests one block per round.

    Subclasses hold whatever per-lane decision state their
    distinguisher needs and must deliver, for every lane, an outcome
    bitwise-identical to :func:`execute_request` on the same oracle
    stream.

    With ``fused=True`` the engine evaluates its round through the
    two-phase protocol: one :meth:`~repro.core.batch_oracle.BatchOracle.
    plan_rows` per (lane, helper) in the legacy evaluation order, then
    **one fused kernel call per distinct kernel key across the whole
    frontier** (:func:`repro.ecc.kernel.run_kernels`), then per-plan
    finalize.  ``fused=False`` keeps the per-device
    ``evaluate_rows`` path.  Outcomes are bitwise-identical either
    way — fusion only regroups row-local kernel work.
    """

    #: request type handled by the engine
    request_type: type = object

    def __init__(self, fused: bool = False):
        self.fused = bool(fused)

    def evaluate_many(self, items: Sequence[Tuple[BatchOracle, object,
                                                  np.ndarray,
                                                  Optional[OperatingPoint]]]
                      ) -> List[np.ndarray]:
        """Evaluate ``(oracle, helper, rows, op)`` items, fused or not.

        Plans are created in item order (matching the per-device
        evaluation order, so transient streams like the temp-aware
        sensor are consumed identically), the kernel phase is fused
        across all items sharing a kernel key, and each item's
        outcomes come back in order.
        """
        if not self.fused:
            return [oracle.evaluate_rows(helper, rows, op)
                    for oracle, helper, rows, op in items]
        plans = [oracle.plan_rows(helper, rows, op)
                 for oracle, helper, rows, op in items]
        outputs = run_kernels([plan.workload for plan in plans])
        return [plan.finalize(out)
                for plan, out in zip(plans, outputs)]

    def step(self, lanes: Sequence[Lane]) -> None:
        """Advance every lane by one round; set ``lane.outcome`` when
        a lane's request completes."""
        raise NotImplementedError


class ComparisonEngine(LaneEngine):
    """Lock-step paired Hoeffding comparisons across devices.

    Per round each active lane contributes one block of paired samples
    (even noise rows feed helper *a*, odd rows *b* — the sequential
    interleave); the three stopping rules are then evaluated for the
    whole batch on cumulative-count matrices, and lanes that triggered
    unwind their unused rows and deliver their outcome.  The bound is
    computed with the same IEEE operation sequence as
    ``FailureRateComparer._bound``, so decisions round identically.
    """

    request_type = ComparisonRequest

    #: paired samples granted to every lane per round
    block = 8

    def step(self, lanes: Sequence[Lane]) -> None:
        """Advance each pending comparison by one paired-sample block."""
        count = len(lanes)
        if not count:
            return
        prior_a = np.zeros(count, dtype=np.int64)
        prior_b = np.zeros(count, dtype=np.int64)
        prior_n = np.zeros(count, dtype=np.int64)
        for i, lane in enumerate(lanes):
            prior_a[i], prior_b[i], prior_n[i] = (lane.state
                                                 or (0, 0, 0))
        maxima = np.array([lane.request.comparer.max_queries_per_side
                           for lane in lanes], dtype=np.int64)
        minima = np.array([lane.request.comparer.min_queries_per_side
                           for lane in lanes], dtype=np.int64)
        ident = np.array([-1 if lane.request.comparer.identical_stop
                          is None else lane.request.comparer.
                          identical_stop for lane in lanes],
                         dtype=np.int64)
        # math.log, not np.log: the scalar walk derives its Hoeffding
        # bound from math.log and the two need not round identically.
        delta_log = np.array(
            [math.log(2.0 / (1.0 - lane.request.comparer.confidence))
             for lane in lanes])
        sizes = np.minimum(self.block, maxima - prior_n)
        width = int(sizes.max())

        out_a = np.ones((count, width), dtype=bool)
        out_b = np.ones((count, width), dtype=bool)
        taken: List[np.ndarray] = []
        items = []
        for i, lane in enumerate(lanes):
            size = int(sizes[i])
            rows = lane.oracle.take_rows(2 * size)
            taken.append(rows)
            items.append((lane.oracle, lane.request.helper_a,
                          rows[0::2], lane.request.op))
            items.append((lane.oracle, lane.request.helper_b,
                          rows[1::2], lane.request.op))
        results = self.evaluate_many(items)
        for i in range(count):
            size = int(sizes[i])
            out_a[i, :size] = results[2 * i]
            out_b[i, :size] = results[2 * i + 1]

        cum_a = prior_a[:, None] + np.cumsum(~out_a, axis=1)
        cum_b = prior_b[:, None] + np.cumsum(~out_b, axis=1)
        counts = prior_n[:, None] + np.arange(1, width + 1)
        low = np.minimum(cum_a, cum_b)
        high = np.maximum(cum_a, cum_b)
        stop_separated = ((low == 0) & (high == counts)
                          & (cum_a != cum_b))
        # Same IEEE operation sequence as FailureRateComparer._bound so
        # lock-step and scalar comparisons round identically.
        bounds = 2.0 * np.sqrt(delta_log[:, None] / (2.0 * counts))
        stop_gap = np.abs(cum_a - cum_b) / counts > bounds
        stop_identical = ((ident[:, None] >= 0)
                          & (counts >= ident[:, None])
                          & (cum_a == cum_b)
                          & ((cum_a == 0) | (cum_a == counts)))
        valid = np.arange(width)[None, :] < sizes[:, None]
        trigger = (valid & (counts >= minima[:, None])
                   & (stop_separated | stop_identical | stop_gap))
        fired = trigger.any(axis=1)
        first = np.argmax(trigger, axis=1)

        for i, lane in enumerate(lanes):
            size = int(sizes[i])
            if fired[i]:
                idx = int(first[i])
                lane.oracle.untake_rows(taken[i][2 * (idx + 1):])
                failures_a = int(cum_a[i, idx])
                failures_b = int(cum_b[i, idx])
                samples = int(counts[i, idx])
                separated = bool(stop_separated[i, idx]
                                 or stop_gap[i, idx])
            else:
                failures_a = int(cum_a[i, size - 1])
                failures_b = int(cum_b[i, size - 1])
                samples = int(counts[i, size - 1])
                if samples < int(maxima[i]):
                    lane.state = (failures_a, failures_b, samples)
                    continue
                separated = False
            lane.state = None
            if not separated:
                separated = FailureRateComparer._significant(
                    failures_a, failures_b, samples)
            if not separated or failures_a == failures_b:
                decision = "tie"
            elif failures_a < failures_b:
                decision = "a"
            else:
                decision = "b"
            lane.outcome = ComparisonOutcome(
                decision, 2 * samples, failures_a, failures_b, samples)


class SPRTEngine(LaneEngine):
    """Lock-step Wald walks across devices.

    Each lane's running log-likelihood is extended by one outcome block
    per round; carries are prepended before the cumulative sum so the
    floating-point accumulation order matches the scalar walk, and the
    first boundary crossing decides with the tail rows unwound.
    """

    request_type = SPRTRequest

    #: observations granted to every lane per round
    block = 16

    def step(self, lanes: Sequence[Lane]) -> None:
        """Advance each pending Wald walk by one observation block."""
        count = len(lanes)
        if not count:
            return
        prior_llr = np.zeros(count)
        prior_fail = np.zeros(count, dtype=np.int64)
        prior_q = np.zeros(count, dtype=np.int64)
        for i, lane in enumerate(lanes):
            prior_llr[i], prior_fail[i], prior_q[i] = (lane.state
                                                       or (0.0, 0, 0))
        maxima = np.array(
            [lane.request.distinguisher.max_queries for lane in lanes],
            dtype=np.int64)
        bounds = np.array([lane.request.distinguisher.boundaries
                           for lane in lanes])
        steps_sf = np.array([lane.request.distinguisher.llr_steps
                             for lane in lanes])
        sizes = np.minimum(self.block, maxima - prior_q)
        width = int(sizes.max())

        outcomes = np.ones((count, width), dtype=bool)
        taken: List[np.ndarray] = []
        items = []
        for i, lane in enumerate(lanes):
            size = int(sizes[i])
            rows = lane.oracle.take_rows(size)
            taken.append(rows)
            items.append((lane.oracle, lane.request.helper, rows,
                          lane.request.op))
        results = self.evaluate_many(items)
        for i in range(count):
            outcomes[i, :int(sizes[i])] = results[i]

        increments = np.where(outcomes, steps_sf[:, 0:1],
                              steps_sf[:, 1:2])
        # Prepending the carry keeps each row's additions in scalar
        # order: ((llr + s1) + s2) + ..., not llr + (s1 + s2 + ...).
        walk = np.cumsum(
            np.concatenate([prior_llr[:, None], increments], axis=1),
            axis=1)[:, 1:]
        valid = np.arange(width)[None, :] < sizes[:, None]
        crossed = valid & ((walk >= bounds[:, 1:2])
                           | (walk <= bounds[:, 0:1]))
        fired = crossed.any(axis=1)
        first = np.argmax(crossed, axis=1)

        for i, lane in enumerate(lanes):
            size = int(sizes[i])
            if fired[i]:
                idx = int(first[i])
                lane.oracle.untake_rows(taken[i][idx + 1:])
                queries = int(prior_q[i]) + idx + 1
                failures = int(prior_fail[i]) + int(
                    np.count_nonzero(~outcomes[i, :idx + 1]))
                llr = float(walk[i, idx])
                decision = "neq" if llr >= bounds[i, 1] else "eq"
            else:
                queries = int(prior_q[i]) + size
                failures = int(prior_fail[i]) + int(
                    np.count_nonzero(~outcomes[i, :size]))
                llr = float(walk[i, size - 1])
                if queries < int(maxima[i]):
                    lane.state = (llr, failures, queries)
                    continue
                decision = "neq" if llr > 0 else "eq"
            lane.state = None
            lane.outcome = SPRTOutcome(decision, queries, failures,
                                       llr)


class SelectionEngine(LaneEngine):
    """Lock-step arg-min hypothesis scans across devices.

    Every lane evaluates its *current* hypothesis's full fixed budget
    in one vectorized block per round, then either stops (zero
    failures with early stopping, or scan exhausted) or moves to the
    next hypothesis — so a batch of ``2^u``-hypothesis scans advances
    together without any lane waiting for the slowest scan.
    """

    request_type = SelectionRequest

    def step(self, lanes: Sequence[Lane]) -> None:
        """Advance each pending scan by one full-budget hypothesis."""
        items = []
        labels_per_lane: List[List[Hashable]] = []
        for lane in lanes:
            request = lane.request
            if not request.helpers:
                raise ValueError("need at least one hypothesis")
            # lane state: [hypothesis index, queries, rates, best]
            if lane.state is None:
                lane.state = [0, 0, {}, (math.inf, None)]
            labels = list(request.helpers)
            labels_per_lane.append(labels)
            label = labels[lane.state[0]]
            rows = lane.oracle.take_rows(
                request.queries_per_hypothesis)
            items.append((lane.oracle, request.helpers[label], rows,
                          request.op))
        results = self.evaluate_many(items)
        for lane, labels, outcomes in zip(lanes, labels_per_lane,
                                          results):
            request = lane.request
            index, queries, rates, best = lane.state
            label = labels[index]
            budget = request.queries_per_hypothesis
            failures = int(np.count_nonzero(~outcomes))
            queries += budget
            rate = failures / budget
            rates[label] = rate
            if rate < best[0]:
                best = (rate, label)
            if ((request.early_stop and failures == 0)
                    or index + 1 >= len(labels)):
                lane.state = None
                lane.outcome = SelectionOutcome(best[1], queries,
                                                rates)
            else:
                lane.state = [index + 1, queries, rates, best]


class QueryBlockEngine(LaneEngine):
    """Lock-step raw query blocks (always complete in one round).

    Plain blocks evaluate in a single vectorized pass.  A
    *stop_on_success* probe speculatively evaluates the full block,
    truncates at the first success and unwinds the tail — landing the
    stream and counter exactly where the scalar single-query walk
    stops.
    """

    request_type = QueryBlockRequest

    def step(self, lanes: Sequence[Lane]) -> None:
        """Answer every pending block request in this round."""
        taken: List[np.ndarray] = []
        items = []
        for lane in lanes:
            rows = lane.oracle.take_rows(lane.request.count)
            taken.append(rows)
            items.append((lane.oracle, lane.request.helper, rows,
                          lane.request.op))
        results = self.evaluate_many(items)
        for lane, rows, outcomes in zip(lanes, taken, results):
            if lane.request.stop_on_success and outcomes.any():
                idx = int(np.argmax(outcomes))
                lane.oracle.untake_rows(rows[idx + 1:])
                outcomes = outcomes[:idx + 1]
            lane.outcome = outcomes


def lane_engines(fused: bool = False) -> Tuple[LaneEngine, ...]:
    """Fresh engine set covering every protocol request type.

    *fused* turns on cross-device kernel fusion inside every engine's
    evaluation step (see :class:`LaneEngine`); per-device outcomes are
    bitwise-identical either way.
    """
    return (ComparisonEngine(fused), SPRTEngine(fused),
            SelectionEngine(fused), QueryBlockEngine(fused))
