"""Vectorized drop-in replacement for the scalar failure oracle.

:class:`BatchOracle` answers the same question as
:class:`~repro.core.oracle.HelperDataOracle` — did a reconstruction
attempt under given helper data succeed? — but evaluates whole blocks
of attempts in one NumPy pass.  Three properties make it a faithful
stand-in for the sequential simulation, not merely a statistical one:

* **Stream-exact noise.**  Measurement noise is drawn from the
  device's own noise stream in exactly the amounts consumed; because
  NumPy fills any output shape element-by-element, row ``i`` of a
  block draw carries exactly the values the ``i``-th sequential
  ``measure_frequencies`` call would have drawn.  Noise is additive
  and operating-point independent, so rows serve any helper and any
  operating point.
* **Unwind.**  Early-stopping consumers (Hoeffding comparison, SPRT)
  evaluate a speculative block and then return the unused tail rows
  to a buffer that later takes consume first; the query counter and
  all downstream decisions stay bitwise identical to a sequential
  run.  (The device stream itself advances by the speculated rows —
  the one observable difference, and only to *other* consumers of
  the same device object.)
* **Deterministic completion.**  The per-row success boolean is a
  function of the row's (discrete) response bits, evaluated through the
  scheme's :meth:`~repro.keygen.base.KeyGenerator.batch_evaluator`
  with one ECC decode per distinct bit pattern.

The scalar :meth:`query` interface is preserved, so attack drivers run
unchanged — handing them a :class:`BatchOracle` silently upgrades every
distinguisher to the block path.

The bitwise guarantee covers every scheme whose reconstruction takes
one measurement per query (all standard constructions; for temp-aware
the per-query sensor reads are stream-exact too, so twin runs sharing
a ``sensor_seed`` match bitwise).  The hardened group-based
model draws a *separate* validation readout on the scalar path and is
only statistically equivalent here — see
:class:`repro.keygen.validation.HardenedGroupBasedKeyGen`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro._rng import RNGLike, ensure_rng
from repro.keygen.base import (
    KeyGenerator,
    OperatingPoint,
    ReconstructionFailure,
)
from repro.keygen.batch import BatchEvaluator, EvalPlan
from repro.puf.ro_array import ROArray


class BatchOracle:
    """Block-evaluating helper-data failure oracle.

    Parameters
    ----------
    array, keygen, op:
        As for :class:`~repro.core.oracle.HelperDataOracle`.
    rng:
        Noise source override; defaults to the device's internal noise
        stream (matching scalar queries on the same device object).
    trajectory:
        Optional built
        :class:`~repro.scenario.trajectory.EnvironmentTrajectory`.
        When set, queries issued *without* an explicit operating
        point are measured at the ambient the trajectory resolves
        for their absolute query index; queries with an explicit
        ``op`` model an attacker-controlled chamber and override the
        ambient — but the trajectory's lifecycle state (aging drift)
        still applies, since the device has aged regardless of who
        sets the chamber temperature.  Rows are tagged with their
        draw index internally, so speculation, slicing and unwinding
        by the lock-step engines leave trajectory resolution
        bitwise-deterministic.

    Noise rows are drawn exactly on demand — one vectorized draw per
    block request — so there is no lookahead knob: how callers block
    their queries affects neither outcomes nor the device's stream
    position.
    """

    def __init__(self, array: ROArray, keygen: KeyGenerator,
                 op: OperatingPoint = OperatingPoint(),
                 rng: RNGLike = None, trajectory=None):
        self._array = array
        self._keygen = keygen
        self._op = op
        self._rng = None if rng is None else ensure_rng(rng)
        self._queries = 0
        self._trajectory = trajectory
        # With a trajectory, each noise row carries one extra tag
        # column: the absolute index of its draw, which survives any
        # slicing/unwinding a consumer performs.
        width = array.n + (1 if trajectory is not None else 0)
        self._buffer = np.empty((0, width))
        self._cursor = 0
        # Noise-free frequency vector per operating point.
        self._base: Dict[Tuple[Optional[float], Optional[float]],
                         np.ndarray] = {}
        # Evaluator per live helper object (bounded, keyed by id with a
        # strong reference so ids cannot be recycled underneath us).
        self._evaluators: Dict[
            int, Tuple[object, OperatingPoint, BatchEvaluator]] = {}
        self._evaluator_cap = 16

    # ------------------------------------------------------------------
    # scalar-oracle interface

    @property
    def queries(self) -> int:
        """Total reconstruction attempts observed so far."""
        return self._queries

    @property
    def default_op(self) -> OperatingPoint:
        """Operating point used when a query does not specify one."""
        return self._op

    @property
    def array(self) -> ROArray:
        """The simulated device whose noise stream feeds the oracle."""
        return self._array

    @property
    def keygen(self) -> KeyGenerator:
        """The device model evaluating reconstruction attempts."""
        return self._keygen

    @property
    def trajectory(self):
        """The oracle's environment trajectory, if any."""
        return self._trajectory

    def reset_query_count(self) -> None:
        """Zero the query counter; buffered noise rows are kept."""
        self._queries = 0

    def query(self, helper, op: Optional[OperatingPoint] = None) -> bool:
        """One reconstruction attempt (consumes one buffered row)."""
        return bool(self.query_block(helper, 1, op)[0])

    def failure_rate(self, helper, queries: int,
                     op: Optional[OperatingPoint] = None) -> float:
        """Empirical failure probability over *queries* attempts."""
        if queries < 1:
            raise ValueError("need at least one query")
        outcomes = self.query_block(helper, queries, op)
        return float(np.count_nonzero(~outcomes)) / queries

    # ------------------------------------------------------------------
    # block interface

    def query_block(self, helper, count: int,
                    op: Optional[OperatingPoint] = None) -> np.ndarray:
        """*count* reconstruction attempts; boolean success vector.

        Outcome ``i`` equals what the ``(queries + 1 + i)``-th
        sequential scalar query on an identically-seeded device would
        have returned.
        """
        rows = self.take_rows(count)
        return self.evaluate_rows(helper, rows, op)

    def take_rows(self, count: int) -> np.ndarray:
        """Consume *count* noise rows (unwound rows first, then fresh).

        Fresh rows are drawn in exactly the amount needed, so as long
        as no rows sit unwound, the device's stream position equals
        the query count — independent of how queries were blocked.
        """
        if count < 1:
            raise ValueError("need at least one query")
        buffered = self._buffer.shape[0]
        if buffered < count:
            fresh = count - buffered
            drawn = self._array.measurement_noise(fresh,
                                                  rng=self._rng)
            if self._trajectory is not None:
                tags = np.arange(self._cursor, self._cursor + fresh,
                                 dtype=float)
                drawn = np.concatenate([drawn, tags[:, None]],
                                       axis=1)
            self._cursor += fresh
            self._buffer = (drawn if buffered == 0
                            else np.concatenate([self._buffer, drawn]))
        rows, self._buffer = (self._buffer[:count],
                              self._buffer[count:])
        self._queries += count
        return rows

    def untake_rows(self, rows: np.ndarray) -> None:
        """Return the *unconsumed tail* of the last take to the buffer.

        Restores both the noise stream position and the query counter,
        so an early-stopped block leaves the oracle in exactly the
        state a sequential run would have reached.  Only valid for the
        most recently taken rows, in order.
        """
        if rows.shape[0] == 0:
            return
        self._buffer = np.concatenate([rows, self._buffer])
        self._queries -= rows.shape[0]

    def evaluate_rows(self, helper, rows: np.ndarray,
                      op: Optional[OperatingPoint] = None) -> np.ndarray:
        """Success booleans of already-taken noise rows under *helper*.

        A thin driver over the two-phase evaluator protocol:
        :meth:`plan_rows`, this plan's own kernel, finalize.  The
        lock-step campaign bypasses this method to fuse the kernel
        step across devices (:mod:`repro.fleet.campaign`); results are
        bitwise-identical either way, and identical to the one-shot
        :meth:`evaluate_rows_oneshot` reference.
        """
        return self.plan_rows(helper, rows, op).execute()

    def evaluate_rows_oneshot(self, helper, rows: np.ndarray,
                              op: Optional[OperatingPoint] = None
                              ) -> np.ndarray:
        """Legacy one-shot evaluation (executable equivalence reference).

        Runs the evaluator's monolithic ``outcomes`` path — extraction,
        dedup and completion in one call, no plan/kernel split.  Kept
        executable so tests and benches can pin the two-phase driver
        against it.
        """
        resolved = op if op is not None else self._op
        if self._trajectory is not None:
            freqs, env = self._trajectory_frequencies(rows, op)
            evaluator = self._evaluator_for(helper, resolved)
            if evaluator is not None:
                return evaluator.outcomes_env(freqs, env)
            return self._reconstruct_rows_env(helper, freqs, env,
                                              resolved)
        freqs = self._base_frequencies(resolved)[None, :] + rows
        evaluator = self._evaluator_for(helper, resolved)
        if evaluator is not None:
            return evaluator.outcomes(freqs)
        return self._reconstruct_rows(helper, freqs, resolved)

    def plan_rows(self, helper, rows: np.ndarray,
                  op: Optional[OperatingPoint] = None) -> EvalPlan:
        """Phase 1: extraction + dedup for already-taken noise rows.

        Returns the helper evaluator's :class:`EvalPlan`, declaring
        this block's kernel workload (keyed by the shared code/sketch)
        for the caller to run — alone or fused with other devices' —
        before :meth:`EvalPlan.finalize`.  Schemes without a
        vectorized evaluator resolve eagerly through the row-wise
        reconstruction fallback and return an already-final plan.
        """
        resolved = op if op is not None else self._op
        if self._trajectory is not None:
            freqs, env = self._trajectory_frequencies(rows, op)
            evaluator = self._evaluator_for(helper, resolved)
            if evaluator is not None:
                return evaluator.plan_env(freqs, env)
            return EvalPlan.resolved(self._reconstruct_rows_env(
                helper, freqs, env, resolved))
        freqs = self._base_frequencies(resolved)[None, :] + rows
        evaluator = self._evaluator_for(helper, resolved)
        if evaluator is not None:
            return evaluator.plan(freqs)
        return EvalPlan.resolved(
            self._reconstruct_rows(helper, freqs, resolved))

    def _reconstruct_rows(self, helper, freqs: np.ndarray,
                          op: OperatingPoint) -> np.ndarray:
        """Row-wise reconstruction fallback (no vectorized evaluator)."""
        outcomes = np.empty(freqs.shape[0], dtype=bool)
        for i in range(freqs.shape[0]):
            try:
                self._keygen.reconstruct_from_frequencies(
                    self._array, freqs[i], helper, op)
            except ReconstructionFailure:
                outcomes[i] = False
            else:
                outcomes[i] = True
        return outcomes

    def _reconstruct_rows_env(self, helper, freqs: np.ndarray, env,
                              op: OperatingPoint) -> np.ndarray:
        """Row-wise fallback with per-row ambient operating points."""
        if env is None:
            return self._reconstruct_rows(helper, freqs, op)
        outcomes = np.empty(freqs.shape[0], dtype=bool)
        for i in range(freqs.shape[0]):
            row_op = OperatingPoint(float(env.temperatures[i]),
                                    float(env.voltages[i]))
            try:
                self._keygen.reconstruct_from_frequencies(
                    self._array, freqs[i], helper, row_op)
            except ReconstructionFailure:
                outcomes[i] = False
            else:
                outcomes[i] = True
        return outcomes

    # ------------------------------------------------------------------
    # internals

    def _trajectory_frequencies(self, rows: np.ndarray,
                                op: Optional[OperatingPoint]):
        """``(freqs, env)`` for tagged rows under the trajectory.

        An explicit *op* (attacker chamber) overrides the ambient —
        ``env`` comes back ``None`` and the scalar base-frequency
        path is used — but the aged per-oscillator offsets apply in
        both cases: aging is device state, not ambient state.
        """
        noise = rows[:, :-1]
        indices = rows[:, -1].astype(np.int64)
        if op is not None:
            base = self._base_frequencies(op)[None, :]
            env = None
        else:
            env = self._trajectory.sample(indices)
            base = self._array.true_frequencies_batch(
                env.temperatures, env.voltages)
        shift = self._trajectory.oscillator_shift(self._array.n)
        if shift is not None:
            base = base + shift[None, :]
        return base + noise, env

    def _base_frequencies(self, op: OperatingPoint) -> np.ndarray:
        key = (op.temperature, op.voltage)
        base = self._base.get(key)
        if base is None:
            base = self._array.true_frequencies(op.temperature,
                                                op.voltage)
            self._base[key] = base
        return base

    def _evaluator_for(self, helper, op: OperatingPoint
                       ) -> Optional[BatchEvaluator]:
        key = id(helper)
        hit = self._evaluators.get(key)
        if hit is not None and hit[0] is helper and hit[1] == op:
            return hit[2]
        evaluator = self._keygen.batch_evaluator(self._array, helper,
                                                 op)
        if evaluator is not None:
            if len(self._evaluators) >= self._evaluator_cap:
                # Evict the oldest entry only: clearing everything
                # would drop the completion memos of helpers still in
                # use mid-comparison.
                self._evaluators.pop(next(iter(self._evaluators)))
            self._evaluators[key] = (helper, op, evaluator)
        return evaluator
