"""repro — Key-recovery attacks on RO PUF constructions via helper data
manipulation.

A from-scratch reproduction of Delvaux & Verbauwhede, DATE 2014.  The
package layers as the paper does:

* :mod:`repro.puf` — ring-oscillator array simulator (frequencies,
  variation, noise, measurement);
* :mod:`repro.ecc` / :mod:`repro.fuzzy` — error correction, secure
  sketches and the fuzzy-extractor reference solution;
* :mod:`repro.pairing` / :mod:`repro.grouping` /
  :mod:`repro.distiller` — the attacked helper-data constructions;
* :mod:`repro.keygen` — end-to-end enroll/reconstruct device models;
* :mod:`repro.core` — the paper's contribution: failure-rate hypothesis
  testing and the four helper-data manipulation attacks;
* :mod:`repro.analysis` — entropy/reliability accounting.

Quick start::

    from repro.puf import ROArray, ROArrayParams
    from repro.keygen import SequentialPairingKeyGen
    from repro.core import HelperDataOracle, SequentialPairingAttack

    array = ROArray(ROArrayParams(rows=8, cols=16), rng=1)
    keygen = SequentialPairingKeyGen(threshold=300e3)
    helper, key = keygen.enroll(array, rng=2)

    oracle = HelperDataOracle(array, keygen)
    result = SequentialPairingAttack(oracle, keygen, helper).run()
    assert (result.key == key).all()
"""

from repro import analysis, core, distiller, ecc, fleet, fuzzy, \
    grouping, keygen, pairing, puf
from repro._rng import ensure_rng, spawn

__version__ = "1.1.0"

__all__ = [
    "analysis",
    "core",
    "distiller",
    "ecc",
    "fleet",
    "fuzzy",
    "grouping",
    "keygen",
    "pairing",
    "puf",
    "ensure_rng",
    "spawn",
    "__version__",
]
