"""Common interface for the block codes used as PUF reliability layers.

Paper §VI treats the ECC abstractly: a block code correcting ``t`` errors
per block, with the no-ECC case as the degenerate ``t = 0``.  Every code
in this package implements :class:`BlockCode`; key generators and attacks
only ever see this interface, so any code can back any construction.
"""

from __future__ import annotations

import abc
from typing import Tuple

import numpy as np

from repro._dedup import iter_unique_rows


class DecodingFailure(Exception):
    """Raised when a received word lies beyond the code's correction radius.

    A decoding failure during key reconstruction is exactly the externally
    observable event the paper's attacks measure (Fig. 5): the device
    cannot regenerate its key and the application misbehaves.
    """


def as_bits(bits: np.ndarray, length: int = None) -> np.ndarray:
    """Validate and normalise a 0/1 vector to ``uint8``."""
    arr = np.asarray(bits)
    if arr.ndim != 1:
        raise ValueError("bit vectors must be one-dimensional")
    if not np.all((arr == 0) | (arr == 1)):
        raise ValueError("bit vectors must contain only 0 and 1")
    if length is not None and arr.shape[0] != length:
        raise ValueError(f"expected {length} bits, got {arr.shape[0]}")
    return arr.astype(np.uint8)


def as_bit_matrix(bits: np.ndarray, length: int) -> np.ndarray:
    """Validate and normalise a ``(B, length)`` bit matrix to ``uint8``.

    The batch-shape counterpart of :func:`as_bits`, shared by every
    ``decode_batch`` / ``recover_batch`` entry point.  Only the shape is
    checked — batch producers are internal NumPy pipelines already
    emitting 0/1 matrices, so the per-element value scan that guards
    the scalar public API is skipped on the hot path.
    """
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.ndim != 2 or arr.shape[1] != length:
        raise ValueError(f"batch shape must be (B, {length})")
    return arr


class BlockCode(abc.ABC):
    """An ``[n, k]`` binary block code correcting ``t`` errors."""

    @property
    @abc.abstractmethod
    def n(self) -> int:
        """Codeword length in bits."""

    @property
    @abc.abstractmethod
    def k(self) -> int:
        """Message length in bits."""

    @property
    @abc.abstractmethod
    def t(self) -> int:
        """Guaranteed number of correctable errors per block."""

    @abc.abstractmethod
    def encode(self, message: np.ndarray) -> np.ndarray:
        """Encode a ``k``-bit message into an ``n``-bit codeword."""

    @abc.abstractmethod
    def decode(self, received: np.ndarray) -> np.ndarray:
        """Correct a received ``n``-bit word to the nearest codeword.

        Raises
        ------
        DecodingFailure
            If more than ``t`` errors are detected (or correction is
            otherwise impossible).
        """

    @abc.abstractmethod
    def extract(self, codeword: np.ndarray) -> np.ndarray:
        """Recover the ``k``-bit message from a (corrected) codeword."""

    def decode_batch(self, received: np.ndarray
                     ) -> Tuple[np.ndarray, np.ndarray]:
        """Decode a ``(B, n)`` batch of received words.

        Returns ``(codewords, ok)``: a ``(B, n)`` uint8 matrix and a
        boolean success mask.  Rows whose decode raises
        :class:`DecodingFailure` are all-zero with ``ok = False`` —
        batch consumers observe failures as data instead of control
        flow, which is what the failure-rate oracles need.

        **Batch contract** — every implementation, overridden or not,
        must be bitwise-equivalent to calling :meth:`decode` row by
        row: same corrected bits on success, same rows failing.  The
        engine's query-for-query equivalence guarantee (see
        ``docs/ecc.md``) rests on this; ``tests/ecc/test_batch_decode``
        and ``benchmarks/bench_ecc_decode.py`` assert it.

        Every shipped code overrides this with a vectorized decoder
        (BCH: batched Berlekamp–Massey + Chien; Reed–Muller: batched
        Hadamard transform; repetition/Hamming: closed-form).  The base
        implementation is the fallback for external codes without a
        vectorizable decoder: it deduplicates identical received words
        and decodes each distinct word once through the scalar path, so
        the contract holds by construction.
        """
        words = as_bit_matrix(received, self.n)
        codewords = np.zeros_like(words)
        ok = np.zeros(words.shape[0], dtype=bool)
        for word, rows in iter_unique_rows(words):
            try:
                codewords[rows] = self.decode(word)
            except DecodingFailure:
                continue
            ok[rows] = True
        return codewords, ok

    def kernel_key(self) -> "tuple | None":
        """Structural identity of this code's batch-decode kernel.

        Two codes returning the same (non-``None``) key must be
        *interchangeable* as decoders: their :meth:`decode_batch`
        results must be bitwise-identical on any input.  The two-phase
        evaluator protocol uses the key to fuse the decode workloads of
        many devices sharing a code geometry into one kernel call
        (:mod:`repro.ecc.kernel`).  The base implementation returns
        ``None`` — unknown external codes never fuse — and every
        shipped code overrides it with its defining parameters.
        """
        return None

    @property
    def bounded_distance(self) -> bool:
        """Whether the decoder is a bounded-distance decoder.

        Bounded-distance decoders (BCH, repetition) correct up to ``t``
        and *fail* beyond, which is what the simple Fig. 5 injection
        calculus assumes.  Maximum-likelihood decoders (first-order
        Reed–Muller) always return the nearest codeword; words at
        exactly half the minimum distance resolve deterministically but
        data-dependently, and attackers must pick injection patterns by
        offline search instead (see
        ``SequentialPairingAttack._injection_positions``).
        """
        return True

    def is_codeword(self, word: np.ndarray) -> bool:
        """Whether *word* is exactly a codeword of this code."""
        word = as_bits(word, self.n)
        try:
            corrected = self.decode(word)
        except DecodingFailure:
            return False
        return bool(np.array_equal(corrected, word))

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(n={self.n}, k={self.k}, "
                f"t={self.t})")
