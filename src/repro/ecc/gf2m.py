"""Binary-extension-field arithmetic GF(2^m) and GF(2) polynomials.

Everything the BCH machinery needs, built from scratch:

* :class:`GF2m` — log/antilog-table arithmetic in GF(2^m) for
  ``2 <= m <= 16``, with the usual primitive polynomials.  Scalar
  operations are complemented by array-native ones (``mul_array``,
  ``alpha_eval_batch``, …) that apply the same log/antilog tables as
  NumPy gathers across whole element matrices — the foundation of the
  vectorized decode engine (see ``docs/ecc.md``).
* GF(2)[x] polynomial helpers operating on Python integers used as
  coefficient bitmasks (bit ``i`` is the coefficient of ``x^i``), which
  keeps carry-less multiplication and long division simple and fast.
* Cyclotomic cosets and minimal polynomials, from which BCH generator
  polynomials are assembled.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

#: Default primitive polynomials (coefficient bitmasks, degree = m) for
#: GF(2^m).  E.g. m=4 -> 0b10011 = x^4 + x + 1.
PRIMITIVE_POLYNOMIALS: Dict[int, int] = {
    2: 0b111,
    3: 0b1011,
    4: 0b10011,
    5: 0b100101,
    6: 0b1000011,
    7: 0b10001001,
    8: 0b100011101,
    9: 0b1000010001,
    10: 0b10000001001,
    11: 0b100000000101,
    12: 0b1000001010011,
    13: 0b10000000011011,
    14: 0b100010001000011,
    15: 0b1000000000000011,
    16: 0b10001000000001011,
}


# ----------------------------------------------------------------------
# GF(2)[x] polynomials as integer bitmasks


def poly_degree(poly: int) -> int:
    """Degree of a GF(2) polynomial; the zero polynomial has degree -1."""
    return poly.bit_length() - 1


def poly_mul(a: int, b: int) -> int:
    """Carry-less product of two GF(2) polynomials."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        b >>= 1
    return result


def poly_divmod(dividend: int, divisor: int) -> Tuple[int, int]:
    """Quotient and remainder of GF(2) polynomial long division."""
    if divisor == 0:
        raise ZeroDivisionError("polynomial division by zero")
    quotient = 0
    deg_divisor = poly_degree(divisor)
    remainder = dividend
    while poly_degree(remainder) >= deg_divisor:
        shift = poly_degree(remainder) - deg_divisor
        quotient ^= 1 << shift
        remainder ^= divisor << shift
    return quotient, remainder


def poly_mod(dividend: int, divisor: int) -> int:
    """Remainder of GF(2) polynomial long division."""
    return poly_divmod(dividend, divisor)[1]


def poly_to_bits(poly: int, length: int) -> np.ndarray:
    """Coefficient vector (LSB first) of a GF(2) polynomial."""
    if poly_degree(poly) >= length:
        raise ValueError("polynomial does not fit in the requested length")
    return np.array([(poly >> i) & 1 for i in range(length)],
                    dtype=np.uint8)


def bits_to_poly(bits: np.ndarray) -> int:
    """Integer bitmask from a coefficient vector (LSB first)."""
    poly = 0
    for i, bit in enumerate(np.asarray(bits).astype(int)):
        if bit not in (0, 1):
            raise ValueError("bits must be 0/1")
        if bit:
            poly |= 1 << i
    return poly


# ----------------------------------------------------------------------
# GF(2^m)


class GF2m:
    """The finite field GF(2^m) with log/antilog-table arithmetic.

    Elements are integers in ``[0, 2^m)`` interpreted as GF(2)
    polynomials modulo the primitive polynomial; ``alpha = 2`` (the class
    checks the chosen modulus is primitive, i.e. that ``alpha`` generates
    the multiplicative group).
    """

    def __init__(self, m: int, primitive_poly: int = None):
        if m < 2 or m > 16:
            raise ValueError("supported field sizes: 2 <= m <= 16")
        if primitive_poly is None:
            primitive_poly = PRIMITIVE_POLYNOMIALS[m]
        if poly_degree(primitive_poly) != m:
            raise ValueError("primitive polynomial must have degree m")
        self._m = m
        self._modulus = primitive_poly
        self._order = (1 << m) - 1

        exp = np.zeros(2 * self._order, dtype=np.int64)
        log = np.full(1 << m, -1, dtype=np.int64)
        value = 1
        for power in range(self._order):
            exp[power] = value
            if log[value] != -1:
                raise ValueError("polynomial is not primitive over GF(2)")
            log[value] = power
            value <<= 1
            if value & (1 << m):
                value ^= primitive_poly
        if value != 1:
            raise ValueError("polynomial is not primitive over GF(2)")
        # Duplicate the table so exponent sums need no modulo reduction.
        exp[self._order:] = exp[:self._order]
        self._exp = exp
        self._log = log

    @property
    def m(self) -> int:
        """Extension degree: the field has ``2^m`` elements."""
        return self._m

    @property
    def order(self) -> int:
        """Size of the multiplicative group, ``2^m - 1``."""
        return self._order

    @property
    def size(self) -> int:
        """Number of field elements, ``2^m``."""
        return self._order + 1

    @property
    def modulus(self) -> int:
        """The defining primitive polynomial (bitmask)."""
        return self._modulus

    def _check(self, a: int) -> int:
        if not 0 <= a < self.size:
            raise ValueError(f"{a} is not an element of GF(2^{self._m})")
        return a

    def add(self, a: int, b: int) -> int:
        """Field addition (= subtraction = XOR in characteristic 2)."""
        return self._check(a) ^ self._check(b)

    def mul(self, a: int, b: int) -> int:
        """Field multiplication."""
        self._check(a)
        self._check(b)
        if a == 0 or b == 0:
            return 0
        return int(self._exp[self._log[a] + self._log[b]])

    def inv(self, a: int) -> int:
        """Multiplicative inverse."""
        self._check(a)
        if a == 0:
            raise ZeroDivisionError("zero has no inverse")
        return int(self._exp[self._order - self._log[a]])

    def div(self, a: int, b: int) -> int:
        """Field division ``a / b``."""
        return self.mul(a, self.inv(b))

    def pow(self, a: int, exponent: int) -> int:
        """Field exponentiation ``a ** exponent`` (any integer exponent)."""
        self._check(a)
        if a == 0:
            if exponent < 0:
                raise ZeroDivisionError("zero has no negative powers")
            return 0 if exponent else 1
        reduced = (self._log[a] * exponent) % self._order
        return int(self._exp[reduced])

    def alpha_pow(self, exponent: int) -> int:
        """``alpha ** exponent`` for the generator ``alpha = 2``."""
        return int(self._exp[exponent % self._order])

    def alpha_pow_array(self, exponents: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`alpha_pow` over an integer exponent array."""
        exps = np.asarray(exponents, dtype=np.int64)
        return self._exp[np.mod(exps, self._order)]

    def log_alpha(self, a: int) -> int:
        """Discrete log base ``alpha`` of a non-zero element."""
        self._check(a)
        if a == 0:
            raise ZeroDivisionError("zero has no discrete logarithm")
        return int(self._log[a])

    # ------------------------------------------------------------------
    # array-native field operations (the vectorized decode engine)

    def mul_array(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise field product of two element arrays.

        Broadcasting follows NumPy rules.  Non-zero lanes are one
        log-table gather per operand, an exponent add, and one antilog
        gather — the exp table is stored doubled, so the exponent sum
        needs no modulo reduction.  Lanes with a zero operand
        short-circuit to zero (zero has no logarithm; its ``-1``
        sentinel in the log table is masked out before the gather).
        """
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        nonzero = (a != 0) & (b != 0)
        index = np.where(nonzero, self._log[a] + self._log[b], 0)
        return np.where(nonzero, self._exp[index], 0)

    def inv_array(self, a: np.ndarray) -> np.ndarray:
        """Elementwise multiplicative inverse of a non-zero array.

        Raises :class:`ZeroDivisionError` if any lane is zero; batch
        callers must mask zero lanes away first (the Berlekamp–Massey
        step only ever inverts previous discrepancies, which are
        non-zero by construction).
        """
        a = np.asarray(a, dtype=np.int64)
        if np.any(a == 0):
            raise ZeroDivisionError("zero has no inverse")
        return self._exp[self._order - self._log[a]]

    def div_array(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise field quotient ``a / b`` (*b* must be non-zero)."""
        return self.mul_array(a, self.inv_array(b))

    def log_array(self, a: np.ndarray) -> np.ndarray:
        """Elementwise discrete log; zero lanes map to the ``-1`` sentinel.

        The sentinel convention lets callers gather logs of sparse
        coefficient matrices in one pass and mask the zero lanes out
        afterwards, instead of branching per element.
        """
        return self._log[np.asarray(a, dtype=np.int64)]

    def alpha_eval_batch(self, coeffs: np.ndarray,
                         point_exponents: np.ndarray) -> np.ndarray:
        """Evaluate field polynomials on an ``alpha``-power grid, batched.

        *coeffs* is a ``(B, D)`` matrix of GF(2^m) coefficients (degree
        0 first); *point_exponents* is a length-``P`` integer array of
        exponents ``e`` (negative allowed).  Returns the ``(B, P)``
        value matrix ``V[b, p] = sum_d coeffs[b, d] * alpha^(e_p * d)``
        — the workhorse of the batched Chien search, where the grid is
        ``e_p = -p`` over all codeword positions.

        The evaluation runs one degree at a time (``D`` passes over a
        ``(B, P)`` XOR accumulator), keeping peak memory at one
        batch-by-grid matrix instead of materialising a ``(B, D, P)``
        cube.  All-zero coefficient columns are skipped outright.
        """
        coeffs = np.asarray(coeffs, dtype=np.int64)
        exps = np.asarray(point_exponents, dtype=np.int64)
        coeff_logs = self._log[coeffs]  # -1 marks zero coefficients
        values = np.zeros((coeffs.shape[0], exps.shape[0]),
                          dtype=np.int64)
        for degree in range(coeffs.shape[1]):
            logs = coeff_logs[:, degree]
            present = logs >= 0
            if not present.any():
                continue
            grid = np.mod(exps * degree, self._order)
            term = self._exp[np.where(present, logs, 0)[:, None]
                             + grid[None, :]]
            values ^= np.where(present[:, None], term, 0)
        return values

    # ------------------------------------------------------------------
    # structures built on the field

    def cyclotomic_coset(self, exponent: int) -> List[int]:
        """Cyclotomic coset of *exponent* modulo ``2^m - 1``.

        The coset ``{e, 2e, 4e, ...}`` indexes the conjugates
        ``alpha^e, alpha^{2e}, ...`` sharing one minimal polynomial.
        """
        exponent %= self._order
        coset = [exponent]
        current = (exponent * 2) % self._order
        while current != exponent:
            coset.append(current)
            current = (current * 2) % self._order
        return coset

    def minimal_polynomial(self, exponent: int) -> int:
        """Minimal polynomial over GF(2) of ``alpha**exponent`` (bitmask).

        Computed as ``prod (x - alpha^{e'})`` over the cyclotomic coset;
        the product necessarily has 0/1 coefficients.
        """
        coset = self.cyclotomic_coset(exponent)
        # Coefficients over GF(2^m), lowest degree first; start with 1.
        coeffs = [1]
        for element_exp in coset:
            root = self.alpha_pow(element_exp)
            # Multiply coeffs by (x + root).
            new = [0] * (len(coeffs) + 1)
            for degree, coeff in enumerate(coeffs):
                new[degree + 1] ^= coeff            # x * coeff
                new[degree] ^= self.mul(coeff, root)  # root * coeff
            coeffs = new
        mask = 0
        for degree, coeff in enumerate(coeffs):
            if coeff not in (0, 1):
                raise AssertionError(
                    "minimal polynomial must have binary coefficients")
            if coeff:
                mask |= 1 << degree
        return mask

    def poly_eval(self, coeff_bits: np.ndarray, point: int) -> int:
        """Evaluate a GF(2)-coefficient polynomial at a field *point*.

        *coeff_bits* is an LSB-first 0/1 vector; Horner evaluation in
        GF(2^m).  This is how BCH syndromes ``r(alpha^j)`` are computed.
        """
        result = 0
        for coeff in reversed(np.asarray(coeff_bits).astype(int)):
            result = self.mul(result, point) ^ (1 if coeff else 0)
        return result

    def __repr__(self) -> str:
        return f"GF2m(m={self._m}, modulus={bin(self._modulus)})"
