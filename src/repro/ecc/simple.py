"""Simple block codes: trivial (t = 0), repetition, and Hamming.

Paper §VI: *"The absence of an ECC can be considered as the degenerate
case t = 0"* — :class:`TrivialCode` embodies exactly that, so every key
generator and attack can be exercised with or without a reliability
layer through the same :class:`~repro.ecc.base.BlockCode` interface.
Repetition codes are the classic lightweight PUF ECC; Hamming codes give
a cheap ``t = 1`` block.
"""

from __future__ import annotations

import numpy as np

from repro.ecc.base import BlockCode, as_bit_matrix, as_bits


class TrivialCode(BlockCode):
    """The identity ``[k, k]`` code with no correction capability.

    Decoding never fails — there is no redundancy to detect errors with —
    so with this code a "reconstruction failure" only surfaces at the
    application key-check, exactly like an ECC-less PUF.
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be positive")
        self._k = k

    @property
    def n(self) -> int:
        """Code length in bits."""
        return self._k

    @property
    def k(self) -> int:
        """Number of data bits (equal to ``n``)."""
        return self._k

    @property
    def t(self) -> int:
        """Error-correction radius: zero."""
        return 0

    def encode(self, message: np.ndarray) -> np.ndarray:
        """Identity encoding of ``(k,)`` data bits."""
        return as_bits(message, self._k).copy()

    def decode(self, received: np.ndarray) -> np.ndarray:
        """Identity decode: every ``(n,)`` word is a codeword."""
        return as_bits(received, self._k).copy()

    def extract(self, codeword: np.ndarray) -> np.ndarray:
        """Identity extraction of the data bits."""
        return as_bits(codeword, self._k).copy()

    def decode_batch(self, received: np.ndarray
                     ) -> "tuple[np.ndarray, np.ndarray]":
        """Identity batch decode: every row is a codeword."""
        words = as_bit_matrix(received, self._k)
        return words.copy(), np.ones(words.shape[0], dtype=bool)

    def kernel_key(self) -> tuple:
        """Structural decode-kernel identity: the length alone."""
        return ("trivial", self._k)


class RepetitionCode(BlockCode):
    """``[n, 1]`` repetition code with majority decoding, ``n`` odd.

    Corrects ``t = (n - 1) / 2`` errors per block and is the cheapest
    reliability primitive in the PUF literature.
    """

    def __init__(self, n: int):
        if n < 3 or n % 2 == 0:
            raise ValueError("repetition length must be odd and >= 3")
        self._n = n

    @property
    def n(self) -> int:
        """Code length in bits (the repetition count)."""
        return self._n

    @property
    def k(self) -> int:
        """Number of data bits: one."""
        return 1

    @property
    def t(self) -> int:
        """Error-correction radius ``(n - 1) // 2``."""
        return (self._n - 1) // 2

    def encode(self, message: np.ndarray) -> np.ndarray:
        """Repeat the single data bit ``n`` times."""
        message = as_bits(message, 1)
        return np.full(self._n, message[0], dtype=np.uint8)

    def decode(self, received: np.ndarray) -> np.ndarray:
        """Majority-vote decode of an ``(n,)`` word."""
        received = as_bits(received, self._n)
        majority = 1 if int(received.sum()) * 2 > self._n else 0
        return np.full(self._n, majority, dtype=np.uint8)

    def extract(self, codeword: np.ndarray) -> np.ndarray:
        """Read the data bit back from a codeword."""
        codeword = as_bits(codeword, self._n)
        return codeword[:1].copy()

    def decode_batch(self, received: np.ndarray
                     ) -> "tuple[np.ndarray, np.ndarray]":
        """Vectorized majority vote: one popcount per row."""
        words = as_bit_matrix(received, self._n)
        majority = (words.sum(axis=1, dtype=np.int64) * 2
                    > self._n).astype(np.uint8)
        codewords = np.repeat(majority[:, None], self._n, axis=1)
        return codewords, np.ones(words.shape[0], dtype=bool)

    def kernel_key(self) -> tuple:
        """Structural decode-kernel identity: the repetition count."""
        return ("repetition", self._n)


class HammingCode(BlockCode):
    """``[2^r - 1, 2^r - 1 - r]`` Hamming code, correcting one error.

    Parity-check matrix columns are the binary expansions of
    ``1 .. 2^r - 1``; the syndrome directly names the error position.
    """

    def __init__(self, r: int):
        if r < 2:
            raise ValueError("r must be at least 2")
        self._r = r
        self._n = (1 << r) - 1
        # Column i (1-based) of H is the binary expansion of i.  Data
        # positions are the non-powers-of-two; parity positions the
        # powers of two (classic Hamming layout, 1-based index).
        self._parity_positions = [1 << i for i in range(r)]
        self._data_positions = [i for i in range(1, self._n + 1)
                                if i not in self._parity_positions]

    @property
    def n(self) -> int:
        """Code length ``2^r - 1`` in bits."""
        return self._n

    @property
    def k(self) -> int:
        """Number of data bits ``n - r``."""
        return self._n - self._r

    @property
    def t(self) -> int:
        """Error-correction radius: one."""
        return 1

    def encode(self, message: np.ndarray) -> np.ndarray:
        """Encode ``(k,)`` data bits into an ``(n,)`` codeword."""
        message = as_bits(message, self.k)
        word = np.zeros(self._n + 1, dtype=np.uint8)  # 1-based
        for value, position in zip(message, self._data_positions):
            word[position] = value
        for bit_index, position in enumerate(self._parity_positions):
            parity = 0
            for idx in range(1, self._n + 1):
                if idx != position and (idx >> bit_index) & 1:
                    parity ^= int(word[idx])
            word[position] = parity
        return word[1:]

    def _syndrome(self, word: np.ndarray) -> int:
        syndrome = 0
        for idx in range(1, self._n + 1):
            if word[idx - 1]:
                syndrome ^= idx
        return syndrome

    def decode(self, received: np.ndarray) -> np.ndarray:
        """Syndrome decode correcting up to one bit error."""
        received = as_bits(received, self._n)
        corrected = received.copy()
        syndrome = self._syndrome(corrected)
        if syndrome:
            corrected[syndrome - 1] ^= 1
        # A Hamming code is perfect: every word decodes to some codeword,
        # so, as with real hardware, >1 errors silently mis-correct and
        # are caught only by the application key-check.
        return corrected

    def extract(self, codeword: np.ndarray) -> np.ndarray:
        """Extract the ``(k,)`` data bits from a codeword."""
        codeword = as_bits(codeword, self._n)
        return np.array([codeword[p - 1] for p in self._data_positions],
                        dtype=np.uint8)

    def decode_batch(self, received: np.ndarray
                     ) -> "tuple[np.ndarray, np.ndarray]":
        """Vectorized syndrome decode of a ``(B, n)`` batch.

        The syndrome of each row is the XOR of the 1-based indices of
        its set bits — one masked XOR-reduction — and directly names
        the position to flip, exactly as in :meth:`decode`.
        """
        words = as_bit_matrix(received, self._n)
        indices = np.arange(1, self._n + 1, dtype=np.int64)
        syndromes = np.bitwise_xor.reduce(
            words.astype(np.int64) * indices[None, :], axis=1)
        corrected = words.copy()
        flip = np.flatnonzero(syndromes)
        corrected[flip, syndromes[flip] - 1] ^= 1
        return corrected, np.ones(words.shape[0], dtype=bool)

    def kernel_key(self) -> tuple:
        """Structural decode-kernel identity: the check-bit count."""
        return ("hamming", self._r)


class BlockwiseCode(BlockCode):
    """Apply an inner block code independently to consecutive blocks.

    Paper §V-D: *"Incoming bits are clustered in blocks, which are all
    error-corrected independently."*  A :class:`BlockwiseCode` over
    *blocks* copies of an inner ``[n, k]`` code is itself an
    ``[blocks*n, blocks*k]`` code, with per-block correction capability
    ``t`` (the aggregate guarantee remains ``t`` because a single block
    overflowing fails the whole key).
    """

    def __init__(self, inner: BlockCode, blocks: int):
        if blocks < 1:
            raise ValueError("need at least one block")
        self._inner = inner
        self._blocks = blocks

    @property
    def inner(self) -> BlockCode:
        """The per-block inner code."""
        return self._inner

    @property
    def blocks(self) -> int:
        """Number of independently decoded blocks."""
        return self._blocks

    @property
    def bounded_distance(self) -> bool:
        """Inherited from the inner code."""
        return self._inner.bounded_distance

    @property
    def n(self) -> int:
        """Total code length (inner ``n`` times ``blocks``)."""
        return self._inner.n * self._blocks

    @property
    def k(self) -> int:
        """Total data bits (inner ``k`` times ``blocks``)."""
        return self._inner.k * self._blocks

    @property
    def t(self) -> int:
        """Per-block error-correction radius."""
        return self._inner.t

    def encode(self, message: np.ndarray) -> np.ndarray:
        """Encode block-by-block through the inner code."""
        message = as_bits(message, self.k)
        pieces = [self._inner.encode(chunk)
                  for chunk in message.reshape(self._blocks,
                                               self._inner.k)]
        return np.concatenate(pieces)

    def decode(self, received: np.ndarray) -> np.ndarray:
        """Per-block decode; any block failure fails the word."""
        received = as_bits(received, self.n)
        pieces = [self._inner.decode(chunk)
                  for chunk in received.reshape(self._blocks,
                                                self._inner.n)]
        return np.concatenate(pieces)

    def extract(self, codeword: np.ndarray) -> np.ndarray:
        """Concatenate the per-block data bits."""
        codeword = as_bits(codeword, self.n)
        pieces = [self._inner.extract(chunk)
                  for chunk in codeword.reshape(self._blocks,
                                                self._inner.n)]
        return np.concatenate(pieces)

    def decode_batch(self, received: np.ndarray
                     ) -> "tuple[np.ndarray, np.ndarray]":
        """Batch decode through the inner code's batch path.

        The ``(B, blocks * n)`` batch is reshaped to
        ``(B * blocks, n)`` and handed to the inner ``decode_batch``
        in one call, so a vectorized inner decoder (BCH, Reed–Muller,
        …) vectorizes the composition too.  As in :meth:`decode`, a
        row succeeds only if *every* block decodes; failed rows come
        back all-zero with ``ok = False``.
        """
        words = as_bit_matrix(received, self.n)
        flat = words.reshape(words.shape[0] * self._blocks,
                             self._inner.n)
        inner_words, inner_ok = self._inner.decode_batch(flat)
        ok = inner_ok.reshape(words.shape[0], self._blocks).all(axis=1)
        codewords = inner_words.reshape(words.shape[0], self.n).copy()
        codewords[~ok] = 0
        return codewords, ok

    def kernel_key(self) -> "tuple | None":
        """Inner kernel identity extended with the block count."""
        inner = self._inner.kernel_key()
        if inner is None:
            return None
        return ("blockwise", inner, self._blocks)
