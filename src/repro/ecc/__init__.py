"""Error-correcting codes and secure sketches (built from scratch).

The reliability layer of every construction in the paper: GF(2^m)
arithmetic, BCH codes with full Berlekamp–Massey decoding, simple codes
(trivial/repetition/Hamming), blockwise composition, and the code-offset
and syndrome secure-sketch constructions of the fuzzy-extractor
literature.
"""

from repro.ecc.base import (
    BlockCode,
    DecodingFailure,
    as_bit_matrix,
    as_bits,
)
from repro.ecc.bch import BCHCode, design_bch
from repro.ecc.gf2m import (
    GF2m,
    PRIMITIVE_POLYNOMIALS,
    bits_to_poly,
    poly_degree,
    poly_divmod,
    poly_mod,
    poly_mul,
    poly_to_bits,
)
from repro.ecc.kernel import (
    KernelStats,
    KernelWorkload,
    kernel_stats,
    run_kernels,
)
from repro.ecc.reed_muller import ReedMullerCode
from repro.ecc.simple import (
    BlockwiseCode,
    HammingCode,
    RepetitionCode,
    TrivialCode,
)
from repro.ecc.sketch import (
    CodeOffsetSketch,
    SecureSketch,
    SketchData,
    SyndromeSketch,
)

__all__ = [
    "BlockCode",
    "DecodingFailure",
    "as_bit_matrix",
    "as_bits",
    "BCHCode",
    "design_bch",
    "GF2m",
    "PRIMITIVE_POLYNOMIALS",
    "bits_to_poly",
    "poly_degree",
    "poly_divmod",
    "poly_mod",
    "poly_mul",
    "poly_to_bits",
    "KernelStats",
    "KernelWorkload",
    "kernel_stats",
    "run_kernels",
    "ReedMullerCode",
    "BlockwiseCode",
    "HammingCode",
    "RepetitionCode",
    "TrivialCode",
    "CodeOffsetSketch",
    "SecureSketch",
    "SketchData",
    "SyndromeSketch",
]
