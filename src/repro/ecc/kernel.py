"""Stateless fused kernels: stack per-device ECC work into one call.

The two-phase evaluator protocol (``docs/evaluators.md``) separates a
batch evaluation into a *plan* (per-device bit extraction and dedup), a
*kernel* (the expensive vectorized ECC/decode work), and a *finalize*
(per-device unwind and key assembly).  This module owns the middle
phase: a :class:`KernelWorkload` is the plan's declaration of kernel
work — input rows plus a structural :func:`kernel key <KernelWorkload>`
identifying the computation — and :func:`run_kernels` executes a round's
worth of workloads with **one kernel call per distinct key**, stacking
the rows of every workload that shares a key and splitting the outputs
back.

Fusion is sound because every participating kernel is *row-local*: the
output rows of ``BCHCode.decode_batch`` / ``solve_syndromes_batch`` (and
the other ``decode_batch`` implementations) are functions of the
corresponding input row alone, so the result of a row cannot depend on
which other rows shared its call.  Two workloads carry the same key only
when their kernels are structurally interchangeable (same code
parameters, same bounds), which makes the fused outputs bitwise-equal to
running each workload's own kernel separately — the equivalence contract
pinned in ``tests/ecc/test_kernel.py`` and
``benchmarks/bench_campaign_fusion.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "KernelWorkload",
    "KernelStats",
    "kernel_stats",
    "run_kernels",
]

#: A batch kernel: maps an ``(R, width)`` input matrix to one or more
#: output arrays whose leading dimension is ``R``.
KernelFn = Callable[[np.ndarray], object]


@dataclass
class KernelWorkload:
    """One plan's declared share of a round's kernel work.

    Parameters
    ----------
    key:
        Structural identity of the computation (a hashable tuple built
        from :meth:`~repro.ecc.base.BlockCode.kernel_key` plus any
        kernel bounds).  Workloads with equal keys are fused into one
        kernel call; ``None`` marks a kernel without a structural
        identity, which always runs alone.
    words:
        ``(R, width)`` input rows (bit matrix or syndrome matrix,
        kernel-dependent).  All workloads sharing a key must agree on
        width and dtype — guaranteed when the key encodes the code
        geometry.
    kernel:
        The stateless batch callable.  Workloads sharing a key must
        hold interchangeable kernels (bound to structurally identical
        codes); the fused call uses the first one of the group.

    The dataclass holds only arrays, plain values and picklable kernel
    objects (bound methods of picklable codes, or the small kernel
    dataclasses in :mod:`repro.ecc.sketch`), so a workload can cross a
    process boundary under the fleet engine's copy-on-dispatch rule.
    """

    key: Optional[Tuple]
    words: np.ndarray
    kernel: KernelFn

    @property
    def rows(self) -> int:
        """Number of input rows this workload contributes."""
        return int(self.words.shape[0])


@dataclass
class KernelStats:
    """Running account of kernel-phase work (calls, rows, seconds).

    ``benchmarks/bench_campaign_fusion.py`` resets the module-level
    :data:`kernel_stats` instance around a campaign run to measure how
    much kernel time fusion saves; the counters are otherwise inert
    bookkeeping (one ``perf_counter`` pair per kernel call).
    """

    calls: int = 0
    rows: int = 0
    seconds: float = field(default=0.0)

    def reset(self) -> None:
        """Zero all counters."""
        self.calls = 0
        self.rows = 0
        self.seconds = 0.0


#: Module-level kernel accounting, shared by every :func:`run_kernels`.
kernel_stats = KernelStats()


def _as_output_tuple(result: object) -> Tuple[np.ndarray, ...]:
    """Normalise a kernel result to a tuple of row-aligned arrays."""
    if isinstance(result, tuple):
        return tuple(np.asarray(part) for part in result)
    return (np.asarray(result),)


def _timed_call(kernel: KernelFn, words: np.ndarray
                ) -> Tuple[np.ndarray, ...]:
    """Run one kernel call, accounting it in :data:`kernel_stats`."""
    start = time.perf_counter()
    result = _as_output_tuple(kernel(words))
    kernel_stats.seconds += time.perf_counter() - start
    kernel_stats.calls += 1
    kernel_stats.rows += int(words.shape[0])
    return result


def stack_workloads(group: Sequence[KernelWorkload]) -> np.ndarray:
    """Concatenate the input rows of same-key workloads, in order."""
    if len(group) == 1:
        return group[0].words
    return np.concatenate([workload.words for workload in group],
                          axis=0)


def split_outputs(outputs: Tuple[np.ndarray, ...],
                  sizes: Sequence[int]) -> List[Tuple[np.ndarray, ...]]:
    """Split stacked kernel outputs back into per-workload tuples.

    Every output array is split along axis 0 at the cumulative row
    boundaries of *sizes*; entry ``i`` of the returned list is the
    output tuple workload ``i`` would have received from its own call.
    """
    bounds = np.cumsum(sizes)[:-1]
    parts = [np.split(array, bounds, axis=0) for array in outputs]
    return [tuple(part[index] for part in parts)
            for index in range(len(sizes))]


def run_kernels(workloads: Sequence[Optional[KernelWorkload]]
                ) -> List[Optional[Tuple[np.ndarray, ...]]]:
    """Execute a round of workloads, fused per distinct kernel key.

    Workloads sharing a key are stacked (:func:`stack_workloads`) and
    answered by **one** kernel call; keyless (``key is None``) and
    lone workloads run individually.  ``None`` or empty workloads
    yield ``None`` outputs.  Returns one output tuple per input
    workload, in input order — bitwise-identical to calling each
    workload's own kernel on its own rows, because every participating
    kernel is row-local (see the module docstring).
    """
    outputs: List[Optional[Tuple[np.ndarray, ...]]] = \
        [None] * len(workloads)
    groups: Dict[Tuple, List[int]] = {}
    solo: List[int] = []
    for index, workload in enumerate(workloads):
        if workload is None or workload.rows == 0:
            continue
        if workload.key is None:
            solo.append(index)
        else:
            groups.setdefault(workload.key, []).append(index)
    for index in solo:
        workload = workloads[index]
        outputs[index] = _timed_call(workload.kernel, workload.words)
    for indices in groups.values():
        members = [workloads[i] for i in indices]
        stacked = stack_workloads(members)
        fused = _timed_call(members[0].kernel, stacked)
        if len(members) == 1:
            outputs[indices[0]] = fused
            continue
        pieces = split_outputs(fused, [m.rows for m in members])
        for slot, index in enumerate(indices):
            outputs[index] = pieces[slot]
    return outputs
