"""Binary narrow-sense BCH codes, built from first principles.

The group-based RO PUF (paper §V-D) and the fuzzy-extractor reference
solution (§VII-A) both rest on a ``t``-error-correcting block code; BCH is
the standard choice in the PUF literature.  This implementation contains
the complete pipeline:

* generator polynomial = lcm of the minimal polynomials of
  ``alpha^1 .. alpha^{2t}``;
* systematic encoding by polynomial division;
* decoding through syndromes, the Berlekamp–Massey algorithm and a Chien
  search, with explicit :class:`~repro.ecc.base.DecodingFailure` on
  uncorrectable words;
* a *vectorized* decode engine running the same pipeline lock-step
  across whole batches: ``syndromes_batch`` → ``solve_syndromes_batch``
  (batched Berlekamp–Massey + one-shot Chien over the alpha-power
  table) → error-pattern XOR, bitwise-equivalent to the scalar decoder
  row for row (see ``docs/ecc.md``);
* optional code *shortening*, so block lengths can be matched to the bit
  counts the PUF constructions actually produce.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro._dedup import unique_rows
from repro.ecc.base import BlockCode, DecodingFailure, as_bit_matrix, as_bits
from repro.ecc.gf2m import GF2m, poly_degree, poly_mod, poly_mul, poly_to_bits


class BCHCode(BlockCode):
    """Narrow-sense binary BCH code of length ``2^m - 1``, shortened by
    *shorten* leading message bits.

    Parameters
    ----------
    m:
        Field extension degree; the parent code has length ``2^m - 1``.
    t:
        Design error-correction capability (design distance ``2t + 1``).
    shorten:
        Number of message bits removed from the parent code.  A shortened
        ``[n - s, k - s]`` code keeps the same ``t``.
    """

    def __init__(self, m: int, t: int, shorten: int = 0):
        if t < 1:
            raise ValueError("use TrivialCode for t = 0")
        self._field = GF2m(m)
        full_n = self._field.order
        if 2 * t >= full_n:
            raise ValueError(f"t={t} too large for code length {full_n}")

        generator = 1
        seen_cosets = set()
        for j in range(1, 2 * t + 1):
            coset = tuple(sorted(self._field.cyclotomic_coset(j)))
            if coset in seen_cosets:
                continue
            seen_cosets.add(coset)
            generator = poly_mul(generator,
                                 self._field.minimal_polynomial(j))
        self._generator = generator
        full_k = full_n - poly_degree(generator)
        if full_k <= 0:
            raise ValueError(f"BCH(m={m}, t={t}) has no message bits")
        if not 0 <= shorten < full_k:
            raise ValueError(
                f"shorten must be in [0, {full_k}), got {shorten}")

        self._m = m
        self._t = t
        self._shorten = shorten
        self._full_n = full_n
        self._full_k = full_k
        self._syndrome_powers: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # parameters

    @property
    def n(self) -> int:
        """Code length in bits (after shortening)."""
        return self._full_n - self._shorten

    @property
    def k(self) -> int:
        """Number of data bits."""
        return self._full_k - self._shorten

    @property
    def t(self) -> int:
        """Guaranteed error-correction radius in bits."""
        return self._t

    @property
    def m(self) -> int:
        """Field extension degree of the parent code."""
        return self._m

    @property
    def field(self) -> GF2m:
        """The underlying GF(2^m) instance."""
        return self._field

    def kernel_key(self) -> tuple:
        """Structural decode-kernel identity: ``(m, t, shorten)``.

        A BCH code is fully determined by its field degree, design
        capability and shortening (the primitive polynomial is fixed
        per ``m``), so equal keys imply bitwise-interchangeable
        decoders — the fusion precondition of
        :mod:`repro.ecc.kernel`.
        """
        return ("bch", self._m, self._t, self._shorten)

    @property
    def generator_polynomial(self) -> np.ndarray:
        """Generator polynomial coefficients, LSB (x^0) first."""
        return poly_to_bits(self._generator,
                            poly_degree(self._generator) + 1)

    @property
    def parity_bits(self) -> int:
        """Number of redundancy bits per block, ``n - k``."""
        return self.n - self.k

    # ------------------------------------------------------------------
    # encode

    def encode(self, message: np.ndarray) -> np.ndarray:
        """Systematic encoding: ``codeword = [parity | message]``.

        Bit layout (LSB-first polynomial convention): positions
        ``[0, n-k)`` carry the parity of ``m(x) * x^{n-k} mod g(x)`` and
        positions ``[n-k, n)`` carry the message.  Shortened bits are
        implicitly-zero *high-order* message positions of the parent code
        and are simply never emitted.
        """
        message = as_bits(message, self.k)
        parity_len = self._full_n - self._full_k
        msg_poly = 0
        for i, bit in enumerate(message):
            if bit:
                msg_poly |= 1 << i
        remainder = poly_mod(msg_poly << parity_len, self._generator)
        codeword = np.empty(self.n, dtype=np.uint8)
        codeword[:parity_len] = poly_to_bits(remainder, parity_len)
        codeword[parity_len:] = message
        return codeword

    def extract(self, codeword: np.ndarray) -> np.ndarray:
        """Message bits of a systematic codeword."""
        codeword = as_bits(codeword, self.n)
        return codeword[self.n - self.k:].copy()

    # ------------------------------------------------------------------
    # decode

    def _syndromes(self, word_bits: np.ndarray) -> List[int]:
        return [self._field.poly_eval(word_bits,
                                      self._field.alpha_pow(j))
                for j in range(1, 2 * self._t + 1)]

    def syndromes_batch(self, received: np.ndarray) -> np.ndarray:
        """Syndrome vectors of a ``(B, n)`` batch, shape ``(B, 2t)``.

        ``S_j = sum over set bit positions i of alpha^(j*i)`` — field
        addition is XOR, so the whole batch reduces to one table lookup
        plus an XOR-reduction.  Shortened (implicitly zero) positions
        contribute nothing and are simply absent from the table.
        """
        words = as_bit_matrix(received, self.n)
        if self._syndrome_powers is None:
            j = np.arange(1, 2 * self._t + 1, dtype=np.int64)[:, None]
            i = np.arange(self.n, dtype=np.int64)[None, :]
            self._syndrome_powers = self._field.alpha_pow_array(j * i)
        table = self._syndrome_powers
        masked = np.where(words[:, None, :] != 0, table[None, :, :], 0)
        return np.bitwise_xor.reduce(masked, axis=2)

    def decode_batch(self, received: np.ndarray
                     ) -> "tuple[np.ndarray, np.ndarray]":
        """Fully vectorized batch decode (no scalar inner loop).

        The pipeline is one NumPy pass per stage: :meth:`syndromes_batch`
        over the whole block, an all-zero-syndrome fast path (the
        overwhelmingly common case for a provisioned reliability layer),
        then :meth:`solve_syndromes_batch` — lock-step Berlekamp–Massey
        plus a one-shot Chien evaluation — over the distinct non-zero
        syndrome vectors.  The error pattern is a function of the
        syndrome alone, so deduplicating on syndromes (cheap ``2t``-wide
        rows) never changes outcomes and keeps low-distinct workloads as
        fast as before.  Results are bitwise-identical to running
        :meth:`decode` row by row; failed rows come back all-zero with
        ``ok = False``.
        """
        words = as_bit_matrix(received, self.n)
        syndromes = self.syndromes_batch(words)
        clean = ~syndromes.any(axis=1)
        codewords = np.zeros_like(words)
        ok = clean.copy()
        codewords[clean] = words[clean]
        dirty = np.flatnonzero(~clean)
        if dirty.size == 0:
            return codewords, ok
        errors, solved = self.solve_syndromes_batch(syndromes[dirty])
        good = dirty[solved]
        codewords[good] = words[good] ^ errors[solved]
        ok[good] = True
        return codewords, ok

    # -- vectorized decode engine --------------------------------------

    def solve_syndromes_batch(self, syndromes: np.ndarray,
                              max_position: int = None
                              ) -> Tuple[np.ndarray, np.ndarray]:
        """Locate the error patterns of a ``(B, 2t)`` syndrome batch.

        The vectorized counterpart of the scalar
        Berlekamp–Massey/Chien/verify chain in :meth:`decode`: returns
        ``(error_bits, ok)`` where ``error_bits`` is a ``(B, n)`` uint8
        matrix (XOR it onto the received words to correct them) and
        ``ok`` flags rows whose syndromes resolve to a correctable
        pattern.  A row fails — all-zero error bits, ``ok = False`` —
        under exactly the scalar decoder's conditions: locator degree
        beyond ``t``, a locator that does not split over the field, an
        error located at or past *max_position* (default: the shortened
        code length ``n``), or a located pattern whose syndromes do not
        reproduce the input.  :class:`~repro.ecc.sketch.SyndromeSketch`
        reuses the kernel with ``max_position`` set to its response
        length, which is how the scalar recovery bounds corrections.

        Duplicate syndrome rows are solved once and the result is
        scattered back (the error pattern is a function of the
        syndrome alone), so low-distinct workloads stay cheap without
        any caller-side deduplication.  All-zero rows resolve to the
        empty error pattern with ``ok = True``; batch callers
        typically fast-path them anyway.
        """
        if max_position is None:
            max_position = self.n
        syn = np.asarray(syndromes, dtype=np.int64)
        if syn.ndim != 2 or syn.shape[1] != 2 * self._t:
            raise ValueError(
                f"syndrome batch shape must be (B, {2 * self._t})")
        if syn.shape[0] == 0:
            return (np.zeros((0, self.n), dtype=np.uint8),
                    np.zeros(0, dtype=bool))
        distinct, inverse = unique_rows(syn)
        errors, ok = self._solve_distinct_syndromes(distinct,
                                                    max_position)
        return errors[inverse], ok[inverse]

    def _solve_distinct_syndromes(self, syn: np.ndarray,
                                  max_position: int
                                  ) -> Tuple[np.ndarray, np.ndarray]:
        """The dedup-free solve core behind :meth:`solve_syndromes_batch`."""
        batch = syn.shape[0]
        error_bits = np.zeros((batch, self.n), dtype=np.uint8)
        ok = np.zeros(batch, dtype=bool)
        sigma = self._berlekamp_massey_batch(syn)
        degrees = (sigma.shape[1] - 1) - np.argmax(
            (sigma != 0)[:, ::-1], axis=1)
        viable = np.flatnonzero(degrees <= self._t)
        if viable.size == 0:
            return error_bits, ok
        roots = self._chien_roots_batch(sigma[viable, :self._t + 1])
        good = roots.sum(axis=1) == degrees[viable]
        good &= ~roots[:, max_position:].any(axis=1)
        keep = viable[good]
        if keep.size == 0:
            return error_bits, ok
        error_bits[keep] = roots[good][:, :self.n]
        # Final guard, as in the scalar path: the located pattern must
        # reproduce the input syndromes (beyond-t patterns can yield a
        # small locator that splits but corrects to a non-codeword).
        verified = np.all(
            self.syndromes_batch(error_bits[keep]) == syn[keep], axis=1)
        error_bits[keep[~verified]] = 0
        ok[keep[verified]] = True
        return error_bits, ok

    def _berlekamp_massey_batch(self, syndromes: np.ndarray
                                ) -> np.ndarray:
        """Lock-step Berlekamp–Massey over a ``(B, 2t)`` syndrome matrix.

        Runs the exact update schedule of :meth:`_berlekamp_massey` on
        every row simultaneously: one pass over the ``2t`` steps, with
        per-row discrepancy masks selecting which rows lengthen their
        LFSR, which only shift, and which skip (zero discrepancy) —
        instead of a Python loop per word.  Returns the ``(B, 2t + 2)``
        error-locator coefficient matrix (degree 0 first; trailing
        columns zero, ``sigma_0 = 1`` everywhere).  Coefficients match
        the scalar routine exactly, including for beyond-``t`` rows.
        """
        field = self._field
        syn = np.asarray(syndromes, dtype=np.int64)
        batch, steps = syn.shape
        width = steps + 2
        sigma = np.zeros((batch, width), dtype=np.int64)
        sigma[:, 0] = 1
        prev_sigma = sigma.copy()
        prev_discrepancy = np.ones(batch, dtype=np.int64)
        shift = np.ones(batch, dtype=np.int64)
        errors = np.zeros(batch, dtype=np.int64)
        columns = np.arange(width, dtype=np.int64)[None, :]
        for step in range(steps):
            # Per-row discrepancy: S_step + sum sigma_i * S_{step-i}
            # over 1 <= i <= errors (the current LFSR length).
            discrepancy = syn[:, step].copy()
            limit = min(step, width - 1)
            if limit >= 1:
                lags = np.arange(1, limit + 1)
                terms = field.mul_array(sigma[:, 1:limit + 1],
                                        syn[:, step - lags])
                in_range = lags[None, :] <= errors[:, None]
                discrepancy ^= np.bitwise_xor.reduce(
                    np.where(in_range, terms, 0), axis=1)
            active = np.flatnonzero(discrepancy)
            shift[discrepancy == 0] += 1
            if active.size == 0:
                continue
            scale = field.div_array(discrepancy[active],
                                    prev_discrepancy[active])
            # candidate = sigma - scale * x^shift * prev_sigma, with a
            # per-row shift realised as a clipped gather.
            offsets = columns - shift[active, None]
            shifted = np.where(
                offsets >= 0,
                prev_sigma[active[:, None], np.clip(offsets, 0, None)],
                0)
            candidate = sigma[active] ^ field.mul_array(scale[:, None],
                                                        shifted)
            grow = active[2 * errors[active] <= step]
            stay = active[2 * errors[active] > step]
            prev_sigma[grow] = sigma[grow]
            prev_discrepancy[grow] = discrepancy[grow]
            errors[grow] = step + 1 - errors[grow]
            shift[grow] = 1
            shift[stay] += 1
            sigma[active] = candidate
        return sigma

    def _chien_roots_batch(self, sigma: np.ndarray) -> np.ndarray:
        """Root masks of a batch of error locators, over all positions.

        One :meth:`~repro.ecc.gf2m.GF2m.alpha_eval_batch` pass over the
        precomputed alpha-power grid replaces the per-word Chien loop:
        entry ``[r, i]`` of the returned ``(B, full_n)`` boolean matrix
        is True where ``sigma_r(alpha^{-i}) == 0``, i.e. position ``i``
        of the parent code carries an error according to locator ``r``.
        """
        exponents = -np.arange(self._full_n, dtype=np.int64)
        return self._field.alpha_eval_batch(sigma, exponents) == 0

    def _berlekamp_massey(self, syndromes: List[int]) -> List[int]:
        """Error-locator polynomial sigma (LSB-first field coefficients)."""
        field = self._field
        sigma = [1]
        prev_sigma = [1]
        prev_discrepancy = 1
        shift = 1
        errors = 0
        for step, syndrome in enumerate(syndromes):
            discrepancy = syndrome
            for i in range(1, errors + 1):
                if i < len(sigma):
                    discrepancy ^= field.mul(sigma[i],
                                             syndromes[step - i])
            if discrepancy == 0:
                shift += 1
                continue
            scale = field.div(discrepancy, prev_discrepancy)
            candidate = sigma.copy()
            # candidate = sigma - scale * x^shift * prev_sigma
            needed = len(prev_sigma) + shift
            if len(candidate) < needed:
                candidate.extend([0] * (needed - len(candidate)))
            for i, coeff in enumerate(prev_sigma):
                candidate[i + shift] ^= field.mul(scale, coeff)
            if 2 * errors <= step:
                prev_sigma = sigma
                prev_discrepancy = discrepancy
                errors = step + 1 - errors
                shift = 1
            else:
                shift += 1
            sigma = candidate
        while len(sigma) > 1 and sigma[-1] == 0:
            sigma.pop()
        return sigma

    def _chien_search(self, sigma: List[int]) -> List[int]:
        """Error positions in the *parent* code, via root search.

        ``sigma(alpha^{-i}) = 0`` marks an error at position ``i``.
        """
        field = self._field
        positions = []
        for i in range(self._full_n):
            point = field.alpha_pow(-i)
            acc = 0
            for degree, coeff in enumerate(sigma):
                if coeff:
                    acc ^= field.mul(coeff, field.pow(point, degree))
            if acc == 0:
                positions.append(i)
        return positions

    def decode(self, received: np.ndarray) -> np.ndarray:
        """Decode an ``(n,)`` word; raises past ``t`` errors."""
        received = as_bits(received, self.n)
        # Re-extend the shortened word with the implicit zero bits.
        full = np.zeros(self._full_n, dtype=np.uint8)
        full[:self.n] = received

        syndromes = self._syndromes(full)
        if not any(syndromes):
            return received.copy()

        sigma = self._berlekamp_massey(syndromes)
        n_errors = len(sigma) - 1
        if n_errors > self._t:
            raise DecodingFailure(
                f"error locator degree {n_errors} exceeds t={self._t}")
        positions = self._chien_search(sigma)
        if len(positions) != n_errors:
            raise DecodingFailure(
                "error locator does not split over the field")
        for position in positions:
            if position >= self.n:
                # An "error" inside the shortened (known-zero) bits can
                # only arise from > t real errors.
                raise DecodingFailure(
                    "correction lands in shortened positions")
            full[position] ^= 1
        if any(self._syndromes(full)):
            raise DecodingFailure("correction did not yield a codeword")
        return full[:self.n]

    def __repr__(self) -> str:
        return (f"BCHCode(m={self._m}, t={self._t}, n={self.n}, "
                f"k={self.k}, shorten={self._shorten})")


def design_bch(data_bits: int, t: int,
               max_m: int = 12) -> BCHCode:
    """Smallest shortened BCH code carrying *data_bits* message bits.

    Scans extension degrees upward and returns the first code whose
    message length covers *data_bits*, shortened so that ``k`` equals
    *data_bits* exactly.  This mirrors how a PUF designer provisions the
    reliability layer for a given response length.
    """
    if data_bits < 1:
        raise ValueError("data_bits must be positive")
    for m in range(3, max_m + 1):
        try:
            code = BCHCode(m, t)
        except ValueError:
            continue
        if code.k >= data_bits:
            return BCHCode(m, t, shorten=code.k - data_bits)
    raise ValueError(
        f"no BCH code with k >= {data_bits} and t={t} for m <= {max_m}")
