"""Secure sketches: the helper-data layer above a block code.

A secure sketch turns a noisy PUF response ``w`` into public helper data
that allows later exact recovery of ``w`` from any close-enough reading
``w'``.  Two standard constructions (Dodis et al., the paper's reference
[2]) are provided:

* :class:`CodeOffsetSketch` — helper ``h = w XOR C(s)`` for a random
  seed ``s``; recovery decodes ``w' XOR h``.
* :class:`SyndromeSketch` — helper is the BCH syndrome vector of ``w``;
  recovery decodes the syndrome *difference*, which depends only on the
  error pattern.  Smaller helper data, BCH-specific.

Both expose the same ``generate`` / ``recover`` interface and both raise
:class:`~repro.ecc.base.DecodingFailure` when the error pattern exceeds
the code's correction radius — the externally observable failure event of
paper Fig. 5.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro._dedup import iter_unique_rows
from repro._rng import RNGLike, ensure_rng
from repro.ecc.base import (
    BlockCode,
    DecodingFailure,
    as_bit_matrix,
    as_bits,
)
from repro.ecc.bch import BCHCode
from repro.ecc.kernel import KernelWorkload


@dataclass(frozen=True)
class SketchData:
    """Public helper data produced by a secure sketch.

    ``payload`` is an opaque bit vector (its meaning depends on the
    sketch construction).  Helper data is *public and writable* — the
    whole premise of the paper — so attacks freely construct modified
    instances.
    """

    payload: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "payload",
                           as_bits(self.payload).copy())

    def with_payload(self, payload: np.ndarray) -> "SketchData":
        """A new helper-data object with a replaced payload."""
        return SketchData(payload)


@dataclass(frozen=True)
class DecodeKernel:
    """Picklable stateless wrapper around a code's ``decode_batch``.

    The kernel half of :meth:`CodeOffsetSketch.plan_recover`: workloads
    built over structurally identical codes carry equal keys and are
    interchangeable, so the fused executor may answer them all through
    any one member's kernel.
    """

    code: BlockCode

    def __call__(self, words: np.ndarray
                 ) -> Tuple[np.ndarray, np.ndarray]:
        """Decode a stacked ``(R, n)`` word matrix."""
        return self.code.decode_batch(words)


@dataclass(frozen=True)
class SolveSyndromesKernel:
    """Picklable wrapper around ``BCHCode.solve_syndromes_batch``.

    The kernel half of :meth:`SyndromeSketch.plan_recover`; the
    position bound travels with the kernel (and in the workload key)
    because it is part of the computation's identity.
    """

    code: BCHCode
    max_position: int

    def __call__(self, syndromes: np.ndarray
                 ) -> Tuple[np.ndarray, np.ndarray]:
        """Locate error patterns for a stacked ``(R, 2t)`` batch."""
        return self.code.solve_syndromes_batch(
            syndromes, max_position=self.max_position)


class SecureSketch(abc.ABC):
    """Interface of a secure sketch over ``response_length`` bits."""

    @property
    @abc.abstractmethod
    def response_length(self) -> int:
        """Length of the response vector the sketch protects."""

    @property
    @abc.abstractmethod
    def helper_length(self) -> int:
        """Length of the public helper payload in bits."""

    @abc.abstractmethod
    def generate(self, response: np.ndarray,
                 rng: RNGLike = None) -> SketchData:
        """Enrollment: derive helper data from the reference response."""

    @abc.abstractmethod
    def recover(self, noisy_response: np.ndarray,
                helper: SketchData) -> np.ndarray:
        """Reconstruction: recover the reference response, or raise
        :class:`DecodingFailure`."""

    def recover_batch(self, noisy_responses: np.ndarray,
                      helper: SketchData
                      ) -> "tuple[np.ndarray, np.ndarray]":
        """Recover a batch of noisy readings; failures become data.

        Returns ``(recovered, ok)`` where failed rows are all-zero with
        ``ok = False``.  Implementations must match :meth:`recover` row
        for row (the batch contract of ``docs/ecc.md``).  Both shipped
        constructions override this with a path into the vectorized
        decode engine; the base implementation is the fallback for
        external sketches — it deduplicates distinct readings and
        recovers each once through the scalar path.
        """
        batch = as_bit_matrix(noisy_responses, self.response_length)
        recovered = np.zeros_like(batch)
        ok = np.zeros(batch.shape[0], dtype=bool)
        for response, rows in iter_unique_rows(batch):
            try:
                recovered[rows] = self.recover(response, helper)
            except DecodingFailure:
                continue
            ok[rows] = True
        return recovered, ok

    # -- two-phase recovery (plan → fused kernel → finish) -------------

    def kernel_key(self) -> "tuple | None":
        """Structural identity of this sketch's recovery kernel.

        Recovery workloads of sketches with equal (non-``None``) keys
        may be fused into one kernel call across devices (see
        :mod:`repro.ecc.kernel` and ``docs/evaluators.md``).  The base
        implementation returns ``None``: external sketches run
        un-fused through :meth:`recover_batch`.
        """
        return None

    def plan_recover(self, noisy_responses: np.ndarray,
                     helper: SketchData
                     ) -> "tuple[Optional[KernelWorkload], object]":
        """Phase 1 of a recovery: declare kernel work, keep the rest.

        Returns ``(workload, state)``.  The workload (or ``None`` when
        no kernel work is needed) is handed to
        :func:`repro.ecc.kernel.run_kernels` — possibly stacked with
        same-key workloads of other devices — and the opaque *state*
        plus the kernel outputs reproduce the full result through
        :meth:`finish_recover`.  The contract:
        ``finish_recover(state, outputs)`` must be bitwise-identical
        to ``recover_batch(noisy_responses, helper)``.  The base
        implementation declares no kernel and completes everything in
        the finish phase.
        """
        batch = as_bit_matrix(noisy_responses, self.response_length)
        return None, (batch, helper)

    def finish_recover(self, state: object,
                       outputs: "Optional[tuple]"
                       ) -> "tuple[np.ndarray, np.ndarray]":
        """Phase 3 of a recovery: combine kernel outputs with *state*.

        See :meth:`plan_recover`; returns ``(recovered, ok)`` exactly
        like :meth:`recover_batch`.
        """
        batch, helper = state
        return self.recover_batch(batch, helper)


class CodeOffsetSketch(SecureSketch):
    """Code-offset construction over any :class:`BlockCode`.

    The response is padded with implicit zeros up to the code length, so
    any response length up to ``code.n`` is supported; padding bits are
    noiseless and never consume correction capability.
    """

    def __init__(self, code: BlockCode, response_length: int = None):
        if response_length is None:
            response_length = code.n
        if not 1 <= response_length <= code.n:
            raise ValueError(
                f"response length must be in [1, {code.n}]")
        self._code = code
        self._length = response_length

    @property
    def code(self) -> BlockCode:
        """The underlying block code."""
        return self._code

    @property
    def response_length(self) -> int:
        """Length of the protected response in bits."""
        return self._length

    @property
    def helper_length(self) -> int:
        """Helper payload length: the full code length ``n``."""
        return self._code.n

    def _pad(self, response: np.ndarray) -> np.ndarray:
        response = as_bits(response, self._length)
        padded = np.zeros(self._code.n, dtype=np.uint8)
        padded[:self._length] = response
        return padded

    def generate(self, response: np.ndarray,
                 rng: RNGLike = None) -> SketchData:
        """Helper ``pad(w) XOR C(s)`` for a random seed ``s``."""
        gen = ensure_rng(rng)
        seed = gen.integers(0, 2, size=self._code.k).astype(np.uint8)
        codeword = self._code.encode(seed)
        return SketchData(self._pad(response) ^ codeword)

    def recover(self, noisy_response: np.ndarray,
                helper: SketchData) -> np.ndarray:
        """Decode ``pad(w') XOR h`` back to the response."""
        payload = as_bits(helper.payload, self._code.n)
        shifted = self._pad(noisy_response) ^ payload
        codeword = self._code.decode(shifted)
        recovered = payload ^ codeword
        return recovered[:self._length]

    def recover_batch(self, noisy_responses: np.ndarray,
                      helper: SketchData
                      ) -> "tuple[np.ndarray, np.ndarray]":
        """Recover a ``(B, response_length)`` batch of noisy readings.

        Returns ``(recovered, ok)``; rows failing to decode are all-zero
        with ``ok = False``.  Successful rows match :meth:`recover`
        bit-for-bit: the shifted words go through the code's vectorized
        ``decode_batch`` (for BCH, the batched Berlekamp–Massey + Chien
        engine), which carries the same equivalence guarantee.
        """
        batch = as_bit_matrix(noisy_responses, self._length)
        payload = as_bits(helper.payload, self._code.n)
        padded = np.zeros((batch.shape[0], self._code.n), dtype=np.uint8)
        padded[:, :self._length] = batch
        shifted = padded ^ payload[None, :]
        codewords, ok = self._code.decode_batch(shifted)
        recovered = (payload[None, :] ^ codewords)[:, :self._length]
        recovered[~ok] = 0
        return recovered, ok

    def kernel_key(self) -> "tuple | None":
        """Recovery-kernel identity: the underlying decode kernel.

        The payload XOR happens in the plan/finish phases, so two
        code-offset sketches fuse whenever their *codes* are
        structurally identical — even across different response
        lengths (padding is per-device plan work).
        """
        code_key = self._code.kernel_key()
        if code_key is None:
            return None
        return ("code-offset", code_key)

    def plan_recover(self, noisy_responses: np.ndarray,
                     helper: SketchData
                     ) -> "tuple[Optional[KernelWorkload], object]":
        """Declare the decode workload; keep the payload as state.

        The kernel input is the payload-shifted word matrix; the
        payload itself rides in the state so :meth:`finish_recover`
        can XOR the decoded codewords back and truncate, matching
        :meth:`recover_batch` bit for bit.
        """
        batch = as_bit_matrix(noisy_responses, self._length)
        payload = as_bits(helper.payload, self._code.n)
        padded = np.zeros((batch.shape[0], self._code.n),
                          dtype=np.uint8)
        padded[:, :self._length] = batch
        shifted = padded ^ payload[None, :]
        workload = KernelWorkload(self.kernel_key(), shifted,
                                  DecodeKernel(self._code))
        return workload, payload

    def finish_recover(self, state: object,
                       outputs: "Optional[tuple]"
                       ) -> "tuple[np.ndarray, np.ndarray]":
        """Unwind the payload shift from the fused decode outputs."""
        payload = state
        if outputs is None:
            return (np.zeros((0, self._length), dtype=np.uint8),
                    np.zeros(0, dtype=bool))
        codewords, ok = outputs
        recovered = (payload[None, :] ^ codewords)[:, :self._length]
        recovered[~ok] = 0
        return recovered, ok

    def helper_for_response(self, response: np.ndarray,
                            seed: np.ndarray) -> SketchData:
        """Helper data binding *response* through an explicit *seed*.

        This is the attacker's tool for key *reprogramming* (paper
        §VI-C): anyone who knows (or hypothesises) the full response can
        compute a perfectly consistent helper payload for it.
        """
        codeword = self._code.encode(as_bits(seed, self._code.k))
        return SketchData(self._pad(response) ^ codeword)


class SyndromeSketch(SecureSketch):
    """Syndrome construction specialised to BCH codes.

    The helper stores the ``2t`` GF(2^m) syndromes of the (zero-padded)
    response, serialised to bits.  On recovery, the syndromes of the new
    reading are XOR-subtracted — in characteristic 2 the difference is
    exactly the syndrome vector of the error pattern — and the standard
    Berlekamp–Massey / Chien machinery locates the errors.
    """

    def __init__(self, code: BCHCode, response_length: int = None):
        if not isinstance(code, BCHCode):
            raise TypeError("SyndromeSketch requires a BCHCode")
        if response_length is None:
            response_length = code.n
        if not 1 <= response_length <= code.n:
            raise ValueError(
                f"response length must be in [1, {code.n}]")
        self._code = code
        self._length = response_length

    @property
    def code(self) -> BCHCode:
        """The underlying BCH code."""
        return self._code

    @property
    def response_length(self) -> int:
        """Length of the protected response in bits."""
        return self._length

    @property
    def helper_length(self) -> int:
        """Helper payload length: ``2 t m`` syndrome bits."""
        return 2 * self._code.t * self._code.m

    # -- serialisation ---------------------------------------------------

    def _syndromes(self, response: np.ndarray) -> List[int]:
        padded = np.zeros(self._code.n, dtype=np.uint8)
        padded[:self._length] = as_bits(response, self._length)
        full = np.zeros(self._code._full_n, dtype=np.uint8)
        full[:self._code.n] = padded
        return self._code._syndromes(full)

    def _serialise(self, syndromes: List[int]) -> np.ndarray:
        m = self._code.m
        bits = np.zeros(self.helper_length, dtype=np.uint8)
        for idx, value in enumerate(syndromes):
            for bit in range(m):
                bits[idx * m + bit] = (value >> bit) & 1
        return bits

    def _deserialise(self, bits: np.ndarray) -> List[int]:
        bits = as_bits(bits, self.helper_length)
        m = self._code.m
        values = []
        for idx in range(2 * self._code.t):
            value = 0
            for bit in range(m):
                value |= int(bits[idx * m + bit]) << bit
            values.append(value)
        return values

    # -- sketch interface --------------------------------------------------

    def generate(self, response: np.ndarray,
                 rng: RNGLike = None) -> SketchData:
        # The construction is deterministic; *rng* accepted for interface
        # uniformity.
        """Helper data: the serialised response syndromes."""
        return SketchData(self._serialise(self._syndromes(response)))

    def recover_batch(self, noisy_responses: np.ndarray,
                      helper: SketchData
                      ) -> "tuple[np.ndarray, np.ndarray]":
        """Vectorized syndrome-difference recovery of a whole batch.

        The reference syndromes are XOR-subtracted from one
        ``syndromes_batch`` pass over the readings; the distinct
        non-zero differences then go through the code's
        ``solve_syndromes_batch`` kernel with ``max_position`` bound to
        the response length — the same constraint the scalar
        :meth:`recover` enforces ("correction lands outside the
        response bits").  Returns ``(recovered, ok)`` with failed rows
        all-zero; successful rows match :meth:`recover` bit-for-bit.
        """
        batch = as_bit_matrix(noisy_responses, self._length)
        reference = np.array(self._deserialise(helper.payload),
                             dtype=np.int64)
        padded = np.zeros((batch.shape[0], self._code.n),
                          dtype=np.uint8)
        padded[:, :self._length] = batch
        difference = self._code.syndromes_batch(padded) \
            ^ reference[None, :]
        clean = ~difference.any(axis=1)
        recovered = np.zeros_like(batch)
        recovered[clean] = batch[clean]
        ok = clean.copy()
        dirty = np.flatnonzero(~clean)
        if dirty.size:
            errors, solved = self._code.solve_syndromes_batch(
                difference[dirty], max_position=self._length)
            good = dirty[solved]
            recovered[good] = batch[good] \
                ^ errors[solved][:, :self._length]
            ok[good] = True
        return recovered, ok

    def kernel_key(self) -> "tuple | None":
        """Recovery-kernel identity: solve kernel plus position bound.

        The response length is part of the key because it bounds where
        a correction may land (``max_position``); two syndrome
        sketches fuse only when both the BCH geometry and that bound
        agree.  A code without a kernel identity opts the sketch out
        of fusion entirely.
        """
        code_key = self._code.kernel_key()
        if code_key is None:
            return None
        return ("syndrome", code_key, self._length)

    def plan_recover(self, noisy_responses: np.ndarray,
                     helper: SketchData
                     ) -> "tuple[Optional[KernelWorkload], object]":
        """Declare the syndrome-solve workload for the dirty rows.

        The syndrome differences are computed per device (they depend
        on this helper's reference syndromes); only rows with a
        non-zero difference contribute kernel work, exactly as in
        :meth:`recover_batch`.  Clean rows resolve in the finish
        phase without touching the kernel.
        """
        batch = as_bit_matrix(noisy_responses, self._length)
        reference = np.array(self._deserialise(helper.payload),
                             dtype=np.int64)
        padded = np.zeros((batch.shape[0], self._code.n),
                          dtype=np.uint8)
        padded[:, :self._length] = batch
        difference = self._code.syndromes_batch(padded) \
            ^ reference[None, :]
        clean = ~difference.any(axis=1)
        dirty = np.flatnonzero(~clean)
        state = (batch, clean, dirty)
        if dirty.size == 0:
            return None, state
        workload = KernelWorkload(
            self.kernel_key(), difference[dirty],
            SolveSyndromesKernel(self._code, self._length))
        return workload, state

    def finish_recover(self, state: object,
                       outputs: "Optional[tuple]"
                       ) -> "tuple[np.ndarray, np.ndarray]":
        """Scatter solved error patterns back over the dirty rows."""
        batch, clean, dirty = state
        recovered = np.zeros_like(batch)
        recovered[clean] = batch[clean]
        ok = clean.copy()
        if dirty.size:
            errors, solved = outputs
            good = dirty[solved]
            recovered[good] = batch[good] \
                ^ errors[solved][:, :self._length]
            ok[good] = True
        return recovered, ok

    def recover(self, noisy_response: np.ndarray,
                helper: SketchData) -> np.ndarray:
        """Decode the syndrome difference to recover the response."""
        reference = self._deserialise(helper.payload)
        observed = self._syndromes(noisy_response)
        difference = [a ^ b for a, b in zip(observed, reference)]
        padded = np.zeros(self._code.n, dtype=np.uint8)
        padded[:self._length] = as_bits(noisy_response, self._length)

        if any(difference):
            sigma = self._code._berlekamp_massey(difference)
            n_errors = len(sigma) - 1
            if n_errors > self._code.t:
                raise DecodingFailure(
                    f"error locator degree {n_errors} exceeds "
                    f"t={self._code.t}")
            positions = self._code._chien_search(sigma)
            if len(positions) != n_errors:
                raise DecodingFailure(
                    "error locator does not split over the field")
            for position in positions:
                if position >= self._length:
                    raise DecodingFailure(
                        "correction lands outside the response bits")
                padded[position] ^= 1
            if self._syndromes(padded[:self._length]) != reference:
                raise DecodingFailure(
                    "correction does not match the reference syndromes")
        return padded[:self._length]
