"""First-order Reed–Muller codes RM(1, m) with Hadamard decoding.

``RM(1, m)`` is the ``[2^m, m + 1, 2^{m-1}]`` code: codewords are the
affine Boolean functions on ``m`` variables.  It corrects up to
``2^{m-2} - 1`` errors and decodes with a fast Walsh–Hadamard transform
— maximum-likelihood, in ``O(n log n)`` — which made it a popular
reliability primitive in early PUF key generators (high correction at
very low rate, the opposite corner of the trade-off from BCH).
"""

from __future__ import annotations

import numpy as np

from repro.ecc.base import BlockCode, as_bit_matrix, as_bits


def _walsh_hadamard_batch(values: np.ndarray) -> np.ndarray:
    """Fast Walsh–Hadamard transform of every row of a ``(B, n)`` array.

    One butterfly stage per ``log2 n`` step, realised as a reshape into
    ``(B, blocks, 2, stride)`` and a vectorized add/subtract across the
    whole batch — the batched counterpart of the textbook in-place
    loop, applying identical arithmetic in identical order.
    """
    batch, size = values.shape
    transformed = values.astype(np.int64).copy()
    stride = 1
    while stride < size:
        shaped = transformed.reshape(batch, size // (2 * stride), 2,
                                     stride)
        upper = shaped[:, :, 0, :] + shaped[:, :, 1, :]
        lower = shaped[:, :, 0, :] - shaped[:, :, 1, :]
        transformed = np.stack((upper, lower), axis=2).reshape(batch,
                                                               size)
        stride *= 2
    return transformed


def _walsh_hadamard(values: np.ndarray) -> np.ndarray:
    """Fast Walsh–Hadamard transform of a single length-``n`` vector."""
    return _walsh_hadamard_batch(values[None, :])[0]


class ReedMullerCode(BlockCode):
    """The first-order Reed–Muller code RM(1, m)."""

    def __init__(self, m: int):
        if m < 2:
            raise ValueError("m must be at least 2")
        if m > 16:
            raise ValueError("m > 16 would allocate a 64Ki+ table")
        self._m = int(m)
        self._n = 1 << m
        # Column j of the generator evaluates (1, x_1..x_m) at point j.
        points = np.arange(self._n)
        rows = [np.ones(self._n, dtype=np.uint8)]
        for variable in range(m):
            rows.append(((points >> variable) & 1).astype(np.uint8))
        self._generator = np.stack(rows)

    @property
    def n(self) -> int:
        """Code length ``2^m`` in bits."""
        return self._n

    @property
    def k(self) -> int:
        """Number of data bits (``m + 1``, first order)."""
        return self._m + 1

    @property
    def t(self) -> int:
        """Unique-decoding radius ``2^{m-2} - 1``."""
        return (self._n // 4) - 1

    @property
    def m(self) -> int:
        """Number of Boolean variables of the code."""
        return self._m

    @property
    def bounded_distance(self) -> bool:
        """ML decoding: never fails, mis-corrects silently beyond t."""
        return False

    def encode(self, message: np.ndarray) -> np.ndarray:
        """Encode ``(k,)`` data bits into an ``(n,)`` codeword."""
        message = as_bits(message, self.k)
        return (message @ self._generator % 2).astype(np.uint8)

    def decode(self, received: np.ndarray) -> np.ndarray:
        """Maximum-likelihood decoding via the Hadamard transform.

        Maps bits to ±1, transforms, and picks the strongest affine
        correlation; the sign resolves the constant term.  Decoding
        never fails (the code is decoded to the nearest codeword), so —
        like the Hamming decoder — uncorrectable words mis-correct
        silently and are caught by the application key check.
        """
        received = as_bits(received, self._n)
        signs = 1 - 2 * received.astype(np.int64)  # 0 -> +1, 1 -> -1
        spectrum = _walsh_hadamard(signs)
        index = int(np.argmax(np.abs(spectrum)))
        constant = 0 if spectrum[index] >= 0 else 1
        message = np.zeros(self.k, dtype=np.uint8)
        message[0] = constant
        for variable in range(self._m):
            message[1 + variable] = (index >> variable) & 1
        return self.encode(message)

    def decode_batch(self, received: np.ndarray
                     ) -> "tuple[np.ndarray, np.ndarray]":
        """Vectorized ML decode of a ``(B, n)`` batch in one transform.

        One batched Walsh–Hadamard pass plus a per-row argmax replaces
        the scalar per-word loop; ties resolve to the lowest spectral
        index exactly as :meth:`decode`'s ``np.argmax`` does, so the
        batch is bitwise-identical to the scalar path row for row.  ML
        decoding never fails, so ``ok`` is all-True (beyond-``t`` words
        mis-correct silently, as in hardware).
        """
        words = as_bit_matrix(received, self._n)
        signs = 1 - 2 * words.astype(np.int64)
        spectrum = _walsh_hadamard_batch(signs)
        index = np.argmax(np.abs(spectrum), axis=1)
        picked = spectrum[np.arange(words.shape[0]), index]
        messages = np.zeros((words.shape[0], self.k), dtype=np.uint8)
        messages[:, 0] = picked < 0
        for variable in range(self._m):
            messages[:, 1 + variable] = (index >> variable) & 1
        codewords = (messages @ self._generator % 2).astype(np.uint8)
        return codewords, np.ones(words.shape[0], dtype=bool)

    def kernel_key(self) -> tuple:
        """Structural decode-kernel identity: the variable count."""
        return ("reed-muller", self._m)

    def extract(self, codeword: np.ndarray) -> np.ndarray:
        """Recover the message by re-decoding (non-systematic code)."""
        codeword = as_bits(codeword, self._n)
        signs = 1 - 2 * codeword.astype(np.int64)
        spectrum = _walsh_hadamard(signs)
        index = int(np.argmax(np.abs(spectrum)))
        message = np.zeros(self.k, dtype=np.uint8)
        message[0] = 0 if spectrum[index] >= 0 else 1
        for variable in range(self._m):
            message[1 + variable] = (index >> variable) & 1
        return message
