"""The fuzzy extractor reference solution (paper §VII-A, Fig. 7).

Sequential composition of a secure sketch (reliability) and a universal
hash (entropy): the well-established construction of Dodis et al. [2]
the paper holds up as the baseline every new helper-data scheme should
be compared against.  The sketch's bounded entropy loss is compensated
by hashing down to ``out_bits``; the hash seed is public helper data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro._rng import RNGLike, ensure_rng
from repro.ecc.base import as_bits
from repro.ecc.sketch import SecureSketch, SketchData
from repro.fuzzy.toeplitz import ToeplitzHash


@dataclass(frozen=True)
class FuzzyExtractorHelper:
    """Public helper data: sketch payload plus extractor seed."""

    sketch: SketchData
    hash_seed: np.ndarray
    out_bits: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "hash_seed",
                           as_bits(self.hash_seed).copy())

    def with_sketch(self, sketch: SketchData) -> "FuzzyExtractorHelper":
        """Manipulated copy with a replaced sketch payload."""
        return FuzzyExtractorHelper(sketch, self.hash_seed, self.out_bits)


class FuzzyExtractor:
    """``Gen`` / ``Rep`` over a configurable secure sketch."""

    def __init__(self, sketch: SecureSketch, out_bits: int):
        if out_bits < 1:
            raise ValueError("out_bits must be positive")
        if out_bits > sketch.response_length:
            raise ValueError(
                "cannot extract more bits than the response carries")
        self._sketch = sketch
        self._out_bits = int(out_bits)

    @property
    def sketch(self) -> SecureSketch:
        """The secure sketch recovering the raw response."""
        return self._sketch

    @property
    def out_bits(self) -> int:
        """Extracted key length in bits."""
        return self._out_bits

    def generate(self, response: np.ndarray, rng: RNGLike = None
                 ) -> Tuple[np.ndarray, FuzzyExtractorHelper]:
        """Enrollment: derive ``(key, helper)`` from the reference response."""
        gen = ensure_rng(rng)
        response = as_bits(response, self._sketch.response_length)
        sketch_data = self._sketch.generate(response, gen)
        hasher = ToeplitzHash.random(self._sketch.response_length,
                                     self._out_bits, gen)
        helper = FuzzyExtractorHelper(sketch_data, hasher.seed_bits,
                                      self._out_bits)
        return hasher(response), helper

    def reproduce(self, noisy_response: np.ndarray,
                  helper: FuzzyExtractorHelper) -> np.ndarray:
        """Reconstruction: recover the key from a noisy re-reading.

        Raises :class:`repro.ecc.DecodingFailure` when the noise exceeds
        the sketch's correction radius.
        """
        recovered = self._sketch.recover(noisy_response, helper.sketch)
        hasher = ToeplitzHash(helper.hash_seed,
                              self._sketch.response_length,
                              helper.out_bits)
        return hasher(recovered)

    def reproduce_batch(self, noisy_responses: np.ndarray,
                        helper: FuzzyExtractorHelper
                        ) -> "tuple[np.ndarray, np.ndarray]":
        """Reproduce a ``(B, response_length)`` batch of noisy readings.

        Returns ``(keys, ok)``: an ``(B, out_bits)`` key matrix and a
        success mask.  Rows beyond the sketch's correction radius are
        all-zero with ``ok = False``; successful rows match
        :meth:`reproduce` bit-for-bit.  Both stages are vectorized:
        sketch recovery through the batched decode engine, then one
        GF(2) matmul hashing every recovered response (failed rows are
        all-zero, and the linear hash maps zero to zero, so the
        failure convention survives the hash for free).
        """
        batch = np.asarray(noisy_responses, dtype=np.uint8)
        recovered, ok = self._sketch.recover_batch(batch, helper.sketch)
        hasher = ToeplitzHash(helper.hash_seed,
                              self._sketch.response_length,
                              helper.out_bits)
        return hasher.hash_batch(recovered), ok
