"""Toeplitz universal hashing over GF(2).

The strong-extractor half of a fuzzy extractor (paper §VII-A): a family
of 2-universal hash functions indexed by a public random seed.  A
Toeplitz matrix ``T`` of shape ``(out_bits, in_bits)`` is described by
its first column and first row — ``out_bits + in_bits - 1`` seed bits —
and the hash is ``T @ w mod 2``.  By the leftover-hash lemma the output
is near-uniform given sufficient input min-entropy, which is what
compensates the sketch's entropy leakage and the PUF's initial
non-uniformity.
"""

from __future__ import annotations

import numpy as np

from repro._rng import RNGLike, ensure_rng
from repro.ecc.base import as_bit_matrix, as_bits


class ToeplitzHash:
    """A GF(2) Toeplitz hash ``{0,1}^in_bits -> {0,1}^out_bits``."""

    def __init__(self, seed_bits: np.ndarray, in_bits: int,
                 out_bits: int):
        if in_bits < 1 or out_bits < 1:
            raise ValueError("dimensions must be positive")
        expected = in_bits + out_bits - 1
        self._seed = as_bits(seed_bits, expected).copy()
        self._in = int(in_bits)
        self._out = int(out_bits)
        # diag(i, j) = seed[out_bits - 1 + j - i]: constant along
        # diagonals, first column = seed[out-1 .. 0] reversed, first row
        # = seed[out-1 ..].
        rows = np.arange(self._out)[:, None]
        cols = np.arange(self._in)[None, :]
        self._matrix = self._seed[self._out - 1 + cols - rows]

    @classmethod
    def random(cls, in_bits: int, out_bits: int,
               rng: RNGLike = None) -> "ToeplitzHash":
        """Draw a hash from the family with a fresh public seed."""
        gen = ensure_rng(rng)
        seed = gen.integers(0, 2, size=in_bits + out_bits - 1)
        return cls(seed.astype(np.uint8), in_bits, out_bits)

    @property
    def seed_bits(self) -> np.ndarray:
        """The public seed (part of the helper data)."""
        return self._seed

    @property
    def in_bits(self) -> int:
        """Input length in bits."""
        return self._in

    @property
    def out_bits(self) -> int:
        """Hashed output length in bits."""
        return self._out

    @property
    def matrix(self) -> np.ndarray:
        """The full Toeplitz matrix (for tests and analysis)."""
        return self._matrix

    def __call__(self, word: np.ndarray) -> np.ndarray:
        """Hash an ``in_bits``-long word to ``out_bits`` bits."""
        word = as_bits(word, self._in)
        return ((self._matrix @ word) % 2).astype(np.uint8)

    def hash_batch(self, words: np.ndarray) -> np.ndarray:
        """Hash a ``(B, in_bits)`` matrix of words in one GF(2) matmul.

        Row ``i`` equals ``self(words[i])`` bit-for-bit (integer
        matrix multiplication is exact); this is how the batched
        fuzzy-extractor path hashes every recovered response without a
        per-row Python loop.
        """
        words = as_bit_matrix(words, self._in)
        return ((words.astype(np.int64) @ self._matrix.T) % 2) \
            .astype(np.uint8)
