"""Robust fuzzy extractor: helper-data manipulation detection.

Paper §VII-B cites Boyen et al. [1] for *"an extension of the
architecture to counter manipulation attacks"*.  The idea: bind the
helper data to the (secret) PUF response with an authentication tag, so
that any rewrite of the public helper is detected before a key is ever
released.  An attacker cannot forge the tag for modified helper data
because computing it requires the response itself.

This implementation follows the standard hash-based instantiation: the
tag is a truncated SHA-256 over the reference response and every public
helper field.  ``reproduce`` first recovers the response through the
sketch, then recomputes the tag over the *received* helper fields and
compares; a mismatch raises :class:`ManipulationDetected` and no key
material leaves the device.

Security consequence demonstrated in the tests and benches: the §VI
attack pattern — rewrite helper data, learn from the failure behaviour —
still only observes value-independent failures (as with the plain fuzzy
extractor), and additionally the *reprogramming* avenue of §VI-C is
closed: an attacker cannot install helper data the device will accept
without knowing the response.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Tuple

import numpy as np

from repro._dedup import iter_unique_rows
from repro._rng import RNGLike, ensure_rng
from repro.ecc.base import as_bits
from repro.ecc.sketch import SecureSketch, SketchData
from repro.fuzzy.toeplitz import ToeplitzHash


class ManipulationDetected(Exception):
    """The helper-data authentication tag did not verify."""


@dataclass(frozen=True)
class RobustHelper:
    """Public helper data: sketch payload, hash seed, and the tag."""

    sketch: SketchData
    hash_seed: np.ndarray
    out_bits: int
    tag: bytes

    def __post_init__(self) -> None:
        object.__setattr__(self, "hash_seed",
                           as_bits(self.hash_seed).copy())

    def with_sketch(self, sketch: SketchData) -> "RobustHelper":
        """Manipulated copy with a replaced sketch payload."""
        return replace(self, sketch=sketch)

    def with_tag(self, tag: bytes) -> "RobustHelper":
        """Manipulated copy with a replaced (forged) tag."""
        return replace(self, tag=tag)


def _authentication_tag(response: np.ndarray, payload: np.ndarray,
                        hash_seed: np.ndarray, out_bits: int) -> bytes:
    """Tag binding the secret response to every public helper field."""
    hasher = hashlib.sha256()
    hasher.update(b"repro-robust-fe-v1")
    for part in (response, payload, hash_seed):
        bits = as_bits(part)
        hasher.update(len(bits).to_bytes(4, "big"))
        hasher.update(np.packbits(bits).tobytes())
    hasher.update(int(out_bits).to_bytes(4, "big"))
    return hasher.digest()[:16]


class RobustFuzzyExtractor:
    """``Gen`` / ``Rep`` with helper-data authentication."""

    def __init__(self, sketch: SecureSketch, out_bits: int):
        if out_bits < 1:
            raise ValueError("out_bits must be positive")
        if out_bits > sketch.response_length:
            raise ValueError(
                "cannot extract more bits than the response carries")
        self._sketch = sketch
        self._out_bits = int(out_bits)

    @property
    def sketch(self) -> SecureSketch:
        """The secure sketch recovering the raw response."""
        return self._sketch

    @property
    def out_bits(self) -> int:
        """Extracted key length in bits."""
        return self._out_bits

    def generate(self, response: np.ndarray, rng: RNGLike = None
                 ) -> Tuple[np.ndarray, RobustHelper]:
        """Enrollment: derive ``(key, authenticated helper)``."""
        gen = ensure_rng(rng)
        response = as_bits(response, self._sketch.response_length)
        sketch_data = self._sketch.generate(response, gen)
        hasher = ToeplitzHash.random(self._sketch.response_length,
                                     self._out_bits, gen)
        tag = _authentication_tag(response, sketch_data.payload,
                                  hasher.seed_bits, self._out_bits)
        helper = RobustHelper(sketch_data, hasher.seed_bits,
                              self._out_bits, tag)
        return hasher(response), helper

    def reproduce(self, noisy_response: np.ndarray,
                  helper: RobustHelper) -> np.ndarray:
        """Reconstruction with mandatory helper authentication.

        Raises
        ------
        ManipulationDetected
            The tag over the *received* helper fields and the recovered
            response does not verify — the helper was rewritten (or the
            recovery was steered).  No key is released.
        repro.ecc.DecodingFailure
            The sketch could not recover any response at all.
        """
        recovered = self._sketch.recover(noisy_response, helper.sketch)
        expected = _authentication_tag(recovered, helper.sketch.payload,
                                       helper.hash_seed,
                                       helper.out_bits)
        if expected != helper.tag:
            raise ManipulationDetected(
                "helper-data authentication tag mismatch")
        hasher = ToeplitzHash(helper.hash_seed,
                              self._sketch.response_length,
                              helper.out_bits)
        return hasher(recovered)

    def reproduce_batch(self, noisy_responses: np.ndarray,
                        helper: RobustHelper
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """Reproduce a batch of noisy readings with tag verification.

        Returns ``(keys, ok)``; a row fails (all-zero key,
        ``ok = False``) when the sketch cannot recover it *or* when the
        authentication tag over the recovered response does not verify
        — the batch counterpart of :meth:`reproduce`'s
        ``DecodingFailure`` / :class:`ManipulationDetected` outcomes,
        collapsed into the mask.  Sketch recovery and hashing are
        vectorized; the SHA-256 tag is recomputed once per *distinct*
        recovered response (typically one: the reference).
        """
        batch = np.asarray(noisy_responses, dtype=np.uint8)
        recovered, ok = self._sketch.recover_batch(batch, helper.sketch)
        authentic = np.zeros(batch.shape[0], dtype=bool)
        for response, rows in iter_unique_rows(recovered,
                                               np.flatnonzero(ok)):
            tag = _authentication_tag(response, helper.sketch.payload,
                                      helper.hash_seed, helper.out_bits)
            authentic[rows] = tag == helper.tag
        hasher = ToeplitzHash(helper.hash_seed,
                              self._sketch.response_length,
                              helper.out_bits)
        keys = hasher.hash_batch(recovered)
        keys[~authentic] = 0
        return keys, authentic
