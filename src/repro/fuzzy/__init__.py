"""Fuzzy extractor — the reference helper-data solution (paper §VII-A)."""

from repro.fuzzy.extractor import FuzzyExtractor, FuzzyExtractorHelper
from repro.fuzzy.robust import (
    ManipulationDetected,
    RobustFuzzyExtractor,
    RobustHelper,
)
from repro.fuzzy.toeplitz import ToeplitzHash

__all__ = [
    "FuzzyExtractor",
    "FuzzyExtractorHelper",
    "ManipulationDetected",
    "RobustFuzzyExtractor",
    "RobustHelper",
    "ToeplitzHash",
]
