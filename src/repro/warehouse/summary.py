"""Per-PR ``BENCH_*.json`` summaries: the longitudinal perf record.

The warehouse store is the full-fidelity archive; the repo-root
``BENCH_<label>.json`` files are its compressed, *committed* shadow —
one history entry per PR/CI run, appended by ``repro warehouse run
--summary`` and consumed by ``tools/bench_compare.py --trajectory``.
Because the file lives in the repository, the trajectory survives CI
artifact expiry and is reviewable in every diff.

File layout::

    {
      "schema_version": 1,
      "label": "warehouse",
      "history": [
        {
          "sequence": 1,
          "commit": "...",
          "date": "2026-08-07",
          "config_hash": "...",
          "profile": "quick",
          "benchmarks": {"<cell>": {"mean": <attack s>,
                                     "kernel_seconds": ...,
                                     "kernel_calls": ...}},
          "security": {"<cell>": {"recovery_rate": ...,
                                   "queries_mean": ...,
                                   "outcome_fingerprint": "..."}}
        }, ...
      ]
    }

``benchmarks`` deliberately mirrors the shape pairwise
``bench_compare`` reads (name → mean seconds), so perf tooling treats
a warehouse cell like any other benchmark.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Sequence

#: Version of the summary-file layout.
SUMMARY_SCHEMA_VERSION = 1


class SummaryFormatError(ValueError):
    """A ``BENCH_*.json`` file violates the summary layout."""


def build_entry(records: Sequence[Dict[str, object]], commit: str,
                profile: str,
                sequence: Optional[int] = None) -> Dict[str, object]:
    """Condense one run's records into a history entry.

    Only ``ok`` cells contribute; *sequence* is normally left to
    :func:`append_entry`, which numbers entries monotonically.
    """
    benchmarks: Dict[str, object] = {}
    security: Dict[str, object] = {}
    config_hash = ""
    for record in records:
        if record.get("status") != "ok":
            continue
        cell = str(record["cell"])
        config_hash = str(record["config_hash"])
        perf = record["perf"]
        benchmarks[cell] = {
            "mean": float(perf["attack_seconds"]),
            "kernel_seconds": float(perf["kernel_seconds"]),
            "kernel_calls": int(perf["kernel_calls"]),
        }
        outcome = record["security"]
        security[cell] = {
            "recovery_rate": float(outcome["recovery_rate"]),
            "queries_mean": float(outcome["queries_mean"]),
            "outcome_fingerprint": str(
                outcome["outcome_fingerprint"]),
        }
    entry: Dict[str, object] = {
        "commit": str(commit),
        "date": datetime.now(timezone.utc).date().isoformat(),
        "config_hash": config_hash,
        "profile": str(profile),
        "benchmarks": benchmarks,
        "security": security,
    }
    if sequence is not None:
        entry["sequence"] = int(sequence)
    return entry


def load_summary(path) -> Dict[str, object]:
    """Parse a ``BENCH_*.json`` summary file (strict)."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise SummaryFormatError(
            f"{path}: not valid JSON ({error})") from None
    if not isinstance(payload, dict):
        raise SummaryFormatError(f"{path}: summary is not an object")
    history = payload.get("history")
    if not isinstance(history, list):
        raise SummaryFormatError(f"{path}: missing history list")
    for position, entry in enumerate(history):
        if not isinstance(entry, dict):
            raise SummaryFormatError(
                f"{path}: history[{position}] is not an object")
    return payload


def append_entry(path, entry: Dict[str, object],
                 label: Optional[str] = None) -> Dict[str, object]:
    """Append *entry* to a summary file, creating it if missing.

    Assigns the next monotonic ``sequence`` when the entry has none,
    then rewrites the file (the history array is the append-only
    structure; the file is its serialisation).  Returns the full file
    payload after the append.
    """
    path = Path(path)
    if path.exists():
        payload = load_summary(path)
    else:
        if label is None:
            label = path.stem
            if label.startswith("BENCH_"):
                label = label[len("BENCH_"):]
        payload = {"schema_version": SUMMARY_SCHEMA_VERSION,
                   "label": label, "history": []}
    history: List[Dict[str, object]] = payload["history"]
    if "sequence" not in entry:
        last = max((int(e.get("sequence", 0)) for e in history),
                   default=0)
        entry = dict(entry, sequence=last + 1)
    history.append(entry)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                    + "\n", encoding="utf-8")
    return payload
