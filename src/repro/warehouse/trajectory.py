"""Render longitudinal perf/security trajectories from summary files.

Consumes the repo-root ``BENCH_*.json`` histories (see
:mod:`repro.warehouse.summary`) and turns them into commit-over-commit
trajectories: one line per benchmark showing every recorded mean in
sequence order, plus drift detection on the newest step — a perf
drift when the latest mean moved by more than the threshold against
its predecessor, a security drift whenever a recovery rate, mean
query bill or outcome fingerprint changed at all (security outcomes
are deterministic, so *any* movement is signal, not noise).

Both ``repro warehouse trajectory`` and ``tools/bench_compare.py
--trajectory`` print the same report object, so the CLI and the CI
tripwire cannot disagree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.warehouse.summary import load_summary


@dataclass(frozen=True)
class Drift:
    """One flagged movement on the newest trajectory step."""

    label: str
    name: str
    kind: str
    old: str
    new: str
    change_pct: float

    def describe(self) -> str:
        """Human-readable one-liner for reports and annotations."""
        change = (f" ({self.change_pct:+.0f}%)"
                  if self.change_pct == self.change_pct else "")
        return (f"[{self.label}] {self.name} {self.kind}: "
                f"{self.old} -> {self.new}{change}")


@dataclass
class TrajectoryReport:
    """Rendered trajectory lines plus the drifts found on the tip."""

    lines: List[str] = field(default_factory=list)
    perf_drifts: List[Drift] = field(default_factory=list)
    security_drifts: List[Drift] = field(default_factory=list)
    entries: int = 0

    @property
    def drifts(self) -> List[Drift]:
        """All flagged movements, perf first."""
        return self.perf_drifts + self.security_drifts


def _ordered_history(payload: Dict[str, object]
                     ) -> List[Dict[str, object]]:
    history = list(payload["history"])
    history.sort(key=lambda entry: int(entry.get("sequence", 0)))
    return history


def _entry_tag(entry: Dict[str, object]) -> str:
    sequence = entry.get("sequence", "?")
    commit = str(entry.get("commit", ""))[:7] or "?"
    return f"#{sequence}@{commit}"


def _series(history: Sequence[Dict[str, object]], section: str,
            name: str, metric: str) -> List[Tuple[str, object]]:
    """(entry tag, value) pairs of one metric across the history."""
    points = []
    for entry in history:
        table = entry.get(section) or {}
        row = table.get(name)
        if isinstance(row, dict) and metric in row:
            points.append((_entry_tag(entry), row[metric]))
    return points


def _names(history: Sequence[Dict[str, object]],
           section: str) -> List[str]:
    """Union of row names across the history, first-seen order."""
    names: List[str] = []
    for entry in history:
        for name in (entry.get(section) or {}):
            if name not in names:
                names.append(name)
    return names


def build_report(paths: Sequence[object],
                 threshold: float = 0.20) -> TrajectoryReport:
    """Build the trajectory report over one or more summary files.

    Each element of *paths* is a summary file path or an
    already-built summary payload dict (same layout) — the latter
    lets callers fold synthetic histories, e.g. pairwise
    pytest-benchmark artifacts, into the longitudinal view without
    touching the committed ``BENCH_*.json`` files.

    *threshold* is the fractional perf movement (newest vs previous
    mean) that counts as drift; security metrics flag on any change.
    """
    report = TrajectoryReport()
    for path in paths:
        payload = path if isinstance(path, dict) \
            else load_summary(path)
        label = str(payload.get("label", path))
        history = _ordered_history(payload)
        report.entries += len(history)
        report.lines.append(
            f"{label}: {len(history)} entr"
            f"{'y' if len(history) == 1 else 'ies'} "
            f"({', '.join(_entry_tag(e) for e in history)})")
        for name in _names(history, "benchmarks"):
            points = _series(history, "benchmarks", name, "mean")
            rendered = " -> ".join(f"{float(v):.3f}s"
                                   for _, v in points)
            report.lines.append(f"  perf {name}: {rendered}")
            if len(points) >= 2:
                (_, old), (_, new) = points[-2], points[-1]
                old, new = float(old), float(new)
                if old > 0 and new / old > 1.0 + threshold:
                    report.perf_drifts.append(Drift(
                        label, name, "mean", f"{old:.3f}s",
                        f"{new:.3f}s", (new / old - 1.0) * 100.0))
        for name in _names(history, "security"):
            for metric in ("recovery_rate", "queries_mean",
                           "outcome_fingerprint"):
                points = _series(history, "security", name, metric)
                if metric == "recovery_rate" and points:
                    rendered = " -> ".join(f"{float(v):.2f}"
                                           for _, v in points)
                    report.lines.append(
                        f"  security {name} recovery: {rendered}")
                if len(points) < 2:
                    continue
                (_, old), (_, new) = points[-2], points[-1]
                if old == new:
                    continue
                if isinstance(old, (int, float)) \
                        and isinstance(new, (int, float)) and old:
                    change = (float(new) / float(old) - 1.0) * 100.0
                else:
                    change = float("nan")
                shown = ((f"{old:.3g}", f"{new:.3g}")
                         if isinstance(old, (int, float))
                         else (str(old)[:12], str(new)[:12]))
                report.security_drifts.append(Drift(
                    label, name, metric, shown[0], shown[1], change))
    return report
