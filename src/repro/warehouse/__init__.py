"""Attack × scheme × countermeasure results warehouse.

Runs the full matrix — all five keygen schemes × the
sequential/SPRT/ML/group/distiller/temp-aware attack families × the
``bench_countermeasures.py`` validation knobs — at fleet scale through
the lock-step/fused campaign engine, and persists one record per cell
into an append-only JSON-lines store keyed by ``(commit, config_hash,
schema_version)``.  Records carry security outcomes (key-recovery
mask, query bills, comparer-decision fingerprints) alongside
wall/kernel timings; identities are bitwise-reproducible from the
configuration seed, so any drift between commits is a behavioural
change of the code, not noise.

``repro warehouse run|verify|diff|trajectory`` is the CLI surface;
repo-root ``BENCH_*.json`` files hold the committed longitudinal
summary consumed by ``tools/bench_compare.py --trajectory``.  See
``docs/warehouse.md``.
"""

from repro.warehouse.diff import MatrixDiff, diff_matrices
from repro.warehouse.matrix import (
    ATTACKS,
    COUNTERMEASURES,
    SCHEMES,
    MatrixCell,
    full_matrix,
    quick_matrix,
    select_cells,
)
from repro.warehouse.runner import matrix_config, run_cell, run_matrix
from repro.warehouse.store import (
    SCHEMA_VERSION,
    StoreFormatError,
    WarehouseStore,
    canonical_json,
    config_hash,
    enrollment_fingerprint,
    fingerprint_bits,
    record_identity,
    record_key,
    sha256_hex,
)
from repro.warehouse.summary import (
    SUMMARY_SCHEMA_VERSION,
    SummaryFormatError,
    append_entry,
    build_entry,
    load_summary,
)
from repro.warehouse.trajectory import (
    Drift,
    TrajectoryReport,
    build_report,
)

__all__ = [
    "ATTACKS",
    "COUNTERMEASURES",
    "SCHEMES",
    "SCHEMA_VERSION",
    "SUMMARY_SCHEMA_VERSION",
    "Drift",
    "MatrixCell",
    "MatrixDiff",
    "StoreFormatError",
    "SummaryFormatError",
    "TrajectoryReport",
    "WarehouseStore",
    "append_entry",
    "build_entry",
    "build_report",
    "canonical_json",
    "config_hash",
    "diff_matrices",
    "enrollment_fingerprint",
    "fingerprint_bits",
    "full_matrix",
    "load_summary",
    "matrix_config",
    "quick_matrix",
    "record_identity",
    "record_key",
    "run_cell",
    "run_matrix",
    "select_cells",
    "sha256_hex",
]
