"""The attack × scheme × countermeasure matrix, as data.

The warehouse iterates the **full** cross product of the five keygen
schemes, the attack families and the countermeasure knobs quantified
by ``benchmarks/bench_countermeasures.py``.  Most combinations are
structurally inapplicable — a §VI-C group attack has nothing to parse
in sequential-pairing helper data, and the fuzzy-extractor
architecture removes the manipulation channel outright — and those
cells are still first-class: they appear in every run as ``n/a``
records with an explicit reason, so a matrix is complete by
construction and a diff can never silently lose coverage.

Runnable cells pin the paper geometry they reproduce (Fig. 6's 4×10
array for the group/distiller constructions, 8×16 for the pairing
families), and a ``quick`` flag marks the reduced matrix the CI smoke
job runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: The five keygen schemes (axis order is the matrix iteration order).
SCHEMES = ("sequential", "temp-aware", "group-based", "distiller",
           "fuzzy-extractor")

#: Attack families: the §VI-A paired/SPRT/ML distinguishers, the §VI-C
#: group attack, the §VI-D distiller attack, the §VI-B
#: temperature-aware attack, plus the reconstruction-timing baseline
#: of the §VII-C fuzzy-extractor comparison (not an attack on the
#: scheme — the cost axis the paper trades the attack surface for).
ATTACKS = ("sequential", "sprt", "ml", "group", "distiller",
           "temp-aware", "reconstruction")

#: Countermeasure knobs of ``bench_countermeasures.py``: device-side
#: validation off ("baseline") or on ("hardened").
COUNTERMEASURES = ("baseline", "hardened")

#: Reasons for structurally inapplicable cells.
_REASON_MISMATCH = ("attack targets a different helper-data "
                    "structure")
_REASON_FUZZY = ("the fuzzy-extractor architecture removes the "
                 "helper-data manipulation channel (paper §VII-C)")
_REASON_NO_HARDENING = ("no device-side validation variant exists "
                        "for this scheme")
_REASON_COVERED = ("covered by the sequential/sequential/hardened "
                   "cell; the distinguisher variant adds no new "
                   "validation surface")
_REASON_RECON_ONLY = ("the reconstruction-timing baseline quantifies "
                      "the fuzzy-extractor cost axis only (paper "
                      "§VII-C)")


@dataclass(frozen=True)
class MatrixCell:
    """One cell of the attack × scheme × countermeasure matrix.

    ``runnable`` cells carry the experiment geometry; inapplicable
    cells carry the ``reason`` they produce ``n/a`` records instead.
    ``variant`` disambiguates scheme sub-configurations (the two
    distiller pairing modes, the ML-decoded sequential code) and is
    part of the cell identifier.
    """

    scheme: str
    attack: str
    countermeasure: str
    variant: str = ""
    runnable: bool = False
    reason: str = ""
    quick: bool = False
    rows: int = 0
    cols: int = 0
    temp_slope_sigma: float = 0.0

    @property
    def cell_id(self) -> str:
        """Stable identifier: ``scheme[variant]/attack/cm``."""
        scheme = (f"{self.scheme}[{self.variant}]" if self.variant
                  else self.scheme)
        return f"{scheme}/{self.attack}/{self.countermeasure}"

    def seed_material(self, seed: int) -> List[int]:
        """Entropy for this cell's RNG root, stable across registry
        growth (derived from the cell identifier, not its position)."""
        digest = hashlib.sha256(self.cell_id.encode("ascii")).digest()
        return [int(seed), int.from_bytes(digest[:8], "little")]


def _runnable(scheme: str, attack: str, countermeasure: str,
              variant: str, quick: bool, rows: int, cols: int,
              temp_slope_sigma: float = 0.0) -> MatrixCell:
    return MatrixCell(scheme, attack, countermeasure, variant,
                      runnable=True, quick=quick, rows=rows,
                      cols=cols, temp_slope_sigma=temp_slope_sigma)


#: Runnable cells, keyed by (scheme, attack, countermeasure).  A value
#: is a tuple because one coordinate may expand into several variant
#: cells (the two distiller pairing modes).
_RUNNABLE: Dict[Tuple[str, str, str], Tuple[MatrixCell, ...]] = {
    ("sequential", "sequential", "baseline"): (
        _runnable("sequential", "sequential", "baseline", "", True,
                  8, 16),),
    # Pair disjointness is the only device-side check the scheme
    # admits and the swap channel survives it — the paper's point.
    # Running the cell documents the survival in the warehouse.
    ("sequential", "sequential", "hardened"): (
        _runnable("sequential", "sequential", "hardened", "", False,
                  8, 16),),
    ("sequential", "sprt", "baseline"): (
        _runnable("sequential", "sprt", "baseline", "", True, 8, 16),),
    ("sequential", "ml", "baseline"): (
        _runnable("sequential", "ml", "baseline", "rm5", False,
                  8, 16),),
    ("group-based", "group", "baseline"): (
        _runnable("group-based", "group", "baseline", "", True,
                  4, 10),),
    ("group-based", "group", "hardened"): (
        _runnable("group-based", "group", "hardened", "", True,
                  4, 10),),
    ("temp-aware", "temp-aware", "baseline"): (
        _runnable("temp-aware", "temp-aware", "baseline", "", True,
                  8, 16, temp_slope_sigma=8e3),),
    ("temp-aware", "temp-aware", "hardened"): (
        _runnable("temp-aware", "temp-aware", "hardened", "", False,
                  8, 16, temp_slope_sigma=8e3),),
    ("distiller", "distiller", "baseline"): (
        _runnable("distiller", "distiller", "baseline", "masking",
                  True, 4, 10),
        _runnable("distiller", "distiller", "baseline",
                  "neighbor-overlap", False, 4, 10),),
    # The §VII-C comparison point: the fuzzy extractor removes the
    # manipulation channel but pays in reconstruction cost.  These
    # cells time the reconstruction sweep at the paper's two
    # geometries so the warehouse carries the trade-off, not just
    # the n/a records.
    ("fuzzy-extractor", "reconstruction", "baseline"): (
        _runnable("fuzzy-extractor", "reconstruction", "baseline",
                  "4x10", False, 4, 10),
        _runnable("fuzzy-extractor", "reconstruction", "baseline",
                  "8x16", False, 8, 16),),
}


def _na_reason(scheme: str, attack: str, countermeasure: str) -> str:
    """Why a non-runnable coordinate is structurally inapplicable."""
    if attack == "reconstruction":
        if scheme == "fuzzy-extractor":
            return _REASON_NO_HARDENING
        return _REASON_RECON_ONLY
    if scheme == "fuzzy-extractor":
        return _REASON_FUZZY
    matched = {
        "sequential": ("sequential", "sprt", "ml"),
        "temp-aware": ("temp-aware",),
        "group-based": ("group",),
        "distiller": ("distiller",),
    }[scheme]
    if attack not in matched:
        return _REASON_MISMATCH
    if countermeasure == "hardened":
        if scheme in ("sequential",):
            return _REASON_COVERED
        return _REASON_NO_HARDENING
    raise AssertionError(  # pragma: no cover - registry invariant
        f"unclassified cell {scheme}/{attack}/{countermeasure}")


def full_matrix() -> List[MatrixCell]:
    """Every cell of the cross product, in canonical axis order."""
    cells: List[MatrixCell] = []
    for scheme in SCHEMES:
        for attack in ATTACKS:
            for countermeasure in COUNTERMEASURES:
                coordinate = (scheme, attack, countermeasure)
                if coordinate in _RUNNABLE:
                    cells.extend(_RUNNABLE[coordinate])
                else:
                    cells.append(MatrixCell(
                        scheme, attack, countermeasure,
                        reason=_na_reason(*coordinate)))
    return cells


def quick_matrix() -> List[MatrixCell]:
    """The reduced matrix of the CI smoke job.

    Keeps every inapplicable cell (they cost nothing and keep the
    matrix shape complete) but only the ``quick``-flagged runnable
    cells.
    """
    return [cell for cell in full_matrix()
            if not cell.runnable or cell.quick]


def select_cells(cells: List[MatrixCell],
                 pattern: Optional[str] = None) -> List[MatrixCell]:
    """Filter cells by an ``fnmatch`` pattern on the cell identifier.

    An exact identifier always selects its cell, even though variant
    ids contain ``[...]`` (which fnmatch would read as a character
    class).
    """
    if pattern is None:
        return list(cells)
    exact = [cell for cell in cells if cell.cell_id == pattern]
    if exact:
        return exact
    from fnmatch import fnmatchcase

    return [cell for cell in cells
            if fnmatchcase(cell.cell_id, pattern)]
