"""``repro warehouse`` subcommand handlers.

Wires the warehouse subsystem into the top-level CLI::

    repro warehouse run [--quick] [--store PATH] [--summary PATH]
                        [--resume] [--stop-after N] [--workers N]
                        [--max-retries N] [--chunk-timeout S]
    repro warehouse verify --store PATH [--matrix quick|full]
                           [--commit SHA] [--once]
    repro warehouse diff BASE CURRENT --store PATH
    repro warehouse trajectory [BENCH_*.json ...]

``run`` checkpoints: every cell record is appended to the store the
moment its cell finishes, so a killed run resumes with ``--resume``
(cells already recorded for this ``(commit, config_hash, schema)``
are skipped; the configuration hash covers the *full* matrix, so the
resumed records land under the same key).  ``--stop-after N`` is the
deterministic interruption used by tests and the CI chaos-smoke job.

``verify`` exit codes are disjoint so CI can assert on them: 0 ok,
1 identity mismatch between same-key records, 2 missing store or
unusable invocation, 3 store missing cells of the requested matrix,
4 duplicate records where ``--once`` demanded single-shot cells.

Kept separate from :mod:`repro.cli` so the argument surface and the
handlers live next to the subsystem they drive; the top-level parser
only delegates.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
from pathlib import Path
from typing import Dict, List, Optional

from repro.warehouse.diff import diff_matrices
from repro.warehouse.matrix import (
    full_matrix,
    quick_matrix,
    select_cells,
)
from repro.warehouse.runner import (
    matrix_config,
    run_matrix,
)
from repro.warehouse.store import (
    WarehouseStore,
    canonical_json,
    config_hash,
    record_identity,
)
from repro.warehouse.summary import append_entry, build_entry
from repro.warehouse.trajectory import build_report

#: Default store location, relative to the invocation directory.
DEFAULT_STORE = "warehouse/results.jsonl"


def detect_commit() -> str:
    """This run's commit: ``$GITHUB_SHA``, ``git rev-parse``, or
    ``"unknown"`` outside both."""
    commit = os.environ.get("GITHUB_SHA", "").strip()
    if commit:
        return commit
    try:
        probe = subprocess.run(["git", "rev-parse", "HEAD"],
                               capture_output=True, text=True,
                               check=True, timeout=10)
        return probe.stdout.strip() or "unknown"
    except Exception:
        return "unknown"


def add_warehouse_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``warehouse`` subcommand tree on *sub*."""
    warehouse = sub.add_parser(
        "warehouse",
        help="attack x scheme x countermeasure results warehouse")
    wsub = warehouse.add_subparsers(dest="warehouse_command",
                                    required=True)

    run = wsub.add_parser(
        "run", help="execute the matrix and append records")
    run.add_argument("--quick", action="store_true",
                     help="reduced matrix (CI smoke profile)")
    run.add_argument("--devices", type=int, default=None,
                     help="fleet size per runnable cell "
                          "(default: 2 quick / 4 full)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--store", default=DEFAULT_STORE,
                     help=f"JSONL store path (default "
                          f"{DEFAULT_STORE})")
    run.add_argument("--commit", default=None,
                     help="record key commit (default: $GITHUB_SHA "
                          "or git rev-parse HEAD)")
    run.add_argument("--summary", default=None, metavar="PATH",
                     help="append this run's entry to a repo-root "
                          "BENCH_*.json trajectory file")
    run.add_argument("--cells", default=None, metavar="PATTERN",
                     help="fnmatch filter on cell ids, e.g. "
                          "'group-based/*'")
    run.add_argument("--check-reproducible", action="store_true",
                     help="run the matrix twice and fail unless "
                          "record identities match bitwise")
    run.add_argument("--resume", action="store_true",
                     help="skip cells already recorded for this "
                          "(commit, config, schema) in the store")
    run.add_argument("--stop-after", type=int, default=None,
                     metavar="N",
                     help="checkpoint and stop after N executed "
                          "cells (exit 3; rerun with --resume)")
    run.add_argument("--workers", type=int, default=1,
                     help="process-pool width for the attack "
                          "campaigns (0/None = all CPUs)")
    run.add_argument("--max-retries", type=int, default=None,
                     metavar="N",
                     help="run campaigns supervised: retry failed "
                          "chunks up to N times")
    run.add_argument("--chunk-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="supervised watchdog timeout per campaign "
                          "chunk (implies supervision)")
    run.add_argument("--failure-report", default=None, metavar="PATH",
                     help="write the supervised failure-taxonomy "
                          "report (JSON) here")
    run.add_argument("--enrollment-registry", default=None,
                     metavar="DIR",
                     help="persist per-cell enrollments under DIR "
                          "and reuse them on later runs (identity "
                          "is bitwise-unchanged)")

    verify = wsub.add_parser(
        "verify", help="assert same-key records agree bitwise")
    verify.add_argument("--store", default=DEFAULT_STORE)
    verify.add_argument("--matrix", choices=("quick", "full"),
                        default=None,
                        help="also require every cell of this "
                             "matrix to be recorded (exit 3 when "
                             "cells are missing)")
    verify.add_argument("--cells", default=None, metavar="PATTERN",
                        help="fnmatch filter on the --matrix cells")
    verify.add_argument("--commit", default=None,
                        help="commit key for --matrix/--once "
                             "(default: $GITHUB_SHA or git "
                             "rev-parse HEAD)")
    verify.add_argument("--seed", type=int, default=0,
                        help="seed of the run to check "
                             "(--matrix key)")
    verify.add_argument("--devices", type=int, default=None,
                        help="fleet size of the run to check "
                             "(--matrix key; default 2 quick / "
                             "4 full)")
    verify.add_argument("--once", action="store_true",
                        help="fail (exit 4) when any --matrix cell "
                             "is recorded more than once — the "
                             "no-duplicates gate for resumed runs")

    diff = wsub.add_parser(
        "diff", help="compare two commits' matrices cell by cell")
    diff.add_argument("base", help="baseline commit (prefixes ok)")
    diff.add_argument("current", help="commit under test")
    diff.add_argument("--store", default=DEFAULT_STORE)
    diff.add_argument("--config", default=None,
                      help="restrict to one configuration hash")
    diff.add_argument("--threshold", type=float, default=0.20,
                      help="fractional timing movement to report "
                           "(default 0.20)")
    diff.add_argument("--fail-on-security-drift",
                      action="store_true",
                      help="exit non-zero when security outcomes "
                           "moved")

    trajectory = wsub.add_parser(
        "trajectory",
        help="render the longitudinal BENCH_*.json history")
    trajectory.add_argument("files", nargs="*",
                            help="summary files (default: "
                                 "./BENCH_*.json)")
    trajectory.add_argument("--threshold", type=float, default=0.20,
                            help="fractional perf drift to flag "
                                 "(default 0.20)")


def run_warehouse(args: argparse.Namespace) -> int:
    """Dispatch a parsed ``warehouse`` invocation; exit code."""
    handler = {
        "run": _cmd_run,
        "verify": _cmd_verify,
        "diff": _cmd_diff,
        "trajectory": _cmd_trajectory,
    }[args.warehouse_command]
    return handler(args)


def _build_supervision(args: argparse.Namespace):
    """A :class:`~repro.fleet.resilience.Supervisor` when any
    resilience knob was set, else ``None`` (plain execution)."""
    if args.max_retries is None and args.chunk_timeout is None:
        return None
    from repro.fleet.resilience import RetryPolicy, Supervisor
    retries = 2 if args.max_retries is None else args.max_retries
    return Supervisor(RetryPolicy(max_retries=retries,
                                  chunk_timeout=args.chunk_timeout))


def _write_failure_report(path: str, supervision) -> None:
    """Persist the failure-taxonomy artifact for CI."""
    payload = (supervision.to_payload() if supervision is not None
               else {"sweeps": 0, "failures": 0, "counts": {},
                     "reports": []})
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True)
                      + "\n", encoding="ascii")
    print(f"failure report ({payload['failures']} failure(s) over "
          f"{payload['sweeps']} supervised sweep(s)) written to "
          f"{target}")


def _cmd_run(args: argparse.Namespace) -> int:
    profile = "quick" if args.quick else "full"
    cells = select_cells(quick_matrix() if args.quick
                         else full_matrix(), args.cells)
    if not cells:
        print(f"warehouse run: no cells match {args.cells!r}")
        return 2
    devices = args.devices if args.devices is not None \
        else (2 if args.quick else 4)
    commit = args.commit if args.commit is not None \
        else detect_commit()
    cfg = config_hash(matrix_config(cells, profile, args.seed,
                                    devices))
    store = WarehouseStore(args.store)
    skip: List[str] = []
    if args.resume:
        done = store.recorded_cells(commit, cfg)
        skip = [cell.cell_id for cell in cells
                if cell.cell_id in done]
    print(f"warehouse run: profile={profile} seed={args.seed} "
          f"devices={devices} commit={commit[:12]} config={cfg} "
          f"({len(cells)} cells"
          + (f", {len(skip)} already recorded" if args.resume
             else "") + ")")
    supervision = _build_supervision(args)
    # Checkpoint discipline: append each record the moment its cell
    # finishes, so a killed run loses at most the in-flight cell and
    # --resume picks up from the store.
    records: List[Dict[str, object]] = []

    def _checkpoint(record: Dict[str, object]) -> None:
        store.append([record])
        records.append(record)

    run_matrix(cells, profile, args.seed, devices, commit,
               progress=print, skip=skip, on_record=_checkpoint,
               stop_after=args.stop_after, workers=args.workers,
               supervision=supervision,
               registry_dir=args.enrollment_registry)
    if supervision is not None and supervision.failures:
        for line in supervision.summary_lines():
            print(f"  supervised {line}")
    if args.failure_report:
        _write_failure_report(args.failure_report, supervision)
    print(f"appended {len(records)} records to {store.path} "
          f"(config {cfg})")
    interrupted = (args.stop_after is not None
                   and len(skip) + len(records) < len(cells))
    if interrupted:
        print(f"warehouse run: stopped after {len(records)} cell(s) "
              f"as requested - checkpoint saved, rerun with "
              f"--resume to complete the matrix")
        return 3
    if args.check_reproducible:
        replay = run_matrix(cells, profile, args.seed, devices,
                            commit, skip=skip, workers=args.workers,
                            supervision=supervision,
                            registry_dir=args.enrollment_registry)
        drifted = [
            str(first["cell"])
            for first, second in zip(records, replay)
            if canonical_json(record_identity(first))
            != canonical_json(record_identity(second))]
        if drifted:
            print(f"warehouse run: NOT REPRODUCIBLE - "
                  f"{len(drifted)} cell(s) drifted between two "
                  f"same-seed runs: {', '.join(drifted)}")
            return 1
        print("warehouse run: reproducibility check ok "
              "(two same-seed runs, identical record identities)")
    # Status tally and summary cover the whole matrix: on a resumed
    # run that means this run's records plus the checkpointed ones.
    stored = store.matrix(commit, cfg)
    full_records = [stored[cell.cell_id] for cell in cells
                    if cell.cell_id in stored]
    by_status = {status: sum(1 for r in full_records
                             if r["status"] == status)
                 for status in ("ok", "n/a", "error")}
    print(f"matrix complete: {by_status['ok']} ok / "
          f"{by_status['n/a']} n/a / {by_status['error']} error")
    for record in full_records:
        if record["status"] == "error":
            print(f"  ERROR {record['cell']}: {record['reason']}")
    if args.summary:
        entry = build_entry(full_records, commit, profile)
        payload = append_entry(args.summary, entry)
        print(f"summary entry #{payload['history'][-1]['sequence']} "
              f"appended to {args.summary}")
    return 1 if by_status["error"] else 0


def _cmd_verify(args: argparse.Namespace) -> int:
    store = WarehouseStore(args.store)
    if not store.path.exists():
        print(f"warehouse verify: FAIL (missing store) - no store "
              f"at {store.path}")
        return 2
    if args.once and args.matrix is None:
        print("warehouse verify: FAIL (usage) - --once needs "
              "--matrix to know which cells must be single-shot")
        return 2
    problems = store.verify_reproducible()
    if problems:
        for problem in problems:
            print(f"  {problem}")
        print(f"warehouse verify: FAIL (identity mismatch) - "
              f"{len(problems)} key(s) with non-reproducible "
              f"records")
        return 1
    if args.matrix is not None:
        quick = args.matrix == "quick"
        cells = select_cells(quick_matrix() if quick
                             else full_matrix(), args.cells)
        devices = args.devices if args.devices is not None \
            else (2 if quick else 4)
        commit = args.commit if args.commit is not None \
            else detect_commit()
        cfg = config_hash(matrix_config(
            cells, "quick" if quick else "full", args.seed, devices))
        counts = store.recorded_cells(commit, cfg)
        missing = [cell.cell_id for cell in cells
                   if cell.cell_id not in counts]
        if missing:
            print(f"warehouse verify: FAIL (store missing cells) - "
                  f"{len(missing)} of {len(cells)} {args.matrix} "
                  f"cells absent for commit {commit[:12]} config "
                  f"{cfg}: {', '.join(missing[:4])}"
                  + (" ..." if len(missing) > 4 else ""))
            return 3
        if args.once:
            duplicates = [cell.cell_id for cell in cells
                          if counts.get(cell.cell_id, 0) > 1]
            if duplicates:
                print(f"warehouse verify: FAIL (duplicate records) "
                      f"- {len(duplicates)} cell(s) recorded more "
                      f"than once for commit {commit[:12]} config "
                      f"{cfg}: {', '.join(duplicates[:4])}"
                      + (" ..." if len(duplicates) > 4 else ""))
                return 4
    print(f"warehouse verify: ok - every re-recorded key in "
          f"{store.path} is bitwise-reproducible"
          + (f", all {args.matrix} cells recorded"
             + (" exactly once" if args.once else "")
             if args.matrix is not None else ""))
    return 0


def _resolve_commit(store: WarehouseStore,
                    ref: str) -> Optional[str]:
    commits = store.commits()
    if ref in commits:
        return ref
    matches = [commit for commit in commits
               if commit.startswith(ref)]
    if len(matches) == 1:
        return matches[0]
    print(f"warehouse diff: commit {ref!r} "
          f"{'is ambiguous' if matches else 'not in the store'} "
          f"(stored: {', '.join(c[:12] for c in commits) or 'none'})")
    return None


def _cmd_diff(args: argparse.Namespace) -> int:
    store = WarehouseStore(args.store)
    if not store.path.exists():
        print(f"warehouse diff: no store at {store.path}")
        return 2
    base_commit = _resolve_commit(store, args.base)
    current_commit = _resolve_commit(store, args.current)
    if base_commit is None or current_commit is None:
        return 2
    base = store.matrix(base_commit, args.config)
    current = store.matrix(current_commit, args.config)
    result = diff_matrices(base, current,
                           timing_threshold=args.threshold)
    print(f"warehouse diff: {base_commit[:12]} -> "
          f"{current_commit[:12]} ({result.cells} cells)")
    if result.lines:
        for line in result.lines:
            print(line)
    else:
        print("  matrices identical")
    print(f"{result.security_changes} security change(s), "
          f"{result.perf_changes} perf change(s)")
    if args.fail_on_security_drift and result.changed:
        return 1
    return 0


def _cmd_trajectory(args: argparse.Namespace) -> int:
    files: List[Path]
    if args.files:
        files = [Path(name) for name in args.files]
    else:
        files = sorted(Path.cwd().glob("BENCH_*.json"))
    missing = [path for path in files if not path.exists()]
    if missing:
        for path in missing:
            print(f"warehouse trajectory: no such file: {path}")
        return 2
    if not files:
        print("warehouse trajectory: no BENCH_*.json summaries "
              "found")
        return 1
    report = build_report(files, threshold=args.threshold)
    for line in report.lines:
        print(line)
    if report.drifts:
        print(f"\n{len(report.perf_drifts)} perf drift(s), "
              f"{len(report.security_drifts)} security drift(s) on "
              f"the newest entry:")
        for drift in report.drifts:
            print(f"  {drift.describe()}")
    else:
        print("\nno drift on the newest entry")
    return 0
