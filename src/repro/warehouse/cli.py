"""``repro warehouse`` subcommand handlers.

Wires the warehouse subsystem into the top-level CLI::

    repro warehouse run [--quick] [--store PATH] [--summary PATH]
    repro warehouse verify --store PATH
    repro warehouse diff BASE CURRENT --store PATH
    repro warehouse trajectory [BENCH_*.json ...]

Kept separate from :mod:`repro.cli` so the argument surface and the
handlers live next to the subsystem they drive; the top-level parser
only delegates.
"""

from __future__ import annotations

import argparse
import os
import subprocess
from pathlib import Path
from typing import List, Optional

from repro.warehouse.diff import diff_matrices
from repro.warehouse.matrix import (
    full_matrix,
    quick_matrix,
    select_cells,
)
from repro.warehouse.runner import run_matrix
from repro.warehouse.store import (
    WarehouseStore,
    canonical_json,
    record_identity,
)
from repro.warehouse.summary import append_entry, build_entry
from repro.warehouse.trajectory import build_report

#: Default store location, relative to the invocation directory.
DEFAULT_STORE = "warehouse/results.jsonl"


def detect_commit() -> str:
    """This run's commit: ``$GITHUB_SHA``, ``git rev-parse``, or
    ``"unknown"`` outside both."""
    commit = os.environ.get("GITHUB_SHA", "").strip()
    if commit:
        return commit
    try:
        probe = subprocess.run(["git", "rev-parse", "HEAD"],
                               capture_output=True, text=True,
                               check=True, timeout=10)
        return probe.stdout.strip() or "unknown"
    except Exception:
        return "unknown"


def add_warehouse_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``warehouse`` subcommand tree on *sub*."""
    warehouse = sub.add_parser(
        "warehouse",
        help="attack x scheme x countermeasure results warehouse")
    wsub = warehouse.add_subparsers(dest="warehouse_command",
                                    required=True)

    run = wsub.add_parser(
        "run", help="execute the matrix and append records")
    run.add_argument("--quick", action="store_true",
                     help="reduced matrix (CI smoke profile)")
    run.add_argument("--devices", type=int, default=None,
                     help="fleet size per runnable cell "
                          "(default: 2 quick / 4 full)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--store", default=DEFAULT_STORE,
                     help=f"JSONL store path (default "
                          f"{DEFAULT_STORE})")
    run.add_argument("--commit", default=None,
                     help="record key commit (default: $GITHUB_SHA "
                          "or git rev-parse HEAD)")
    run.add_argument("--summary", default=None, metavar="PATH",
                     help="append this run's entry to a repo-root "
                          "BENCH_*.json trajectory file")
    run.add_argument("--cells", default=None, metavar="PATTERN",
                     help="fnmatch filter on cell ids, e.g. "
                          "'group-based/*'")
    run.add_argument("--check-reproducible", action="store_true",
                     help="run the matrix twice and fail unless "
                          "record identities match bitwise")

    verify = wsub.add_parser(
        "verify", help="assert same-key records agree bitwise")
    verify.add_argument("--store", default=DEFAULT_STORE)

    diff = wsub.add_parser(
        "diff", help="compare two commits' matrices cell by cell")
    diff.add_argument("base", help="baseline commit (prefixes ok)")
    diff.add_argument("current", help="commit under test")
    diff.add_argument("--store", default=DEFAULT_STORE)
    diff.add_argument("--config", default=None,
                      help="restrict to one configuration hash")
    diff.add_argument("--threshold", type=float, default=0.20,
                      help="fractional timing movement to report "
                           "(default 0.20)")
    diff.add_argument("--fail-on-security-drift",
                      action="store_true",
                      help="exit non-zero when security outcomes "
                           "moved")

    trajectory = wsub.add_parser(
        "trajectory",
        help="render the longitudinal BENCH_*.json history")
    trajectory.add_argument("files", nargs="*",
                            help="summary files (default: "
                                 "./BENCH_*.json)")
    trajectory.add_argument("--threshold", type=float, default=0.20,
                            help="fractional perf drift to flag "
                                 "(default 0.20)")


def run_warehouse(args: argparse.Namespace) -> int:
    """Dispatch a parsed ``warehouse`` invocation; exit code."""
    handler = {
        "run": _cmd_run,
        "verify": _cmd_verify,
        "diff": _cmd_diff,
        "trajectory": _cmd_trajectory,
    }[args.warehouse_command]
    return handler(args)


def _cmd_run(args: argparse.Namespace) -> int:
    profile = "quick" if args.quick else "full"
    cells = select_cells(quick_matrix() if args.quick
                         else full_matrix(), args.cells)
    if not cells:
        print(f"warehouse run: no cells match {args.cells!r}")
        return 2
    devices = args.devices if args.devices is not None \
        else (2 if args.quick else 4)
    commit = args.commit if args.commit is not None \
        else detect_commit()
    print(f"warehouse run: profile={profile} seed={args.seed} "
          f"devices={devices} commit={commit[:12]} "
          f"({len(cells)} cells)")
    records = run_matrix(cells, profile, args.seed, devices, commit,
                         progress=print)
    if args.check_reproducible:
        replay = run_matrix(cells, profile, args.seed, devices,
                            commit)
        drifted = [
            str(first["cell"])
            for first, second in zip(records, replay)
            if canonical_json(record_identity(first))
            != canonical_json(record_identity(second))]
        if drifted:
            print(f"warehouse run: NOT REPRODUCIBLE - "
                  f"{len(drifted)} cell(s) drifted between two "
                  f"same-seed runs: {', '.join(drifted)}")
            return 1
        print("warehouse run: reproducibility check ok "
              "(two same-seed runs, identical record identities)")
    store = WarehouseStore(args.store)
    appended = store.append(records)
    by_status = {status: sum(1 for r in records
                             if r["status"] == status)
                 for status in ("ok", "n/a", "error")}
    print(f"appended {appended} records to {store.path} "
          f"(config {records[0]['config_hash']}, "
          f"{by_status['ok']} ok / {by_status['n/a']} n/a / "
          f"{by_status['error']} error)")
    for record in records:
        if record["status"] == "error":
            print(f"  ERROR {record['cell']}: {record['reason']}")
    if args.summary:
        entry = build_entry(records, commit, profile)
        payload = append_entry(args.summary, entry)
        print(f"summary entry #{payload['history'][-1]['sequence']} "
              f"appended to {args.summary}")
    return 1 if by_status["error"] else 0


def _cmd_verify(args: argparse.Namespace) -> int:
    store = WarehouseStore(args.store)
    if not store.path.exists():
        print(f"warehouse verify: no store at {store.path}")
        return 2
    problems = store.verify_reproducible()
    if problems:
        for problem in problems:
            print(f"  {problem}")
        print(f"warehouse verify: {len(problems)} key(s) with "
              f"non-reproducible records")
        return 1
    print(f"warehouse verify: ok - every re-recorded key in "
          f"{store.path} is bitwise-reproducible")
    return 0


def _resolve_commit(store: WarehouseStore,
                    ref: str) -> Optional[str]:
    commits = store.commits()
    if ref in commits:
        return ref
    matches = [commit for commit in commits
               if commit.startswith(ref)]
    if len(matches) == 1:
        return matches[0]
    print(f"warehouse diff: commit {ref!r} "
          f"{'is ambiguous' if matches else 'not in the store'} "
          f"(stored: {', '.join(c[:12] for c in commits) or 'none'})")
    return None


def _cmd_diff(args: argparse.Namespace) -> int:
    store = WarehouseStore(args.store)
    if not store.path.exists():
        print(f"warehouse diff: no store at {store.path}")
        return 2
    base_commit = _resolve_commit(store, args.base)
    current_commit = _resolve_commit(store, args.current)
    if base_commit is None or current_commit is None:
        return 2
    base = store.matrix(base_commit, args.config)
    current = store.matrix(current_commit, args.config)
    result = diff_matrices(base, current,
                           timing_threshold=args.threshold)
    print(f"warehouse diff: {base_commit[:12]} -> "
          f"{current_commit[:12]} ({result.cells} cells)")
    if result.lines:
        for line in result.lines:
            print(line)
    else:
        print("  matrices identical")
    print(f"{result.security_changes} security change(s), "
          f"{result.perf_changes} perf change(s)")
    if args.fail_on_security_drift and result.changed:
        return 1
    return 0


def _cmd_trajectory(args: argparse.Namespace) -> int:
    files: List[Path]
    if args.files:
        files = [Path(name) for name in args.files]
    else:
        files = sorted(Path.cwd().glob("BENCH_*.json"))
    missing = [path for path in files if not path.exists()]
    if missing:
        for path in missing:
            print(f"warehouse trajectory: no such file: {path}")
        return 2
    if not files:
        print("warehouse trajectory: no BENCH_*.json summaries "
              "found")
        return 1
    report = build_report(files, threshold=args.threshold)
    for line in report.lines:
        print(line)
    if report.drifts:
        print(f"\n{len(report.perf_drifts)} perf drift(s), "
              f"{len(report.security_drifts)} security drift(s) on "
              f"the newest entry:")
        for drift in report.drifts:
            print(f"  {drift.describe()}")
    else:
        print("\nno drift on the newest entry")
    return 0
