"""Cell-by-cell comparison of two stored matrices.

``repro warehouse diff STORE BASE CURRENT`` loads the latest record
per cell for each commit and reports, per cell: status transitions,
security deltas (key-recovery rate, query bills, outcome-fingerprint
movement) and timing deltas.  Security outcomes are deterministic
functions of the configuration seed, so a security delta between
commits is a real behavioural change of the code — the exact signal
the warehouse exists to surface — while timing deltas are labelled
informational.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

#: Fractional timing movement reported as a perf change.
DEFAULT_TIMING_THRESHOLD = 0.20


@dataclass
class MatrixDiff:
    """Outcome of comparing two commits' matrices."""

    lines: List[str]
    security_changes: int
    perf_changes: int
    cells: int

    @property
    def changed(self) -> bool:
        """Whether any security-relevant difference was found."""
        return self.security_changes > 0


def _security_delta(cell: str, base: Dict[str, object],
                    current: Dict[str, object]) -> List[str]:
    lines: List[str] = []
    fields = (
        ("recovery_rate", "recovery rate", "{:.2f}"),
        ("queries_total", "total queries", "{:d}"),
    )
    for field, label, fmt in fields:
        old, new = base.get(field), current.get(field)
        if old != new:
            lines.append(
                f"    {label}: {fmt.format(old)} -> "
                f"{fmt.format(new)}")
    if base.get("outcome_fingerprint") != \
            current.get("outcome_fingerprint"):
        lines.append(
            f"    outcome fingerprint: "
            f"{str(base.get('outcome_fingerprint'))[:12]} -> "
            f"{str(current.get('outcome_fingerprint'))[:12]}")
    return lines


def diff_matrices(base: Dict[str, Dict[str, object]],
                  current: Dict[str, Dict[str, object]],
                  timing_threshold: float = DEFAULT_TIMING_THRESHOLD
                  ) -> MatrixDiff:
    """Compare two ``cell -> record`` matrices.

    Returns printable lines plus counters; cells present on only one
    side are reported as added/removed coverage.
    """
    lines: List[str] = []
    security_changes = 0
    perf_changes = 0
    names = sorted(set(base) | set(current))
    for cell in names:
        old, new = base.get(cell), current.get(cell)
        if old is None:
            lines.append(f"  ADDED     {cell} "
                         f"(status {new['status']})")
            continue
        if new is None:
            lines.append(f"  REMOVED   {cell} "
                         f"(was status {old['status']})")
            continue
        if old["status"] != new["status"]:
            security_changes += 1
            lines.append(f"  STATUS    {cell}: {old['status']} -> "
                         f"{new['status']}")
            continue
        if old["status"] != "ok":
            continue
        deltas = _security_delta(cell, old["security"],
                                 new["security"])
        if deltas:
            security_changes += 1
            lines.append(f"  SECURITY  {cell}:")
            lines.extend(deltas)
        old_mean = float(old["perf"]["attack_seconds"])
        new_mean = float(new["perf"]["attack_seconds"])
        if old_mean > 0:
            ratio = new_mean / old_mean
            if abs(ratio - 1.0) > timing_threshold:
                perf_changes += 1
                label = ("slower" if ratio > 1 else "faster")
                lines.append(
                    f"  PERF      {cell}: {old_mean:.3f}s -> "
                    f"{new_mean:.3f}s "
                    f"({(ratio - 1.0) * 100.0:+.0f}%, {label})")
    return MatrixDiff(lines, security_changes, perf_changes,
                      len(names))
