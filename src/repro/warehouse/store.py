"""Append-only JSON-lines store of attack-matrix cell records.

One warehouse record captures one *cell* of the attack × scheme ×
countermeasure matrix for one configuration at one commit.  Records
are keyed by ``(commit, config_hash, schema_version)`` plus the cell
identifier, and split into three layers:

* the **identity** — cell coordinates, configuration and security
  outcomes (key-recovery mask, query bills, fingerprints).  Identity
  is a pure function of the configuration seed: running the same
  matrix twice at the same commit must produce byte-identical
  identities (:func:`record_identity` strips the rest, and
  :meth:`WarehouseStore.verify_reproducible` enforces it in CI);
* ``perf`` — wall/kernel timings, inherently noisy, never part of
  identity;
* ``meta`` — provenance (creation timestamp), never part of identity.

The store itself is a strict, append-only ``.jsonl`` file: one record
per line, nothing ever rewritten, so commit-over-commit history
accumulates naturally and ``repro warehouse diff`` can compare any two
stored commits cell by cell.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.serialization import dump_helper, supports_helper

#: Version of the record layout.  Bump on any change to the identity
#: fields — records of different schema versions never compare equal.
SCHEMA_VERSION = 1


class StoreFormatError(ValueError):
    """A warehouse store line violates the record format."""


def canonical_json(payload: object) -> str:
    """Deterministic JSON encoding (sorted keys, compact separators).

    The canonical form is what gets hashed, so two semantically equal
    payloads produced by different dict insertion orders hash equal.
    """
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":"), ensure_ascii=True)


def sha256_hex(data: object) -> str:
    """SHA-256 hex digest of *data* (bytes, or canonical JSON)."""
    if not isinstance(data, (bytes, bytearray)):
        data = canonical_json(data).encode("ascii")
    return hashlib.sha256(bytes(data)).hexdigest()


def config_hash(config: Dict[str, object]) -> str:
    """Stable hash of a matrix configuration dict.

    Key order does not matter; values must be JSON-serialisable.
    Records produced from configurations with different hashes are
    never compared against each other.
    """
    return sha256_hex(config)[:16]


def fingerprint_bits(arrays: Iterable[np.ndarray]) -> str:
    """SHA-256 over a sequence of bit vectors (length-prefixed).

    The length prefix keeps the encoding injective: two devices'
    concatenated keys cannot collide with a different split of the
    same bit stream.
    """
    digest = hashlib.sha256()
    for bits in arrays:
        bits = np.asarray(bits, dtype=np.uint8)
        digest.update(int(bits.size).to_bytes(4, "little"))
        digest.update(np.packbits(bits).tobytes())
    return digest.hexdigest()


def enrollment_fingerprint(helpers: Iterable[object],
                           keys: Iterable[np.ndarray]) -> str:
    """Fingerprint a fleet enrollment.

    Helpers with a specified binary storage format (see
    :mod:`repro.serialization`) contribute their serialised bytes —
    the stable, refactor-proof identity of the enrollment; helper
    types without a format fall back to the enrolled key bits.
    """
    digest = hashlib.sha256()
    for helper, key in zip(helpers, keys):
        if supports_helper(helper):
            blob = dump_helper(helper)
            digest.update(b"H")
            digest.update(len(blob).to_bytes(4, "little"))
            digest.update(blob)
        else:
            digest.update(b"K")
            digest.update(
                bytes.fromhex(fingerprint_bits([key])))
    return digest.hexdigest()


def record_key(record: Dict[str, object]) -> Tuple[str, str, int, str]:
    """The store key of a record: commit, config hash, schema, cell."""
    try:
        return (str(record["commit"]), str(record["config_hash"]),
                int(record["schema_version"]), str(record["cell"]))
    except KeyError as missing:
        raise StoreFormatError(
            f"record misses key field {missing}") from None


def record_identity(record: Dict[str, object]) -> Dict[str, object]:
    """The reproducible part of a record.

    Strips ``perf`` (timings are noisy) and ``meta`` (timestamps are
    provenance); everything that remains is a pure function of the
    configuration, so two runs of the same matrix at the same commit
    must agree on it byte for byte.
    """
    return {field: value for field, value in record.items()
            if field not in ("perf", "meta")}


class WarehouseStore:
    """Append-only JSON-lines store of warehouse records.

    Parameters
    ----------
    path:
        The ``.jsonl`` store file.  Created (with parents) on first
        append; reads of a missing store yield no records.
    """

    def __init__(self, path) -> None:
        self._path = Path(path)

    @property
    def path(self) -> Path:
        """Location of the store file."""
        return self._path

    def append(self, records: Iterable[Dict[str, object]]) -> int:
        """Append records to the store; returns how many were written.

        Strictly append-only: existing lines are never rewritten, so
        re-running a matrix at the same commit adds a second batch of
        (identical-identity) records rather than replacing the first.
        """
        records = list(records)
        for record in records:
            record_key(record)  # validate before touching the file
        self._path.parent.mkdir(parents=True, exist_ok=True)
        with self._path.open("a", encoding="ascii") as handle:
            for record in records:
                handle.write(canonical_json(record) + "\n")
        return len(records)

    def records(self) -> Iterator[Dict[str, object]]:
        """All records in append order (strict parse)."""
        if not self._path.exists():
            return
        with self._path.open(encoding="ascii") as handle:
            for lineno, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as error:
                    raise StoreFormatError(
                        f"{self._path}:{lineno}: not valid JSON "
                        f"({error})") from None
                if not isinstance(record, dict):
                    raise StoreFormatError(
                        f"{self._path}:{lineno}: record is not an "
                        f"object")
                record_key(record)
                yield record

    def __iter__(self) -> Iterator[Dict[str, object]]:
        return self.records()

    def commits(self) -> List[str]:
        """Distinct commits in first-seen order."""
        seen: List[str] = []
        for record in self.records():
            commit = str(record["commit"])
            if commit not in seen:
                seen.append(commit)
        return seen

    def matrix(self, commit: str,
               config: Optional[str] = None
               ) -> Dict[str, Dict[str, object]]:
        """Latest record per cell for one commit.

        *config* filters on the configuration hash; without it, cells
        of every configuration stored for the commit are returned
        (later appends win per cell).
        """
        cells: Dict[str, Dict[str, object]] = {}
        for record in self.records():
            if str(record["commit"]) != commit:
                continue
            if config is not None \
                    and str(record["config_hash"]) != config:
                continue
            cells[str(record["cell"])] = record
        return cells

    def recorded_cells(self, commit: str,
                       config: Optional[str] = None,
                       schema: int = SCHEMA_VERSION
                       ) -> Dict[str, int]:
        """Cells already recorded for a run key, with record counts.

        The checkpoint/resume lookup: ``repro warehouse run
        --resume`` consults this map and skips every cell already
        recorded for ``(commit, config_hash, schema_version)``.  The
        counts let duplicate detection (``verify --once``) ride on
        the same scan.
        """
        cells: Dict[str, int] = {}
        for record in self.records():
            if str(record["commit"]) != commit:
                continue
            if config is not None \
                    and str(record["config_hash"]) != config:
                continue
            if int(record["schema_version"]) != int(schema):
                continue
            cell = str(record["cell"])
            cells[cell] = cells.get(cell, 0) + 1
        return cells

    def verify_reproducible(self) -> List[str]:
        """Check that same-key records carry identical identities.

        Returns one human-readable problem line per store key whose
        records disagree — the seed-reproducibility gate CI runs after
        appending the same matrix twice.  An empty list means every
        re-run reproduced its predecessor bitwise.
        """
        problems: List[str] = []
        seen: Dict[Tuple[str, str, int, str], str] = {}
        for record in self.records():
            key = record_key(record)
            identity = canonical_json(record_identity(record))
            if key not in seen:
                seen[key] = identity
            elif seen[key] != identity:
                commit, config, schema, cell = key
                problems.append(
                    f"cell {cell} @ {commit[:12]} (config {config}, "
                    f"schema v{schema}): identity drifted between "
                    f"appends")
        return problems
