"""Execute matrix cells at fleet scale and produce warehouse records.

Each runnable cell manufactures a seeded device fleet, enrolls its
scheme, and drives its attack family across the whole population
through the existing engines — the lock-step/fused campaign scheduler
for every stepwise attack, the per-device scalar loop for the
temperature-aware family — then condenses the outcome into one record:
per-device key-recovery mask and query bills, a comparer-decisions
fingerprint, an enrollment fingerprint through the specified storage
format, and wall/kernel timings.

Determinism contract: the record *identity* (everything except the
``perf``/``meta`` layers) is a pure function of ``(cell, seed,
devices)``.  Cell RNG roots derive from the cell identifier — not its
position in the matrix — so adding cells to the registry never
perturbs existing cells, and the per-device substream discipline of
:mod:`repro.fleet.parallel` does the rest.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.ecc import BlockwiseCode, ReedMullerCode
from repro.ecc.kernel import kernel_stats
from repro.fleet import (
    DistillerAttackFactory,
    Fleet,
    GroupAttackFactory,
    SequentialAttackFactory,
    TempAwareAttackFactory,
)
from repro.keygen import (
    DistillerPairingKeyGen,
    FuzzyExtractorKeyGen,
    GroupBasedKeyGen,
    HardenedGroupBasedKeyGen,
    HardenedTempAwareKeyGen,
    SequentialPairingKeyGen,
    TempAwareKeyGen,
)
from repro.puf import ROArrayParams
from repro.warehouse.matrix import MatrixCell
from repro.warehouse.store import (
    SCHEMA_VERSION,
    config_hash,
    enrollment_fingerprint,
    fingerprint_bits,
    sha256_hex,
)


@dataclass(frozen=True)
class _ReedMullerProvider:
    """Picklable provider of blockwise Reed–Muller codes (ML-decoded).

    First-order RM decoding never fails — it is the matrix's
    maximum-likelihood column: the §VI-A bounded-distance calculus
    does not apply and the attack switches to its online-calibration
    variant automatically.
    """

    m: int = 5

    def __call__(self, bits: int) -> BlockwiseCode:
        """Smallest blockwise RM(1, m) covering *bits* data bits."""
        inner = ReedMullerCode(self.m)
        blocks = max(1, -(-bits // inner.k))
        if blocks == 1:
            return inner
        return BlockwiseCode(inner, blocks)


def _keygen_factory(cell: MatrixCell) -> Callable[[], object]:
    """Picklable keygen factory for one runnable cell."""
    if cell.scheme == "sequential":
        provider = (_ReedMullerProvider(5) if cell.variant == "rm5"
                    else None)
        return functools.partial(SequentialPairingKeyGen,
                                 threshold=300e3,
                                 code_provider=provider)
    if cell.scheme == "group-based":
        if cell.countermeasure == "hardened":
            return functools.partial(
                HardenedGroupBasedKeyGen, rows=cell.rows,
                cols=cell.cols, max_polynomial_span=20e6,
                group_threshold=120e3)
        return functools.partial(GroupBasedKeyGen,
                                 group_threshold=120e3)
    if cell.scheme == "temp-aware":
        cls = (HardenedTempAwareKeyGen
               if cell.countermeasure == "hardened"
               else TempAwareKeyGen)
        return functools.partial(cls, t_min=-10, t_max=80,
                                 threshold=150e3)
    if cell.scheme == "distiller":
        return functools.partial(DistillerPairingKeyGen, cell.rows,
                                 cell.cols,
                                 pairing_mode=cell.variant, k=5)
    if cell.scheme == "fuzzy-extractor":
        out_bits = 48 if cell.variant == "8x16" else 16
        return functools.partial(FuzzyExtractorKeyGen, cell.rows,
                                 cell.cols, out_bits=out_bits)
    raise ValueError(f"no keygen factory for scheme {cell.scheme!r}")


def _attack_factory(cell: MatrixCell) -> Callable:
    """Picklable attack factory for one runnable cell."""
    if cell.attack in ("sequential", "ml"):
        return SequentialAttackFactory("paired")
    if cell.attack == "sprt":
        return SequentialAttackFactory("sprt")
    if cell.attack == "group":
        return GroupAttackFactory(cell.rows, cell.cols)
    if cell.attack == "distiller":
        return DistillerAttackFactory(cell.rows, cell.cols)
    if cell.attack == "temp-aware":
        return TempAwareAttackFactory()
    raise ValueError(f"no attack factory for family {cell.attack!r}")


def _check_key(result: object, key: np.ndarray,
               helper: object) -> bool:
    """Key-carrying families: the recovered key must match enrolled."""
    recovered = getattr(result, "key", None)
    return recovered is not None and bool(
        np.array_equal(recovered, key))


def _check_temp_aware(result: object, key: np.ndarray,
                      helper: object) -> bool:
    """§VI-B recovers relations of the cooperating-pair bits only."""
    n_good = len(helper.scheme.good_indices)
    truth = key[n_good:]
    if truth.size == 0 or result.resolved_fraction != 1.0:
        return False
    return bool(np.array_equal(result.coop_relations,
                               truth ^ truth[0]))


def _recovery_check(cell: MatrixCell) -> Callable:
    """Per-family predicate deciding whether an attack recovered."""
    if cell.attack == "temp-aware":
        return _check_temp_aware
    return _check_key


def _device_payload(result: object, recovered: bool
                    ) -> Dict[str, object]:
    """Deterministic per-device outcome features (for fingerprints)."""
    comparisons = getattr(result, "comparisons", ())
    if isinstance(comparisons, (list, tuple)):
        decisions = [outcome.decision for outcome in comparisons]
        comparison_count = len(comparisons)
    else:
        # group-based results expose a comparison *count*, not the
        # individual comparer outcomes
        decisions = []
        comparison_count = int(comparisons)
    payload: Dict[str, object] = {
        "recovered": bool(recovered),
        "queries": int(getattr(result, "queries", 0)),
        "decisions": decisions,
        "comparison_count": comparison_count,
    }
    key = getattr(result, "key", None)
    if key is not None:
        payload["key"] = fingerprint_bits([key])
    for attr in ("relations", "coop_relations"):
        value = getattr(result, attr, None)
        if value is not None:
            payload[attr] = [int(v) for v in
                             np.asarray(value).ravel()]
    good_bits = getattr(result, "good_bits", None)
    if good_bits is not None:
        payload["good_bits"] = {str(index): int(bit)
                                for index, bit in good_bits.items()}
    return payload


def _timestamp() -> str:
    """UTC creation timestamp (provenance only, never identity)."""
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def matrix_config(cells: Sequence[MatrixCell], profile: str,
                  seed: int, devices: int) -> Dict[str, object]:
    """The configuration dict whose hash keys a run's records."""
    return {
        "schema_version": SCHEMA_VERSION,
        "profile": profile,
        "seed": int(seed),
        "devices": int(devices),
        "cells": [cell.cell_id for cell in cells],
    }


def run_cell(cell: MatrixCell, devices: int, seed: int, commit: str,
             cfg_hash: str, profile: str,
             workers: Optional[int] = 1,
             supervision=None,
             registry_dir: Optional[str] = None) -> Dict[str, object]:
    """Execute one cell and return its warehouse record.

    *workers* / *supervision* thread through to the attack campaign
    (:meth:`repro.fleet.fleet.Fleet.attack_results`); both leave the
    record identity bitwise-unchanged — the fleet engines guarantee
    worker-count invariance and fault-retry equivalence.
    *registry_dir* (if given) persists each cell's enrollment in a
    per-cell :class:`repro.service.registry.EnrollmentRegistry` under
    that directory and reuses it on later runs; because the
    enrollment stream is spawned independently of the sweep streams,
    reuse leaves record identity bitwise-unchanged too.
    """
    record: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "commit": str(commit),
        "config_hash": str(cfg_hash),
        "cell": cell.cell_id,
        "scheme": cell.scheme,
        "attack": cell.attack,
        "countermeasure": cell.countermeasure,
        "variant": cell.variant,
        "config": {"seed": int(seed), "devices": int(devices),
                   "rows": cell.rows, "cols": cell.cols,
                   "profile": profile},
        "meta": {"created": _timestamp()},
    }
    if not cell.runnable:
        record.update(status="n/a", reason=cell.reason, engine=None,
                      security=None, perf=None)
        return record
    try:
        body = _run_runnable(cell, devices, seed, workers=workers,
                             supervision=supervision,
                             registry_dir=registry_dir)
    except Exception as error:  # defensive: record, don't abort runs
        record.update(status="error",
                      reason=f"{type(error).__name__}: {error}",
                      engine=None, security=None, perf=None)
        return record
    record.update(status="ok", reason="", **body)
    return record


#: Reconstruction attempts per device for the §VII-C timing cells.
RECONSTRUCTION_TRIALS = 64


def _cell_enrollment(cell: MatrixCell, fleet: Fleet, enroll_rng,
                     devices: int, seed: int,
                     registry_dir: Optional[str]):
    """Enroll a cell's fleet, through the registry when one is given.

    Returns ``(enrollment, enroll_seconds)``; a registry hit costs
    no enrollment measurements (``enroll_seconds`` is the load
    time).  The enrollment stream is an independent spawn of the
    cell root, so skipping it never shifts the sweep streams.
    """
    factory = _keygen_factory(cell)
    if registry_dir is None:
        start = time.perf_counter()
        enrollment = fleet.enroll(factory, seed=enroll_rng)
        return enrollment, time.perf_counter() - start
    from repro.service.registry import EnrollmentRegistry

    cell_dir = (Path(registry_dir)
                / cell.cell_id.replace("/", "__"))
    start = time.perf_counter()
    if (cell_dir / "manifest.json").exists():
        registry = EnrollmentRegistry.open(cell_dir)
        if (registry.population_seed != seed
                or registry.devices != devices):
            raise ValueError(
                f"registry at {cell_dir} was enrolled for "
                f"seed={registry.population_seed} "
                f"devices={registry.devices}, run wants "
                f"seed={seed} devices={devices}")
        enrollment = registry.load_enrollment(factory)
    else:
        enrollment = fleet.enroll(factory, seed=enroll_rng)
        registry = EnrollmentRegistry.create(
            cell_dir, seed, cell.scheme, fleet.params, devices)
        for helper, key in zip(enrollment.helpers,
                               enrollment.keys):
            registry.append(helper, key)
    return enrollment, time.perf_counter() - start


def _run_runnable(cell: MatrixCell, devices: int, seed: int,
                  workers: Optional[int] = 1,
                  supervision=None,
                  registry_dir: Optional[str] = None
                  ) -> Dict[str, object]:
    """The fleet-scale body of :func:`run_cell` for runnable cells."""
    root = np.random.default_rng(
        np.random.SeedSequence(cell.seed_material(seed)))
    manufacture_rng, enroll_rng = root.spawn(2)
    if cell.temp_slope_sigma > 0:
        params = ROArrayParams(rows=cell.rows, cols=cell.cols,
                               temp_slope_sigma=cell.temp_slope_sigma)
    else:
        params = ROArrayParams(rows=cell.rows, cols=cell.cols)
    fleet = Fleet(params, size=devices, seed=manufacture_rng)

    enrollment, enroll_seconds = _cell_enrollment(
        cell, fleet, enroll_rng, devices, seed, registry_dir)

    if cell.attack == "reconstruction":
        return _run_reconstruction(fleet, enrollment, enroll_seconds,
                                   devices, workers=workers,
                                   supervision=supervision)

    lockstep = cell.attack != "temp-aware"
    kernel_before = (kernel_stats.calls, kernel_stats.rows,
                     kernel_stats.seconds)
    start = time.perf_counter()
    results = fleet.attack_results(enrollment, _attack_factory(cell),
                                   lockstep=lockstep,
                                   workers=workers,
                                   supervision=supervision)
    attack_seconds = time.perf_counter() - start
    kernel_calls = kernel_stats.calls - kernel_before[0]
    kernel_rows = kernel_stats.rows - kernel_before[1]
    kernel_seconds = kernel_stats.seconds - kernel_before[2]

    check = _recovery_check(cell)
    payloads: List[Dict[str, object]] = []
    for result, key, helper in zip(results, enrollment.keys,
                                   enrollment.helpers):
        payloads.append(_device_payload(
            result, check(result, key, helper)))
    recovered = sum(1 for p in payloads if p["recovered"])
    queries = [int(p["queries"]) for p in payloads]
    security = {
        "devices": int(devices),
        "recovered": int(recovered),
        "recovery_rate": recovered / devices,
        "recovered_mask": [bool(p["recovered"]) for p in payloads],
        "queries": queries,
        "queries_total": int(sum(queries)),
        "queries_mean": sum(queries) / devices,
        "decisions_fingerprint": sha256_hex(
            [p["decisions"] for p in payloads]),
        "outcome_fingerprint": sha256_hex(payloads),
        "enrollment_fingerprint": enrollment_fingerprint(
            enrollment.helpers, enrollment.keys),
    }
    perf = {
        "enroll_seconds": enroll_seconds,
        "attack_seconds": attack_seconds,
        "kernel_seconds": kernel_seconds,
        "kernel_calls": int(kernel_calls),
        "kernel_rows": int(kernel_rows),
    }
    engine = "lockstep-fused" if lockstep else "scalar"
    return {"engine": engine, "security": security, "perf": perf}


def _run_reconstruction(fleet: Fleet, enrollment, enroll_seconds,
                        devices: int, workers: Optional[int] = 1,
                        supervision=None) -> Dict[str, object]:
    """The §VII-C reconstruction-timing body (fuzzy-extractor cells).

    There is no attack: the cell times the key-regeneration sweep
    the fuzzy extractor trades its attack surface for, and records
    per-device reconstruction success through the same security/perf
    layers so summaries and diffs treat the cell uniformly
    (``queries`` counts noisy readouts consumed — one per trial).
    """
    kernel_before = (kernel_stats.calls, kernel_stats.rows,
                     kernel_stats.seconds)
    start = time.perf_counter()
    rates = fleet.failure_rates(enrollment, RECONSTRUCTION_TRIALS,
                                workers=workers,
                                supervision=supervision)
    attack_seconds = time.perf_counter() - start
    payloads = [{"recovered": bool(rate == 0.0),
                 "queries": int(RECONSTRUCTION_TRIALS),
                 "failure_rate": float(rate)} for rate in rates]
    recovered = sum(1 for p in payloads if p["recovered"])
    queries = [int(p["queries"]) for p in payloads]
    security = {
        "devices": int(devices),
        "recovered": int(recovered),
        "recovery_rate": recovered / devices,
        "recovered_mask": [bool(p["recovered"]) for p in payloads],
        "queries": queries,
        "queries_total": int(sum(queries)),
        "queries_mean": sum(queries) / devices,
        "decisions_fingerprint": sha256_hex(
            [[] for _ in payloads]),
        "outcome_fingerprint": sha256_hex(payloads),
        "enrollment_fingerprint": enrollment_fingerprint(
            enrollment.helpers, enrollment.keys),
    }
    perf = {
        "enroll_seconds": enroll_seconds,
        "attack_seconds": attack_seconds,
        "kernel_seconds": kernel_stats.seconds - kernel_before[2],
        "kernel_calls": int(kernel_stats.calls - kernel_before[0]),
        "kernel_rows": int(kernel_stats.rows - kernel_before[1]),
    }
    return {"engine": "reconstruction-sweep", "security": security,
            "perf": perf}


def run_matrix(cells: Sequence[MatrixCell], profile: str, seed: int,
               devices: int, commit: str,
               progress: Optional[Callable[[str], None]] = None,
               skip: Optional[Sequence[str]] = None,
               on_record: Optional[
                   Callable[[Dict[str, object]], None]] = None,
               stop_after: Optional[int] = None,
               workers: Optional[int] = 1,
               supervision=None,
               registry_dir: Optional[str] = None
               ) -> List[Dict[str, object]]:
    """Execute a matrix; returns one record per executed cell.

    Every record of the run shares the same ``(commit, config_hash,
    schema_version)`` key prefix.  The configuration hash is computed
    over the **full** *cells* list before any skipping, so a resumed
    run (``skip=`` the already-recorded cell ids) produces records
    under the same key as the interrupted one.

    *progress* (if given) receives one line per completed cell for
    live CLI output; *on_record* receives each record as soon as its
    cell finishes — the checkpoint hook that makes a mid-matrix kill
    resumable when the callback appends to the store incrementally.
    *stop_after* aborts the run after that many executed cells (the
    deterministic interruption used to test resume).  *workers* /
    *supervision* / *registry_dir* pass through to :func:`run_cell`.
    """
    cfg_hash = config_hash(matrix_config(cells, profile, seed,
                                         devices))
    skipped = frozenset(skip) if skip is not None else frozenset()
    records: List[Dict[str, object]] = []
    executed = 0
    for cell in cells:
        if cell.cell_id in skipped:
            continue
        if stop_after is not None and executed >= stop_after:
            break
        record = run_cell(cell, devices, seed, commit, cfg_hash,
                          profile, workers=workers,
                          supervision=supervision,
                          registry_dir=registry_dir)
        records.append(record)
        executed += 1
        if on_record is not None:
            on_record(record)
        if progress is not None and record["status"] == "ok":
            security = record["security"]
            progress(
                f"  {cell.cell_id}: {security['recovered']}/"
                f"{security['devices']} recovered, "
                f"{security['queries_total']} queries, "
                f"{record['perf']['attack_seconds']:.2f}s")
    return records
