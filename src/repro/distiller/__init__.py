"""Regression-based entropy distiller (paper §V-A, DAC 2013).

Re-exports the shared 2-D polynomial machinery from
:mod:`repro.puf.variation` so distiller users have one import site.
"""

from repro.distiller.distiller import DistillerHelper, EntropyDistiller
from repro.puf.variation import (
    Polynomial2D,
    design_matrix,
    n_terms,
    polynomial_terms,
    quadratic_ridge_x,
    tilted_plane,
)

__all__ = [
    "DistillerHelper",
    "EntropyDistiller",
    "Polynomial2D",
    "design_matrix",
    "n_terms",
    "polynomial_terms",
    "quadratic_ridge_x",
    "tilted_plane",
]
