"""The regression-based entropy distiller (paper §V-A, Yin & Qu DAC 2013).

Systematic manufacturing variation is spatially correlated and therefore
predictable: it reduces response entropy (paper §III-B, Fig. 2).  The
distiller models it by fitting a degree-``p`` bivariate polynomial to the
enrollment frequency map ``f(x, y)`` in a least-squares sense; the fitted
coefficients ``β_{i,j}`` are stored as *public helper data* and the
subtraction is repeated on every key regeneration, leaving the residual
(random) variation as the entropy source.

The DAC 2013 experiments indicate ``p = 2`` and ``p = 3`` as good values
for a 16×32 array; both are defaults in the benches.

The security problem reproduced by the §VI-C/D attacks: the coefficients
are attacker-*writable*.  Injecting a steep polynomial makes the
"residual" equal to an attacker-chosen pattern plus a comparatively tiny
random term, fully determining most response bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.puf.variation import Polynomial2D, n_terms


@dataclass(frozen=True)
class DistillerHelper:
    """Public helper data: the polynomial degree and coefficient vector.

    Coefficients follow the canonical term ordering of
    :func:`repro.puf.variation.polynomial_terms`.
    """

    degree: int
    coefficients: np.ndarray

    def __post_init__(self) -> None:
        coeffs = np.asarray(self.coefficients, dtype=float).copy()
        if coeffs.shape != (n_terms(self.degree),):
            raise ValueError(
                f"degree {self.degree} needs {n_terms(self.degree)} "
                f"coefficients")
        coeffs.flags.writeable = False
        object.__setattr__(self, "coefficients", coeffs)

    @property
    def polynomial(self) -> Polynomial2D:
        """The stored coefficients as a callable 2-D polynomial."""
        return Polynomial2D(self.degree, self.coefficients)

    def with_polynomial(self, polynomial: Polynomial2D
                        ) -> "DistillerHelper":
        """Manipulated helper data carrying an arbitrary polynomial."""
        return DistillerHelper(polynomial.degree,
                               polynomial.coefficients)

    def with_added(self, polynomial: Polynomial2D) -> "DistillerHelper":
        """Helper data with *polynomial* added onto the stored trend.

        Adding ``q`` to the stored coefficients makes the device subtract
        an extra ``q(x, y)``, i.e. superimposes ``-q`` onto the residual
        map — the attacker's injection primitive of paper §VI-C.
        """
        return self.with_polynomial(self.polynomial + polynomial)


class EntropyDistiller:
    """Least-squares enrollment and on-device subtraction."""

    def __init__(self, degree: int = 2):
        if degree < 0:
            raise ValueError("degree must be non-negative")
        self._degree = int(degree)

    @property
    def degree(self) -> int:
        """Degree of the fitted 2-D polynomial surface."""
        return self._degree

    def enroll(self, x: np.ndarray, y: np.ndarray,
               frequencies: np.ndarray
               ) -> Tuple[DistillerHelper, np.ndarray]:
        """Fit the systematic trend; return helper data and residuals."""
        poly = Polynomial2D.fit(x, y, frequencies, self._degree)
        helper = DistillerHelper(self._degree, poly.coefficients)
        return helper, self.residuals(x, y, frequencies, helper)

    def residuals(self, x: np.ndarray, y: np.ndarray,
                  frequencies: np.ndarray,
                  helper: DistillerHelper) -> np.ndarray:
        """On-device subtraction under (possibly manipulated) helper data."""
        freqs = np.asarray(frequencies, dtype=float)
        return freqs - helper.polynomial(np.asarray(x, dtype=float),
                                         np.asarray(y, dtype=float))

    def residuals_batch(self, x: np.ndarray, y: np.ndarray,
                        frequencies: np.ndarray,
                        helper: DistillerHelper) -> np.ndarray:
        """Residuals for a ``(B, n)`` measurement batch.

        The stored polynomial is evaluated once over the layout and
        broadcast-subtracted from every row; row ``i`` equals
        ``residuals(x, y, frequencies[i], helper)``.
        """
        freqs = np.asarray(frequencies, dtype=float)
        if freqs.ndim != 2:
            raise ValueError("batch evaluation needs a (B, n) matrix")
        trend = helper.polynomial(np.asarray(x, dtype=float),
                                  np.asarray(y, dtype=float))
        return freqs - trend[None, :]

    def variance_explained(self, x: np.ndarray, y: np.ndarray,
                           frequencies: np.ndarray) -> float:
        """Fraction of frequency variance captured by the fitted trend.

        The Fig. 2 decomposition in one number: close to 1 when the map
        is dominated by the systematic trend, close to 0 when random
        roughness dominates.
        """
        freqs = np.asarray(frequencies, dtype=float)
        total = float(np.var(freqs))
        if total == 0:
            return 0.0
        _, residual = self.enroll(x, y, freqs)
        return 1.0 - float(np.var(residual)) / total
