"""Seeded random-number-generator helpers.

Every stochastic component in this library accepts either an integer seed,
``None`` or a :class:`numpy.random.Generator`.  Funnelling all of them
through :func:`ensure_rng` keeps experiments reproducible: a test or a
benchmark passes a single integer and obtains a deterministic simulation,
while library code never calls the global ``numpy.random`` state.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RNGLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RNGLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *rng*.

    Parameters
    ----------
    rng:
        ``None`` (fresh unpredictable generator), an integer seed, or an
        existing generator (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot interpret {rng!r} as a random generator")


def spawn(rng: RNGLike, count: int) -> list:
    """Derive *count* independent child generators from *rng*.

    Children are derived through ``Generator.spawn`` so that consuming
    randomness from one child never perturbs the stream of another.  This
    is how a population of simulated devices obtains independent process
    variation from a single experiment seed.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    parent = ensure_rng(rng)
    return parent.spawn(count)
