"""Entropy accounting for RO PUF constructions (paper §II, §III-B, §V).

The total entropy of an N-oscillator RO PUF is ``log2(N!)`` — the number
of ways the frequencies can sort (paper §II) — and every construction
extracts some fraction of it.  This module provides the bookkeeping:
population bias, pairwise correlation, min-entropy, inter-/intra-device
distances, and per-construction extraction summaries.
"""

from __future__ import annotations

from math import lgamma
from typing import Dict, List

import numpy as np


def permutation_entropy(n: int) -> float:
    """``log2(n!)`` bits — the total orderable entropy of *n* oscillators."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return lgamma(n + 1) / np.log(2)


def pairwise_comparisons(n: int) -> int:
    """Number of raw (interdependent) pairwise comparisons ``N(N-1)/2``."""
    return n * (n - 1) // 2


def bit_bias(samples: np.ndarray) -> np.ndarray:
    """Per-position probability of ``1`` across a population.

    *samples* has shape ``(devices, bits)``; uniform secrets give 0.5
    everywhere.  Deviations flag the §III-B bias problem (e.g. the
    all-ones key of sorted-order sequential-pairing storage).
    """
    samples = np.atleast_2d(np.asarray(samples, dtype=float))
    return samples.mean(axis=0)


def shannon_entropy_per_bit(samples: np.ndarray) -> np.ndarray:
    """Per-position binary Shannon entropy (bits) across a population."""
    p = np.clip(bit_bias(samples), 1e-12, 1 - 1e-12)
    return -(p * np.log2(p) + (1 - p) * np.log2(1 - p))


def min_entropy_per_bit(samples: np.ndarray) -> np.ndarray:
    """Per-position min-entropy ``-log2 max(p, 1-p)`` across a population."""
    p = bit_bias(samples)
    return -np.log2(np.clip(np.maximum(p, 1 - p), 0.5, 1.0))


def bit_correlation_matrix(samples: np.ndarray) -> np.ndarray:
    """Pearson correlation between bit positions across a population.

    Systematic (spatially correlated) variation shows up as off-diagonal
    structure — the §III-B symptom the entropy distiller removes.
    Constant positions yield zero correlation rather than NaN.
    """
    samples = np.atleast_2d(np.asarray(samples, dtype=float))
    if samples.shape[0] < 2:
        raise ValueError("need at least two devices")
    centred = samples - samples.mean(axis=0)
    std = centred.std(axis=0)
    std[std == 0] = np.inf
    normalised = centred / std
    return normalised.T @ normalised / samples.shape[0]


def fractional_hamming_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Fraction of differing bit positions between two vectors."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError("vectors must have equal length")
    if a.size == 0:
        return 0.0
    return float(np.mean(a != b))


def inter_device_distances(samples: np.ndarray) -> np.ndarray:
    """All pairwise fractional Hamming distances across a population.

    Ideal uniqueness puts the distribution at mean 0.5.
    """
    samples = np.atleast_2d(np.asarray(samples))
    count = samples.shape[0]
    distances: List[float] = []
    for i in range(count):
        for j in range(i + 1, count):
            distances.append(
                fractional_hamming_distance(samples[i], samples[j]))
    return np.array(distances)


def intra_device_distances(reference: np.ndarray,
                           reads: np.ndarray) -> np.ndarray:
    """Fractional distances of repeated reads from one device's reference.

    Ideal reliability puts the distribution near 0.
    """
    reference = np.asarray(reference)
    reads = np.atleast_2d(np.asarray(reads))
    return np.array([fractional_hamming_distance(reference, read)
                     for read in reads])


def extraction_summary(n_ros: int,
                       bits_per_construction: Dict[str, int]
                       ) -> Dict[str, Dict[str, float]]:
    """How much of the ``log2(N!)`` budget each construction extracts."""
    budget = permutation_entropy(n_ros)
    summary: Dict[str, Dict[str, float]] = {}
    for name, bits in bits_per_construction.items():
        summary[name] = {
            "bits": float(bits),
            "budget_bits": budget,
            "fraction": float(bits) / budget if budget else 0.0,
        }
    return summary


def leaked_parity_count(n_coop: int) -> int:
    """Structural leakage of the temperature-aware masking constraints.

    Every cooperation record publicly asserts the linear relation
    ``r_coop ⊕ r_good ⊕ r_assist = 0`` — one parity bit of key
    information per cooperating pair, before any active attack.
    """
    if n_coop < 0:
        raise ValueError("n_coop must be non-negative")
    return n_coop
