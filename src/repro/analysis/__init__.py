"""Entropy, reliability and statistics toolbox."""

from repro.analysis.entropy import (
    bit_bias,
    bit_correlation_matrix,
    extraction_summary,
    fractional_hamming_distance,
    inter_device_distances,
    intra_device_distances,
    leaked_parity_count,
    min_entropy_per_bit,
    pairwise_comparisons,
    permutation_entropy,
    shannon_entropy_per_bit,
)
from repro.analysis.reliability import (
    ecc_failure_probability,
    empirical_bit_error_rate,
    failure_rate_gap,
    flip_probability,
    gaussian_cdf,
    pair_flip_probabilities,
    poisson_binomial_pmf,
)
from repro.analysis.stats import (
    SummaryStats,
    expected_queries_per_relation,
    histogram,
    hoeffding_bound,
    wilson_interval,
)

__all__ = [
    "bit_bias",
    "bit_correlation_matrix",
    "extraction_summary",
    "fractional_hamming_distance",
    "inter_device_distances",
    "intra_device_distances",
    "leaked_parity_count",
    "min_entropy_per_bit",
    "pairwise_comparisons",
    "permutation_entropy",
    "shannon_entropy_per_bit",
    "ecc_failure_probability",
    "empirical_bit_error_rate",
    "failure_rate_gap",
    "flip_probability",
    "gaussian_cdf",
    "pair_flip_probabilities",
    "poisson_binomial_pmf",
    "SummaryStats",
    "expected_queries_per_relation",
    "histogram",
    "hoeffding_bound",
    "wilson_interval",
]
