"""Statistical utilities for attack-cost accounting and benches."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np


def hoeffding_bound(samples: int, confidence: float) -> float:
    """Two-sided Hoeffding deviation bound for a Bernoulli mean."""
    if samples < 1:
        raise ValueError("need at least one sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    delta = 1.0 - confidence
    return math.sqrt(math.log(2.0 / delta) / (2.0 * samples))


def wilson_interval(failures: int, samples: int,
                    confidence: float = 0.95) -> Tuple[float, float]:
    """Wilson score interval for an observed failure rate."""
    if samples < 1:
        raise ValueError("need at least one sample")
    if not 0 <= failures <= samples:
        raise ValueError("failures outside [0, samples]")
    # Normal quantile via the inverse error function expansion at the
    # usual confidence levels; generic approximation is sufficient here.
    z = math.sqrt(2.0) * _erfinv(confidence)
    p = failures / samples
    denom = 1.0 + z * z / samples
    centre = (p + z * z / (2 * samples)) / denom
    margin = (z / denom) * math.sqrt(
        p * (1 - p) / samples + z * z / (4 * samples * samples))
    return max(0.0, centre - margin), min(1.0, centre + margin)


def _erfinv(y: float) -> float:
    """Inverse error function (Winitzki's approximation, ~1e-3 accurate)."""
    if not -1.0 < y < 1.0:
        raise ValueError("erfinv domain is (-1, 1)")
    a = 0.147
    ln_term = math.log(1.0 - y * y)
    first = 2.0 / (math.pi * a) + ln_term / 2.0
    return math.copysign(
        math.sqrt(math.sqrt(first * first - ln_term / a) - first), y)


def expected_queries_per_relation(p_low: float, p_high: float,
                                  confidence: float = 0.999,
                                  max_per_side: int = 40) -> float:
    """Expected paired-comparison cost to separate two failure rates.

    Smallest sample size at which the rate gap exceeds the Hoeffding
    criterion (doubled, as the comparer bounds both arms), capped at the
    budget.  Returns the *total* queries (two per paired sample).
    """
    gap = abs(p_high - p_low)
    if gap == 0.0:
        return 2.0 * max_per_side
    for samples in range(1, max_per_side + 1):
        if gap > 2.0 * hoeffding_bound(samples, confidence):
            return 2.0 * samples
    return 2.0 * max_per_side


@dataclass(frozen=True)
class SummaryStats:
    """Five-number style summary used by the bench tables."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "SummaryStats":
        """Summary statistics of a sample sequence (NaNs when empty)."""
        arr = np.asarray(list(samples), dtype=float)
        if arr.size == 0:
            return cls(float("nan"), float("nan"), float("nan"),
                       float("nan"), 0)
        return cls(float(arr.mean()), float(arr.std()),
                   float(arr.min()), float(arr.max()), int(arr.size))

    def as_row(self) -> Dict[str, float]:
        """The statistics as a ``{name: value}`` report row."""
        return {"mean": self.mean, "std": self.std, "min": self.minimum,
                "max": self.maximum, "n": self.count}


def histogram(samples: Sequence[float], bins: int = 20
              ) -> Tuple[np.ndarray, np.ndarray]:
    """Normalised histogram (densities, edges) for PDF-style plots."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one sample")
    densities, edges = np.histogram(arr, bins=bins, density=True)
    return densities, edges
