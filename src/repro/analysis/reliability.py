"""Reliability modelling: bit-error rates and ECC failure probabilities.

Provides the analytic counterparts of the Fig. 5 simulation: per-bit
flip probabilities from frequency margins, the Poisson-binomial PMF of
the error count at the ECC input, and the resulting key-failure rate
``P[#errors > t]``.
"""

from __future__ import annotations

from math import erf, sqrt
from typing import Callable, Sequence

import numpy as np


def gaussian_cdf(value: float) -> float:
    """Standard normal CDF via the error function."""
    return 0.5 * (1.0 + erf(value / sqrt(2.0)))


def flip_probability(delta: float, sigma_noise: float) -> float:
    """Probability that measurement noise flips a pairwise comparison.

    The comparison ``f_a + n_a > f_b + n_b`` flips when the noise
    difference (std ``sigma_noise * sqrt(2)``) exceeds the nominal
    margin ``|delta|``.  The larger the margin, the more reliable the
    bit — the monotonicity every §IV selection scheme exploits.
    """
    if sigma_noise < 0:
        raise ValueError("sigma_noise must be non-negative")
    if sigma_noise == 0:
        return 0.0 if delta != 0 else 0.5
    return gaussian_cdf(-abs(delta) / (sigma_noise * sqrt(2.0)))


def pair_flip_probabilities(deltas: Sequence[float],
                            sigma_noise: float) -> np.ndarray:
    """Vector version of :func:`flip_probability`."""
    return np.array([flip_probability(d, sigma_noise) for d in deltas])


def poisson_binomial_pmf(probs: Sequence[float]) -> np.ndarray:
    """PMF of the number of successes of independent Bernoulli trials.

    Dynamic-programming convolution, exact up to float error.  This is
    the error-count PDF at the ECC input for independent bit flips; the
    paper notes a binomial approximation suffices for large blocks but
    the attacks do not rely on it — neither do we.
    """
    pmf = np.array([1.0])
    for p in probs:
        if not 0.0 <= p <= 1.0:
            raise ValueError("probabilities must be within [0, 1]")
        extended = np.zeros(pmf.shape[0] + 1)
        extended[:-1] += pmf * (1.0 - p)
        extended[1:] += pmf * p
        pmf = extended
    return pmf


def ecc_failure_probability(probs: Sequence[float], t: int) -> float:
    """``P[#errors > t]`` for independent per-bit flip probabilities."""
    if t < 0:
        raise ValueError("t must be non-negative")
    pmf = poisson_binomial_pmf(probs)
    return float(pmf[t + 1:].sum())


def failure_rate_gap(probs: Sequence[float], t: int,
                     injected: int, extra_errors: int = 2) -> float:
    """Analytic Fig. 5 separation between two hypotheses.

    Failure rate with ``injected + extra_errors`` deterministic errors
    minus the rate with ``injected`` alone — the distinguishing signal a
    helper-data manipulation produces when the hypothesis is wrong.
    Deterministic errors consume correction capability one-for-one.
    """
    def tail(budget: int) -> float:
        if budget < 0:
            return 1.0
        return ecc_failure_probability(probs, budget)

    return tail(t - injected - extra_errors) - tail(t - injected)


def empirical_bit_error_rate(sample: Callable[[], np.ndarray],
                             reference: np.ndarray,
                             trials: int = 100) -> np.ndarray:
    """Monte-Carlo per-bit error rate of a response source.

    *sample* produces one fresh response read; rates are averaged
    against *reference* over *trials* reads.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    reference = np.asarray(reference)
    acc = np.zeros(reference.shape[0], dtype=float)
    for _ in range(trials):
        read = np.asarray(sample())
        if read.shape != reference.shape:
            raise ValueError("sample shape changed between reads")
        acc += (read != reference)
    return acc / trials
