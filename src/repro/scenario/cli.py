"""``repro scenario`` subcommand handlers.

Wires the environment & lifecycle scenario engine into the top-level
CLI::

    repro scenario run --scheme S --family F [--perturbation P] ...
    repro scenario corpus generate [--out DIR] [--seed N] [--quick]
    repro scenario conformance [--corpus DIR] [--quick]
                               [--check-reproducible]
                               [--store PATH] [--summary PATH]
                               [--report PATH] [--resume]
                               [--stop-after N]

``conformance`` checkpoints like ``warehouse run``: with ``--store``,
each case's record is appended the moment the case finishes, and
``--resume`` skips cases already recorded for this ``(commit,
config_hash, schema)`` — the configuration hash always covers the
full (quick-sliced) corpus, so an interrupted run and its completion
share the key.  ``--stop-after N`` is the deterministic interruption
(exit 3) used by tests and CI.

Kept separate from :mod:`repro.cli` so the argument surface and the
handlers live next to the subsystem they drive; the top-level parser
only delegates (same split as :mod:`repro.warehouse.cli`).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.scenario.conformance import (
    DEFAULT_CORPUS_DIR,
    CorpusFormatError,
    case_record,
    corpus_config,
    load_corpus,
    run_conformance,
    summary_entry,
)
from repro.scenario.corpus import (
    FAMILIES,
    PERTURBATIONS,
    SCHEMES,
    ScenarioCase,
    build_corpus,
    expected_bands,
    full_corpus,
    quick_corpus,
    run_case,
)
from repro.warehouse.cli import detect_commit
from repro.warehouse.store import WarehouseStore, config_hash
from repro.warehouse.summary import append_entry


def add_scenario_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``scenario`` subcommand tree on *sub*."""
    scenario = sub.add_parser(
        "scenario",
        help="environment & lifecycle scenario engine")
    ssub = scenario.add_subparsers(dest="scenario_command",
                                   required=True)

    run = ssub.add_parser(
        "run", help="run one scenario cell and print its metrics")
    run.add_argument("--scheme", required=True, choices=SCHEMES)
    run.add_argument("--family", required=True, choices=FAMILIES,
                     help="trajectory family")
    run.add_argument("--perturbation", default="base",
                     choices=sorted(PERTURBATIONS))
    run.add_argument("--kind", default="failure",
                     choices=("failure", "attack"),
                     help="failure-rate campaign or full attack")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--devices", type=int, default=2)
    run.add_argument("--trials", type=int, default=64,
                     help="reconstruction attempts per device "
                          "(failure cells)")

    corpus = ssub.add_parser(
        "corpus", help="conformance corpus management")
    csub = corpus.add_subparsers(dest="corpus_command",
                                 required=True)
    generate = csub.add_parser(
        "generate",
        help="run seeded baselines and write corpus files")
    generate.add_argument("--out", default=DEFAULT_CORPUS_DIR,
                          metavar="DIR",
                          help=f"output directory (default "
                               f"{DEFAULT_CORPUS_DIR})")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--quick", action="store_true",
                          help="only the quick (CI smoke) slice")

    conformance = ssub.add_parser(
        "conformance",
        help="re-run the committed corpus and assert in-band")
    conformance.add_argument("--corpus", default=DEFAULT_CORPUS_DIR,
                             metavar="DIR",
                             help=f"corpus directory (default "
                                  f"{DEFAULT_CORPUS_DIR})")
    conformance.add_argument("--quick", action="store_true",
                             help="only cells marked quick "
                                  "(CI smoke profile)")
    conformance.add_argument("--check-reproducible",
                             action="store_true",
                             help="run every cell twice and fail "
                                  "unless identity fingerprints "
                                  "match bitwise")
    conformance.add_argument("--store", default=None, metavar="PATH",
                             help="append warehouse records to this "
                                  "JSONL store")
    conformance.add_argument("--summary", default=None,
                             metavar="PATH",
                             help="append this run's entry to a "
                                  "BENCH_*.json trajectory file")
    conformance.add_argument("--report", default=None, metavar="PATH",
                             help="write the full JSON report "
                                  "(CI artifact)")
    conformance.add_argument("--commit", default=None,
                             help="record key commit (default: "
                                  "$GITHUB_SHA or git rev-parse "
                                  "HEAD)")
    conformance.add_argument("--resume", action="store_true",
                             help="skip cases already recorded in "
                                  "--store for this (commit, "
                                  "config, schema)")
    conformance.add_argument("--stop-after", type=int, default=None,
                             metavar="N",
                             help="checkpoint and stop after N "
                                  "executed cases (exit 3; rerun "
                                  "with --resume)")


def run_scenario(args: argparse.Namespace) -> int:
    """Dispatch a parsed ``scenario`` invocation; exit code."""
    handler = {
        "run": _cmd_run,
        "corpus": _cmd_corpus,
        "conformance": _cmd_conformance,
    }[args.scenario_command]
    return handler(args)


def _cmd_run(args: argparse.Namespace) -> int:
    case = ScenarioCase(scheme=args.scheme, family=args.family,
                        perturbation=args.perturbation,
                        kind=args.kind, devices=args.devices,
                        trials=args.trials,
                        noise_scale=PERTURBATIONS[args.perturbation])
    print(f"scenario run: {case.case_id} seed={args.seed} "
          f"devices={case.devices}")
    result = run_case(case, args.seed)
    for name, value in sorted(result.observed.items()):
        print(f"  {name} = {value:.6g}")
    bands = expected_bands(case, result.observed)
    for name, (low, high) in sorted(bands.items()):
        print(f"  band {name} = [{low:.4g}, {high:.4g}]")
    print(f"  fingerprint {result.fingerprint} "
          f"({result.seconds:.2f}s)")
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    cases = quick_corpus() if args.quick else full_corpus()
    print(f"corpus generate: {len(cases)} cells, seed={args.seed} "
          f"-> {args.out}")
    payloads = build_corpus(cases, args.seed, progress=print)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    for scheme, payload in sorted(payloads.items()):
        path = out / f"{scheme}.json"
        path.write_text(json.dumps(payload, indent=1,
                                   sort_keys=True) + "\n",
                        encoding="utf-8")
        print(f"  wrote {path} ({len(payload['cases'])} cells)")
    return 0


def _cmd_conformance(args: argparse.Namespace) -> int:
    if args.resume and not args.store:
        print("scenario conformance: --resume needs --store (the "
              "checkpoint lives in the warehouse store)")
        return 2
    try:
        seed, entries = load_corpus(args.corpus)
    except CorpusFormatError as error:
        print(f"scenario conformance: {error}")
        return 2
    if args.quick:
        entries = [entry for entry in entries if entry.case.quick]
    case_ids = [entry.case.case_id for entry in entries]
    cfg = config_hash(corpus_config(seed, case_ids, args.quick))
    commit = args.commit if args.commit is not None \
        else detect_commit()
    store = WarehouseStore(args.store) if args.store else None
    skip = []
    if args.resume:
        done = store.recorded_cells(commit, cfg)
        skip = [case_id for case_id in case_ids
                if f"scenario/{case_id}" in done]
    profile = "quick" if args.quick else "full"
    print(f"scenario conformance: profile={profile} seed={seed} "
          f"commit={commit[:12]} config={cfg} ({len(case_ids)} "
          f"cells" + (f", {len(skip)} already recorded"
                      if args.resume else "") + ")")

    appended = 0

    def _checkpoint(check) -> None:
        nonlocal appended
        if store is not None:
            store.append([case_record(check, seed, commit, cfg,
                                      args.quick)])
            appended += 1

    try:
        report = run_conformance(
            args.corpus, quick=args.quick,
            check_reproducible=args.check_reproducible,
            progress=print, skip=skip,
            stop_after=args.stop_after, on_check=_checkpoint)
    except CorpusFormatError as error:
        print(f"scenario conformance: {error}")
        return 2
    if store is not None and appended:
        print(f"appended {appended} records to {store.path} "
              f"(config {cfg})")
    if args.report:
        path = Path(args.report)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report.to_payload(), indent=1)
                        + "\n", encoding="utf-8")
        print(f"report written to {path}")
    interrupted = (args.stop_after is not None
                   and len(skip) + len(report.checks)
                   < len(case_ids))
    if interrupted:
        print(f"scenario conformance: stopped after "
              f"{len(report.checks)} case(s) as requested - "
              f"checkpoint saved, rerun with --resume to complete "
              f"the corpus")
        return 3
    if args.summary:
        # The summary covers the whole corpus: on a resumed run the
        # checkpointed records come back out of the store.
        if store is not None:
            stored = store.matrix(commit, cfg)
            records = [stored[f"scenario/{case_id}"]
                       for case_id in case_ids
                       if f"scenario/{case_id}" in stored]
        else:
            records = [case_record(check, seed, commit, cfg,
                                   args.quick)
                       for check in report.checks]
        if records:
            entry = summary_entry(records, commit, args.quick)
            payload = append_entry(args.summary, entry)
            print(f"summary entry "
                  f"#{payload['history'][-1]['sequence']} appended "
                  f"to {args.summary}")
    if not report.ok:
        print(f"scenario conformance: {len(report.failures)} "
              f"cell(s) out of band or not reproducible")
        return 1
    print("scenario conformance: ok - every cell in its pass-band"
          + (" and bitwise-reproducible"
             if args.check_reproducible else ""))
    return 0
