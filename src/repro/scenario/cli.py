"""``repro scenario`` subcommand handlers.

Wires the environment & lifecycle scenario engine into the top-level
CLI::

    repro scenario run --scheme S --family F [--perturbation P] ...
    repro scenario corpus generate [--out DIR] [--seed N] [--quick]
    repro scenario conformance [--corpus DIR] [--quick]
                               [--check-reproducible]
                               [--store PATH] [--summary PATH]
                               [--report PATH]

Kept separate from :mod:`repro.cli` so the argument surface and the
handlers live next to the subsystem they drive; the top-level parser
only delegates (same split as :mod:`repro.warehouse.cli`).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.scenario.conformance import (
    DEFAULT_CORPUS_DIR,
    CorpusFormatError,
    run_conformance,
    summary_entry,
    warehouse_records,
)
from repro.scenario.corpus import (
    FAMILIES,
    PERTURBATIONS,
    SCHEMES,
    ScenarioCase,
    build_corpus,
    expected_bands,
    full_corpus,
    quick_corpus,
    run_case,
)
from repro.warehouse.cli import detect_commit
from repro.warehouse.store import WarehouseStore
from repro.warehouse.summary import append_entry


def add_scenario_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``scenario`` subcommand tree on *sub*."""
    scenario = sub.add_parser(
        "scenario",
        help="environment & lifecycle scenario engine")
    ssub = scenario.add_subparsers(dest="scenario_command",
                                   required=True)

    run = ssub.add_parser(
        "run", help="run one scenario cell and print its metrics")
    run.add_argument("--scheme", required=True, choices=SCHEMES)
    run.add_argument("--family", required=True, choices=FAMILIES,
                     help="trajectory family")
    run.add_argument("--perturbation", default="base",
                     choices=sorted(PERTURBATIONS))
    run.add_argument("--kind", default="failure",
                     choices=("failure", "attack"),
                     help="failure-rate campaign or full attack")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--devices", type=int, default=2)
    run.add_argument("--trials", type=int, default=64,
                     help="reconstruction attempts per device "
                          "(failure cells)")

    corpus = ssub.add_parser(
        "corpus", help="conformance corpus management")
    csub = corpus.add_subparsers(dest="corpus_command",
                                 required=True)
    generate = csub.add_parser(
        "generate",
        help="run seeded baselines and write corpus files")
    generate.add_argument("--out", default=DEFAULT_CORPUS_DIR,
                          metavar="DIR",
                          help=f"output directory (default "
                               f"{DEFAULT_CORPUS_DIR})")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--quick", action="store_true",
                          help="only the quick (CI smoke) slice")

    conformance = ssub.add_parser(
        "conformance",
        help="re-run the committed corpus and assert in-band")
    conformance.add_argument("--corpus", default=DEFAULT_CORPUS_DIR,
                             metavar="DIR",
                             help=f"corpus directory (default "
                                  f"{DEFAULT_CORPUS_DIR})")
    conformance.add_argument("--quick", action="store_true",
                             help="only cells marked quick "
                                  "(CI smoke profile)")
    conformance.add_argument("--check-reproducible",
                             action="store_true",
                             help="run every cell twice and fail "
                                  "unless identity fingerprints "
                                  "match bitwise")
    conformance.add_argument("--store", default=None, metavar="PATH",
                             help="append warehouse records to this "
                                  "JSONL store")
    conformance.add_argument("--summary", default=None,
                             metavar="PATH",
                             help="append this run's entry to a "
                                  "BENCH_*.json trajectory file")
    conformance.add_argument("--report", default=None, metavar="PATH",
                             help="write the full JSON report "
                                  "(CI artifact)")
    conformance.add_argument("--commit", default=None,
                             help="record key commit (default: "
                                  "$GITHUB_SHA or git rev-parse "
                                  "HEAD)")


def run_scenario(args: argparse.Namespace) -> int:
    """Dispatch a parsed ``scenario`` invocation; exit code."""
    handler = {
        "run": _cmd_run,
        "corpus": _cmd_corpus,
        "conformance": _cmd_conformance,
    }[args.scenario_command]
    return handler(args)


def _cmd_run(args: argparse.Namespace) -> int:
    case = ScenarioCase(scheme=args.scheme, family=args.family,
                        perturbation=args.perturbation,
                        kind=args.kind, devices=args.devices,
                        trials=args.trials,
                        noise_scale=PERTURBATIONS[args.perturbation])
    print(f"scenario run: {case.case_id} seed={args.seed} "
          f"devices={case.devices}")
    result = run_case(case, args.seed)
    for name, value in sorted(result.observed.items()):
        print(f"  {name} = {value:.6g}")
    bands = expected_bands(case, result.observed)
    for name, (low, high) in sorted(bands.items()):
        print(f"  band {name} = [{low:.4g}, {high:.4g}]")
    print(f"  fingerprint {result.fingerprint} "
          f"({result.seconds:.2f}s)")
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    cases = quick_corpus() if args.quick else full_corpus()
    print(f"corpus generate: {len(cases)} cells, seed={args.seed} "
          f"-> {args.out}")
    payloads = build_corpus(cases, args.seed, progress=print)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    for scheme, payload in sorted(payloads.items()):
        path = out / f"{scheme}.json"
        path.write_text(json.dumps(payload, indent=1,
                                   sort_keys=True) + "\n",
                        encoding="utf-8")
        print(f"  wrote {path} ({len(payload['cases'])} cells)")
    return 0


def _cmd_conformance(args: argparse.Namespace) -> int:
    try:
        report = run_conformance(
            args.corpus, quick=args.quick,
            check_reproducible=args.check_reproducible,
            progress=print)
    except CorpusFormatError as error:
        print(f"scenario conformance: {error}")
        return 2
    profile = "quick" if args.quick else "full"
    print(f"scenario conformance: profile={profile} "
          f"seed={report.seed} ({len(report.checks)} cells)")
    commit = args.commit if args.commit is not None \
        else detect_commit()
    records = warehouse_records(report, commit, args.quick)
    if args.store and records:
        store = WarehouseStore(args.store)
        appended = store.append(records)
        print(f"appended {appended} records to {store.path} "
              f"(config {records[0]['config_hash']})")
    if args.summary and records:
        entry = summary_entry(records, commit, args.quick)
        payload = append_entry(args.summary, entry)
        print(f"summary entry #{payload['history'][-1]['sequence']} "
              f"appended to {args.summary}")
    if args.report:
        path = Path(args.report)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report.to_payload(), indent=1)
                        + "\n", encoding="utf-8")
        print(f"report written to {path}")
    if not report.ok:
        print(f"scenario conformance: {len(report.failures)} "
              f"cell(s) out of band or not reproducible")
        return 1
    print("scenario conformance: ok - every cell in its pass-band"
          + (" and bitwise-reproducible"
             if args.check_reproducible else ""))
    return 0
