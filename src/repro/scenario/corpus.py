"""The scenario conformance corpus: perturbed campaign grid + bands.

Following the base/variant/expected-answer regression pattern of the
DocuSenseLM RAG question suite (SNIPPETS.md snippet 1), the corpus
is an auto-generated grid of campaign configurations — scheme ×
trajectory family × noise perturbation, plus a handful of full
attack campaigns — whose *expected pass-bands* (failure-rate and
key-recovery envelopes) are computed once from seeded baseline runs
and committed under ``tests/conformance/corpus/``.  The conformance
checker (:mod:`repro.scenario.conformance`) re-runs cells and
asserts results land inside their bands.

Determinism contract (mirroring the warehouse matrix): a case's RNG
roots derive from its *identifier*, never its grid position, so
adding cases never perturbs existing ones; trajectory streams derive
from the same identifier digest, so a case is one self-contained
seeded world.
"""

from __future__ import annotations

import functools
import hashlib
import math
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.fleet import (
    Fleet,
    GroupAttackFactory,
    SequentialAttackFactory,
)
from repro.keygen import (
    DistillerPairingKeyGen,
    FuzzyExtractorKeyGen,
    GroupBasedKeyGen,
    HardenedSequentialKeyGen,
    HardenedTempAwareKeyGen,
    SequentialPairingKeyGen,
    TempAwareKeyGen,
)
from repro.puf import ROArrayParams
from repro.scenario.trajectory import (
    AgingDrift,
    TemperatureCycle,
    TemperatureRamp,
    TrajectorySpec,
    VoltageNoise,
)
from repro.warehouse.store import enrollment_fingerprint, sha256_hex

#: Version of the corpus file layout; bump on any change to the case
#: or band encoding.
CORPUS_SCHEMA_VERSION = 1

#: Scheme geometry: (rows, cols, base sigma_noise).  Small arrays keep
#: every cell fast enough for the CI smoke slice; sigmas are tuned so
#: baseline failure rates sit near (but mostly off) zero while the
#: ``noise_scale=4`` tamper probe saturates well outside every band.
_GEOMETRY: Dict[str, tuple] = {
    "sequential": (8, 16, 150e3),
    "sequential-hardened": (8, 16, 40e3),
    "temp-aware": (8, 16, 90e3),
    "temp-aware-hardened": (8, 16, 90e3),
    "group-based": (4, 10, 64e3),
    "distiller": (4, 10, 80e3),
    "fuzzy": (4, 10, 120e3),
}

SCHEMES = tuple(_GEOMETRY)
FAMILIES = ("constant", "ramp", "cycle", "vnoise", "aging")
#: Noise perturbation applied to the device model, by label.
PERTURBATIONS: Dict[str, float] = {"base": 1.0, "noisy": 1.5}


def _keygen_factory(scheme: str) -> Callable[[], object]:
    """Picklable keygen factory for one corpus scheme."""
    if scheme == "sequential":
        return functools.partial(SequentialPairingKeyGen,
                                 threshold=300e3)
    if scheme == "sequential-hardened":
        # sigma 40e3 with tolerance 0.25 keeps the honest-device
        # false-reject rate near zero while the device-side pair
        # check still fires on manipulated helper data.
        return functools.partial(HardenedSequentialKeyGen,
                                 threshold=300e3,
                                 threshold_tolerance=0.25)
    if scheme == "temp-aware":
        return functools.partial(TempAwareKeyGen, t_min=-10, t_max=80,
                                 threshold=150e3)
    if scheme == "temp-aware-hardened":
        return functools.partial(HardenedTempAwareKeyGen, t_min=-10,
                                 t_max=80, threshold=150e3)
    if scheme == "group-based":
        return functools.partial(GroupBasedKeyGen,
                                 group_threshold=250e3)
    if scheme == "distiller":
        # neighbor-disjoint (not masking): the masked construction
        # discards unreliable bits outright and never fails at any
        # plausible noise level, which would blind the tamper probe.
        return functools.partial(DistillerPairingKeyGen, 4, 10,
                                 pairing_mode="neighbor-disjoint",
                                 k=5)
    if scheme == "fuzzy":
        return functools.partial(FuzzyExtractorKeyGen, 4, 10,
                                 out_bits=16)
    raise ValueError(f"unknown corpus scheme {scheme!r}")


def _attack_factory(scheme: str) -> Callable:
    """Picklable attack factory for the corpus attack cells."""
    if scheme == "sequential":
        return SequentialAttackFactory("paired")
    if scheme == "group-based":
        rows, cols, _ = _GEOMETRY["group-based"]
        return GroupAttackFactory(rows, cols)
    raise ValueError(f"no corpus attack for scheme {scheme!r}")


@dataclass(frozen=True)
class ScenarioCase:
    """One cell of the conformance grid.

    ``noise_scale`` multiplies the device model's measurement-noise
    sigma; the named perturbations map to fixed scales
    (:data:`PERTURBATIONS`), and tests may construct deliberately
    out-of-band variants with arbitrary scales.
    """

    scheme: str
    family: str
    perturbation: str = "base"
    kind: str = "failure"
    quick: bool = False
    devices: int = 2
    trials: int = 64
    noise_scale: float = 1.0

    @property
    def case_id(self) -> str:
        """Stable identifier: kind/scheme/family/perturbation."""
        return (f"{self.kind}/{self.scheme}/{self.family}/"
                f"{self.perturbation}")

    def _digest(self) -> bytes:
        return hashlib.sha256(self.case_id.encode("ascii")).digest()

    def seed_material(self, seed: int) -> List[int]:
        """Entropy for the case's RNG root: run seed + id digest.

        Derived from the case identifier — not its grid position —
        so growing the corpus never perturbs existing cases.
        """
        return [int(seed),
                int.from_bytes(self._digest()[:8], "little")]

    def array_params(self) -> ROArrayParams:
        """The case's device model parameters."""
        rows, cols, sigma_noise = _GEOMETRY[self.scheme]
        return ROArrayParams(rows=rows, cols=cols,
                             sigma_noise=sigma_noise
                             * float(self.noise_scale))

    def trajectory_spec(self) -> TrajectorySpec:
        """The case's trajectory family, seeded from its identifier."""
        traj_seed = int.from_bytes(self._digest()[8:16], "little")
        terms: tuple
        if self.family == "constant":
            terms = ()
        elif self.family == "ramp":
            terms = (TemperatureRamp(0.0, 40.0,
                                     queries=max(self.trials, 2)),)
        elif self.family == "cycle":
            terms = (TemperatureCycle(amplitude=15.0, period=48.0),)
        elif self.family == "vnoise":
            terms = (VoltageNoise(sigma=0.04),)
        elif self.family == "aging":
            terms = (AgingDrift(years=5.0, drift_sigma=40e3),)
        else:
            raise ValueError(
                f"unknown trajectory family {self.family!r}")
        return TrajectorySpec(terms=terms, seed=traj_seed)

    def keygen_factory(self) -> Callable[[], object]:
        """Picklable keygen factory for this case."""
        return _keygen_factory(self.scheme)

    def attack_factory(self) -> Callable:
        """Picklable attack factory (attack cells only)."""
        return _attack_factory(self.scheme)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable case configuration."""
        return {
            "scheme": self.scheme,
            "family": self.family,
            "perturbation": self.perturbation,
            "kind": self.kind,
            "quick": bool(self.quick),
            "devices": int(self.devices),
            "trials": int(self.trials),
            "noise_scale": float(self.noise_scale),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ScenarioCase":
        """Rebuild a case from its corpus-file configuration."""
        return cls(scheme=str(payload["scheme"]),
                   family=str(payload["family"]),
                   perturbation=str(payload["perturbation"]),
                   kind=str(payload["kind"]),
                   quick=bool(payload["quick"]),
                   devices=int(payload["devices"]),
                   trials=int(payload["trials"]),
                   noise_scale=float(payload["noise_scale"]))


def full_corpus() -> List[ScenarioCase]:
    """The complete conformance grid, in stable order.

    Failure cells cover scheme × family × perturbation; the quick
    slice (CI smoke) takes every scheme's constant/base cell, every
    family on the sequential scheme, and one attack campaign.
    """
    cases: List[ScenarioCase] = []
    for scheme in SCHEMES:
        for family in FAMILIES:
            for label, scale in PERTURBATIONS.items():
                quick = (label == "base"
                         and (family == "constant"
                              or scheme == "sequential"))
                cases.append(ScenarioCase(
                    scheme, family, label, "failure", quick,
                    noise_scale=scale))
    cases.append(ScenarioCase("sequential", "constant", "base",
                              "attack", quick=True))
    cases.append(ScenarioCase("sequential", "vnoise", "base",
                              "attack"))
    cases.append(ScenarioCase("group-based", "constant", "base",
                              "attack"))
    cases.append(ScenarioCase("group-based", "ramp", "base",
                              "attack"))
    return cases


def quick_corpus() -> List[ScenarioCase]:
    """The CI smoke slice of :func:`full_corpus`."""
    return [case for case in full_corpus() if case.quick]


@dataclass(frozen=True)
class CaseResult:
    """Outcome of executing one case once."""

    case: ScenarioCase
    observed: Dict[str, float]
    identity: Dict[str, object]
    fingerprint: str
    seconds: float


def run_case(case: ScenarioCase, seed: int) -> CaseResult:
    """Execute one case; deterministic given ``(case, seed)``.

    The identity payload (per-device outcomes + enrollment
    fingerprint) is a pure function of the configuration, so two
    same-seed runs must agree on ``fingerprint`` byte for byte —
    the reproducibility half of the conformance gate.
    """
    root = np.random.default_rng(
        np.random.SeedSequence(case.seed_material(seed)))
    manufacture_rng, enroll_rng = root.spawn(2)
    fleet = Fleet(case.array_params(), size=case.devices,
                  seed=manufacture_rng)
    start = time.perf_counter()
    enrollment = fleet.enroll(case.keygen_factory(), seed=enroll_rng)
    spec = case.trajectory_spec()
    identity: Dict[str, object] = {
        "case": case.case_id,
        "enrollment_fingerprint": enrollment_fingerprint(
            enrollment.helpers, enrollment.keys),
    }
    if case.kind == "failure":
        rates = fleet.failure_rates(enrollment, case.trials,
                                    trajectory=spec)
        observed = {
            "failure_rate_mean": float(np.mean(rates)),
            "failure_rate_max": float(np.max(rates)),
        }
        identity["failures"] = [int(round(rate * case.trials))
                                for rate in rates]
    elif case.kind == "attack":
        recovered, queries = fleet.attack_success(
            enrollment, case.attack_factory(), trajectory=spec)
        observed = {
            "recovery_rate": float(np.mean(recovered)),
            "queries_mean": float(np.mean(queries)),
        }
        identity["recovered_mask"] = [bool(v) for v in recovered]
        identity["queries"] = [int(q) for q in queries]
    else:
        raise ValueError(f"unknown case kind {case.kind!r}")
    seconds = time.perf_counter() - start
    return CaseResult(case, observed, identity,
                      sha256_hex(identity), seconds)


def expected_bands(case: ScenarioCase,
                   observed: Dict[str, float]
                   ) -> Dict[str, List[float]]:
    """Pass-bands around a baseline observation.

    Conformance re-runs are seed-deterministic, so the bands exist
    to absorb *legitimate* movement — cross-platform floating-point
    differences and benign refactors that re-order stream
    consumption — while staying tight enough that a perturbed
    configuration (noise scale, gap years) lands outside.  Rate
    bands widen with the binomial standard error of the estimate;
    query bands are fractional.
    """
    bands: Dict[str, List[float]] = {}
    if case.kind == "failure":
        total = case.trials * case.devices
        mean = observed["failure_rate_mean"]
        margin = max(0.05, 4.0 * math.sqrt(
            max(mean * (1.0 - mean), 1.0 / total) / total))
        bands["failure_rate_mean"] = [max(0.0, mean - margin),
                                      min(1.0, mean + margin)]
        peak = observed["failure_rate_max"]
        margin = max(0.08, 4.0 * math.sqrt(
            max(peak * (1.0 - peak), 1.0 / case.trials)
            / case.trials))
        bands["failure_rate_max"] = [max(0.0, peak - margin),
                                     min(1.0, peak + margin)]
    else:
        rate = observed["recovery_rate"]
        margin = 0.5 / case.devices
        bands["recovery_rate"] = [max(0.0, rate - margin),
                                  min(1.0, rate + margin)]
        queries = observed["queries_mean"]
        bands["queries_mean"] = [queries * 0.65, queries * 1.45]
    return bands


def build_corpus(cases: List[ScenarioCase], seed: int,
                 progress: Optional[Callable[[str], None]] = None
                 ) -> Dict[str, Dict[str, object]]:
    """Run baselines and assemble per-scheme corpus payloads.

    Returns ``{scheme: corpus-file payload}``; each payload carries
    the cases' configurations, expected bands and informational
    baseline observations (including the identity fingerprint, which
    the checker uses for *same-run* reproducibility only — never as
    a cross-commit gate, so benign refactors stay shippable).
    """
    payloads: Dict[str, Dict[str, object]] = {}
    for case in cases:
        result = run_case(case, seed)
        entry = {
            "case": case.to_dict(),
            "expected": {
                "bands": expected_bands(case, result.observed),
                "baseline": dict(result.observed,
                                 fingerprint=result.fingerprint),
            },
        }
        payload = payloads.setdefault(case.scheme, {
            "schema_version": CORPUS_SCHEMA_VERSION,
            "seed": int(seed),
            "scheme": case.scheme,
            "cases": [],
        })
        payload["cases"].append(entry)
        if progress is not None:
            shown = ", ".join(f"{name}={value:.3g}"
                              for name, value in
                              result.observed.items())
            progress(f"  {case.case_id}: {shown} "
                     f"({result.seconds:.2f}s)")
    return payloads


def perturbed_variant(case: ScenarioCase,
                      noise_scale: float = 4.0) -> ScenarioCase:
    """A deliberately out-of-band variant of *case*.

    Used by the conformance self-test: scaling the measurement noise
    this far moves the failure-rate envelope of every scheme outside
    its committed band, so the checker must flag it.
    """
    return replace(case, perturbation="tampered",
                   noise_scale=float(noise_scale))
