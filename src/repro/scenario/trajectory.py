"""Seeded per-device environment & lifecycle trajectories.

The paper's environmental story (§III-A, Fig. 3) is about *change*:
frequencies fall with temperature, rise with supply voltage, and the
per-oscillator slope spread makes pair orderings flip inside the
operating range.  The scalar ``(temperature, voltage)`` operating
point models a chamber pinned at one corner; a *trajectory* models
the ambient a deployed device actually sees — ramps, daily cycles,
supply noise — plus the lifecycle axis: an aging drift that shifts
per-oscillator offsets across the enrollment→reproduction gap.

A :class:`TrajectorySpec` is a frozen, picklable description: a base
operating point plus composable terms.  Building it for a concrete
device yields an :class:`EnvironmentTrajectory` whose
:meth:`~EnvironmentTrajectory.sample` resolves the ambient
``(T, V)`` of any set of *absolute query indices* in one vectorized
pass.  Indexing by absolute query position (not draw order) is what
lets the batched oracle speculate, slice and unwind rows freely —
the ambient a row was measured under travels with the row.

Seeding follows the ``sensor_seed`` discipline of
:mod:`repro.keygen.temp_aware` and the fleet sweep-stream contract
(``docs/fleet.md``): every stochastic term of every device draws
from a dedicated substream derived from ``(domain, spec seed,
device index)`` alone, so trajectories are bitwise-reproducible and
invariant under worker count, chunking and scheduling.  Stochastic
per-query terms materialise their draws lazily but strictly
sequentially (:class:`_StreamCache`), so the value at index ``i``
never depends on which indices were asked for first.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

#: Seed-sequence domain separating trajectory streams from every other
#: stream family in the repo (device manufacture, sweep substreams,
#: sensor seeds).
STREAM_DOMAIN = 0x7261_6A65


@dataclass(frozen=True)
class EnvironmentSample:
    """Resolved ambient conditions of a batch of queries.

    Both fields are ``(B,)`` float vectors aligned with the query
    batch: entry ``i`` is the absolute temperature (°C) / supply
    voltage (V) the ``i``-th row of the batch was measured under.
    """

    temperatures: np.ndarray
    voltages: np.ndarray


class _StreamCache:
    """Lazily materialised per-index draws from one seeded stream.

    Draws are extended strictly sequentially, so ``take(i)`` returns
    the same value no matter in which order (or how often) indices
    are requested — the property that keeps speculating/unwinding
    oracle consumers bitwise-deterministic.
    """

    def __init__(self, rng: np.random.Generator, sigma: float):
        self._rng = rng
        self._sigma = float(sigma)
        self._values = np.empty(0)

    def take(self, indices: np.ndarray) -> np.ndarray:
        """Values at *indices*, drawing forward as far as needed."""
        need = int(indices.max()) + 1 if indices.size else 0
        have = self._values.size
        if need > have:
            fresh = self._rng.normal(scale=self._sigma,
                                     size=need - have)
            self._values = np.concatenate([self._values, fresh])
        return self._values[indices]


# ----------------------------------------------------------------------
# trajectory terms


@dataclass(frozen=True)
class TemperatureRamp:
    """Linear ambient ramp over the first *queries* reconstructions.

    The ambient moves from ``start`` to ``end`` (both °C deltas
    relative to the trajectory's base temperature) across *queries*
    attempts and holds at ``end`` afterwards — the slow thermal
    transient of a device warming into (or out of) its enclosure.
    """

    start: float
    end: float
    queries: int
    stochastic = False

    def __post_init__(self) -> None:
        if self.queries < 1:
            raise ValueError("ramp needs at least one query")

    def deltas(self, indices: np.ndarray, cache: None
               ) -> Tuple[object, object]:
        """Per-index ``(dT, dV)`` contribution of this term."""
        span = max(self.queries - 1, 1)
        frac = np.minimum(indices, self.queries - 1) / span
        return self.start + (self.end - self.start) * frac, 0.0


@dataclass(frozen=True)
class TemperatureCycle:
    """Sinusoidal ambient cycling (diurnal/HVAC temperature swing)."""

    amplitude: float
    period: float
    phase: float = 0.0
    stochastic = False

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("cycle period must be positive")

    def deltas(self, indices: np.ndarray, cache: None
               ) -> Tuple[object, object]:
        """Per-index ``(dT, dV)`` contribution of this term."""
        angle = 2.0 * math.pi * indices / self.period + self.phase
        return self.amplitude * np.sin(angle), 0.0


@dataclass(frozen=True)
class VoltageNoise:
    """Per-query Gaussian supply-voltage jitter (V).

    Each query index carries an independent draw from the device's
    dedicated trajectory substream; the draw at index ``i`` is a
    function of the index alone (see :class:`_StreamCache`).
    """

    sigma: float
    stochastic = True

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("voltage noise sigma must be >= 0")

    def bind(self, rng: np.random.Generator) -> _StreamCache:
        """Per-device state: the term's seeded draw cache."""
        return _StreamCache(rng, self.sigma)

    def deltas(self, indices: np.ndarray, cache: _StreamCache
               ) -> Tuple[object, object]:
        """Per-index ``(dT, dV)`` contribution of this term."""
        return 0.0, cache.take(indices)


@dataclass(frozen=True)
class AgingDrift:
    """Static per-oscillator offset drift across a deployment gap.

    Models NBTI/HCI-style silicon aging between enrollment and
    reproduction: after *years* in the field every oscillator's
    static frequency has shifted by an independent Gaussian offset
    whose standard deviation grows with the square root of the gap
    (``drift_sigma`` Hz per √year).  Unlike the per-query terms this
    is *device state*, not ambient state — the shift applies to every
    measurement, including attacker-controlled operating points.
    """

    years: float
    drift_sigma: float = 40e3
    stochastic = True

    def __post_init__(self) -> None:
        if self.years < 0:
            raise ValueError("aging gap must be >= 0 years")
        if self.drift_sigma < 0:
            raise ValueError("drift_sigma must be >= 0")

    def shift(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """The device's aged per-oscillator offset vector (Hz)."""
        scale = self.drift_sigma * math.sqrt(self.years)
        return rng.normal(scale=scale, size=int(n))


class EnvironmentTrajectory:
    """One device's built trajectory: query index → ambient + aging.

    Built by :meth:`TrajectorySpec.build`; holds the device's bound
    term states (seeded stream caches) and answers two questions:

    * :meth:`sample` — the absolute ambient ``(T, V)`` of a batch of
      query indices, resolved vectorized;
    * :meth:`oscillator_shift` — the static aged offset of every
      oscillator, or ``None`` when the spec has no lifecycle term.

    Instances are stateful (lazy stream caches) but picklable, and
    follow the fleet copy-on-dispatch rule: a pickled copy replays
    the same draws because extension is strictly sequential from the
    seeded stream.
    """

    def __init__(self, spec: "TrajectorySpec", base_temperature: float,
                 base_voltage: float, per_query: list,
                 aging: list):
        self._spec = spec
        self._base_temperature = float(base_temperature)
        self._base_voltage = float(base_voltage)
        self._per_query = per_query
        self._aging = aging
        self._shift: Optional[np.ndarray] = None
        self._shift_n: Optional[int] = None

    @property
    def spec(self) -> "TrajectorySpec":
        """The frozen spec this trajectory was built from."""
        return self._spec

    @property
    def base_temperature(self) -> float:
        """Base ambient temperature (°C) before term contributions."""
        return self._base_temperature

    @property
    def base_voltage(self) -> float:
        """Base supply voltage (V) before term contributions."""
        return self._base_voltage

    @property
    def has_aging(self) -> bool:
        """Whether the spec carries a lifecycle (aging) term."""
        return bool(self._aging)

    def sample(self, indices: np.ndarray) -> EnvironmentSample:
        """Ambient ``(T, V)`` of the given absolute query indices.

        *indices* is any integer vector; repeated and out-of-order
        indices are fine and resolve to identical values.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and int(indices.min()) < 0:
            raise ValueError("query indices must be non-negative")
        temps = np.full(indices.shape, self._base_temperature,
                        dtype=float)
        volts = np.full(indices.shape, self._base_voltage,
                        dtype=float)
        for term, state in self._per_query:
            d_temp, d_volt = term.deltas(indices, state)
            temps = temps + d_temp
            volts = volts + d_volt
        return EnvironmentSample(temps, volts)

    def oscillator_shift(self, n: int) -> Optional[np.ndarray]:
        """Aged static offset (Hz) of each of *n* oscillators.

        Drawn once per device from the aging term's substream and
        cached; ``None`` when the spec has no aging term, so callers
        can skip the add entirely (keeping the no-aging path bitwise
        identical to the scalar one).
        """
        if not self._aging:
            return None
        if self._shift is None:
            total = np.zeros(int(n))
            for term, rng in self._aging:
                total = total + term.shift(n, rng)
            self._shift = total
            self._shift_n = int(n)
        elif self._shift_n != int(n):
            raise ValueError(
                f"trajectory already aged for n={self._shift_n}, "
                f"asked for n={n}")
        return self._shift


@dataclass(frozen=True)
class TrajectorySpec:
    """Frozen, picklable description of an environment trajectory.

    Parameters
    ----------
    temperature, voltage:
        Base operating point; ``None`` resolves to the device
        parameters' nominal values at build time, so a bare
        ``TrajectorySpec()`` is the constant-nominal trajectory.
    terms:
        Composable term tuple (ramps, cycles, noise, aging); per-query
        deltas add on top of the base point in term order.
    seed:
        Root of the spec's stream family.  Device *i*'s substreams
        derive from ``(STREAM_DOMAIN, seed, i)`` only — independent
        of fleet size, worker count and call order.
    """

    temperature: Optional[float] = None
    voltage: Optional[float] = None
    terms: Tuple[object, ...] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "terms", tuple(self.terms))

    @classmethod
    def constant(cls, temperature: Optional[float] = None,
                 voltage: Optional[float] = None,
                 seed: int = 0) -> "TrajectorySpec":
        """A term-free trajectory pinned at one operating point."""
        return cls(temperature=temperature, voltage=voltage,
                   terms=(), seed=seed)

    def build(self, params, device_index: int) -> EnvironmentTrajectory:
        """Bind the spec to one device of a population.

        *params* supplies the nominal operating point (any object
        with ``temp_nominal`` / ``v_nominal``, i.e.
        :class:`~repro.puf.parameters.ROArrayParams`).  Stochastic
        terms receive substreams spawned — in term order — from the
        device's own root, so a device's trajectory is identical no
        matter how many siblings are built or in which order.
        """
        root = np.random.default_rng(np.random.SeedSequence(
            [STREAM_DOMAIN, int(self.seed), int(device_index)]))
        stochastic = [term for term in self.terms if term.stochastic]
        streams = list(root.spawn(len(stochastic))) if stochastic \
            else []
        per_query = []
        aging = []
        for term in self.terms:
            rng = streams.pop(0) if term.stochastic else None
            if isinstance(term, AgingDrift):
                aging.append((term, rng))
            else:
                state = term.bind(rng) if term.stochastic else None
                per_query.append((term, state))
        base_temp = (self.temperature if self.temperature is not None
                     else params.temp_nominal)
        base_volt = (self.voltage if self.voltage is not None
                     else params.v_nominal)
        return EnvironmentTrajectory(self, base_temp, base_volt,
                                     per_query, aging)

    def describe(self) -> str:
        """One-line human summary (CLI and conformance reports)."""
        parts = []
        if self.temperature is not None:
            parts.append(f"T={self.temperature:g}C")
        if self.voltage is not None:
            parts.append(f"V={self.voltage:g}V")
        for term in self.terms:
            parts.append(type(term).__name__)
        return "+".join(parts) if parts else "constant-nominal"
