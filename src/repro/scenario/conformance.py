"""Conformance checker: re-run corpus cells, assert in-band results.

The committed corpus (``tests/conformance/corpus/*.json``) turns the
scenario engine into an executable regression oracle: every cell
re-runs its seeded campaign and must land inside its committed
failure-rate / key-recovery pass-band.  Two further gates harden the
suite:

* **Reproducibility** — ``--check-reproducible`` runs every checked
  cell twice and requires bitwise-identical identity fingerprints
  *within the run* (never against the committed baseline, so benign
  refactors that legitimately re-order stream consumption remain
  shippable; the committed fingerprint is informational).
* **Warehouse wiring** — conformance runs condense into warehouse
  records and a ``BENCH_scenarios.json`` summary entry, so the
  longitudinal trajectory (``tools/bench_compare.py --trajectory``)
  tracks scenario envelopes commit over commit alongside the attack
  matrix.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.scenario.corpus import (
    CORPUS_SCHEMA_VERSION,
    CaseResult,
    ScenarioCase,
    run_case,
)
from repro.warehouse.store import SCHEMA_VERSION, config_hash

#: Default location of the committed corpus, relative to the repo
#: root.
DEFAULT_CORPUS_DIR = "tests/conformance/corpus"


class CorpusFormatError(ValueError):
    """A corpus file violates the expected layout."""


@dataclass(frozen=True)
class CorpusEntry:
    """One committed cell: configuration + expected envelope."""

    case: ScenarioCase
    bands: Dict[str, List[float]]
    baseline: Dict[str, object]


def load_corpus(directory) -> Tuple[int, List[CorpusEntry]]:
    """Parse every ``*.json`` corpus file under *directory*.

    Returns ``(seed, entries)``; all files must agree on the seed
    and schema version (one corpus is one seeded world).
    """
    directory = Path(directory)
    paths = sorted(directory.glob("*.json"))
    if not paths:
        raise CorpusFormatError(
            f"no corpus files under {directory}")
    seed: Optional[int] = None
    entries: List[CorpusEntry] = []
    for path in paths:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise CorpusFormatError(
                f"{path}: not valid JSON ({error})") from None
        if not isinstance(payload, dict):
            raise CorpusFormatError(f"{path}: not an object")
        version = payload.get("schema_version")
        if version != CORPUS_SCHEMA_VERSION:
            raise CorpusFormatError(
                f"{path}: schema v{version!r}, expected "
                f"v{CORPUS_SCHEMA_VERSION}")
        file_seed = int(payload.get("seed", 0))
        if seed is None:
            seed = file_seed
        elif seed != file_seed:
            raise CorpusFormatError(
                f"{path}: seed {file_seed} disagrees with {seed}")
        for position, item in enumerate(payload.get("cases", [])):
            try:
                case = ScenarioCase.from_dict(item["case"])
                expected = item["expected"]
                bands = {name: [float(low), float(high)]
                         for name, (low, high)
                         in expected["bands"].items()}
                baseline = dict(expected["baseline"])
            except (KeyError, TypeError, ValueError) as error:
                raise CorpusFormatError(
                    f"{path}: cases[{position}] malformed "
                    f"({error})") from None
            entries.append(CorpusEntry(case, bands, baseline))
    return int(seed), entries


@dataclass(frozen=True)
class CaseCheck:
    """Verdict of re-running one committed cell."""

    entry: CorpusEntry
    result: CaseResult
    violations: Tuple[str, ...]
    #: Second-run fingerprint under ``--check-reproducible``
    #: (``None`` when the replay was skipped).
    replay_fingerprint: Optional[str] = None

    @property
    def ok(self) -> bool:
        """In-band and (when replayed) bitwise-reproducible."""
        return not self.violations and self.reproducible

    @property
    def reproducible(self) -> bool:
        """Whether the replay (if any) reproduced the identity."""
        return (self.replay_fingerprint is None
                or self.replay_fingerprint
                == self.result.fingerprint)


@dataclass
class ConformanceReport:
    """Aggregate verdict of one conformance run."""

    seed: int
    checks: List[CaseCheck] = field(default_factory=list)
    #: Case ids skipped by checkpoint/resume (already recorded for
    #: this run key in the warehouse store).
    skipped: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Every cell in-band and reproducible."""
        return all(check.ok for check in self.checks)

    @property
    def failures(self) -> List[CaseCheck]:
        """The cells that missed their band or drifted on replay."""
        return [check for check in self.checks if not check.ok]

    def lines(self) -> List[str]:
        """Human-readable per-cell report lines."""
        out: List[str] = []
        for check in self.checks:
            case = check.entry.case
            shown = ", ".join(f"{name}={value:.3g}"
                              for name, value
                              in check.result.observed.items())
            status = "ok" if check.ok else "FAIL"
            out.append(f"  {status:<5}{case.case_id}: {shown} "
                       f"({check.result.seconds:.2f}s)")
            for violation in check.violations:
                out.append(f"        out-of-band: {violation}")
            if not check.reproducible:
                out.append("        NOT REPRODUCIBLE: identity "
                           "fingerprint drifted between two "
                           "same-seed runs")
        return out

    def to_payload(self) -> Dict[str, object]:
        """JSON-serialisable report (the CI artifact)."""
        return {
            "schema_version": CORPUS_SCHEMA_VERSION,
            "seed": int(self.seed),
            "ok": bool(self.ok),
            "skipped": list(self.skipped),
            "cells": [
                {
                    "case": check.entry.case.to_dict(),
                    "observed": check.result.observed,
                    "bands": check.entry.bands,
                    "violations": list(check.violations),
                    "fingerprint": check.result.fingerprint,
                    "reproducible": bool(check.reproducible),
                    "seconds": check.result.seconds,
                    "ok": bool(check.ok),
                }
                for check in self.checks
            ],
        }


def band_violations(entry: CorpusEntry,
                    observed: Dict[str, float]) -> List[str]:
    """Which observed metrics fall outside their committed band."""
    violations: List[str] = []
    for name, (low, high) in sorted(entry.bands.items()):
        value = observed.get(name)
        if value is None:
            violations.append(f"{name} missing from observation")
        elif not (low <= value <= high):
            violations.append(
                f"{name}={value:.4g} outside [{low:.4g}, "
                f"{high:.4g}]")
    return violations


def check_entry(entry: CorpusEntry, seed: int,
                check_reproducible: bool = False) -> CaseCheck:
    """Re-run one committed cell and compare against its envelope."""
    result = run_case(entry.case, seed)
    replay = (run_case(entry.case, seed).fingerprint
              if check_reproducible else None)
    return CaseCheck(entry, result,
                     tuple(band_violations(entry, result.observed)),
                     replay)


def run_conformance(directory, quick: bool = False,
                    check_reproducible: bool = False,
                    progress: Optional[Callable[[str], None]] = None,
                    skip: Optional[Sequence[str]] = None,
                    stop_after: Optional[int] = None,
                    on_check: Optional[
                        Callable[[CaseCheck], None]] = None
                    ) -> ConformanceReport:
    """Check (the quick slice of) the committed corpus.

    *skip* lists case ids to leave out (checkpoint/resume: cases
    already recorded in the warehouse store for this run key); they
    appear in the report's ``skipped`` list.  *stop_after* ends the
    run after that many executed cases — the deterministic
    interruption used to test resume.  *on_check* receives each
    verdict as soon as its case finishes (the incremental-append
    checkpoint hook).
    """
    seed, entries = load_corpus(directory)
    if quick:
        entries = [entry for entry in entries if entry.case.quick]
    skipped = frozenset(skip) if skip is not None else frozenset()
    report = ConformanceReport(seed)
    executed = 0
    for entry in entries:
        if entry.case.case_id in skipped:
            report.skipped.append(entry.case.case_id)
            continue
        if stop_after is not None and executed >= stop_after:
            break
        check = check_entry(entry, seed, check_reproducible)
        report.checks.append(check)
        executed += 1
        if on_check is not None:
            on_check(check)
        if progress is not None:
            for line in ConformanceReport(
                    seed, [check]).lines():
                progress(line)
    return report


def _timestamp() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def corpus_config(seed: int, case_ids: Sequence[str],
                  quick: bool) -> Dict[str, object]:
    """The configuration dict whose hash keys a run's records.

    *case_ids* must list the **full** (quick-sliced) corpus, not just
    the cases a particular run executed: an interrupted run and its
    ``--resume`` completion then share the hash, which is what lets
    resume find the checkpointed records.
    """
    return {
        "schema_version": SCHEMA_VERSION,
        "corpus_schema": CORPUS_SCHEMA_VERSION,
        "profile": "quick" if quick else "full",
        "seed": int(seed),
        "cells": list(case_ids),
    }


def conformance_config(report: ConformanceReport,
                       quick: bool) -> Dict[str, object]:
    """Run-key configuration derived from a completed report."""
    return corpus_config(
        report.seed,
        [check.entry.case.case_id for check in report.checks],
        quick)


def case_record(check: CaseCheck, seed: int, commit: str,
                cfg: str, quick: bool) -> Dict[str, object]:
    """One case verdict as a warehouse store record.

    Cells are namespaced ``scenario/<case id>`` so they live beside
    the attack-matrix cells without colliding; the security layer
    reuses the summary vocabulary (``recovery_rate`` is the
    key-regeneration success rate for failure cells) so the
    longitudinal trajectory renders scenario envelopes unchanged.
    """
    case = check.entry.case
    observed = check.result.observed
    if case.kind == "failure":
        recovery = 1.0 - float(observed["failure_rate_mean"])
        queries_mean = float(case.trials)
    else:
        recovery = float(observed["recovery_rate"])
        queries_mean = float(observed["queries_mean"])
    return {
        "schema_version": SCHEMA_VERSION,
        "commit": str(commit),
        "config_hash": str(cfg),
        "cell": f"scenario/{case.case_id}",
        "scheme": case.scheme,
        "attack": case.kind,
        "countermeasure": "none",
        "variant": case.family,
        "status": "ok" if check.ok else "out-of-band",
        "reason": "; ".join(check.violations),
        "engine": "trajectory",
        "config": dict(case.to_dict(), seed=int(seed)),
        "security": {
            "devices": int(case.devices),
            "recovery_rate": recovery,
            "queries_mean": queries_mean,
            "observed": dict(observed),
            "outcome_fingerprint": check.result.fingerprint,
        },
        "perf": {
            "attack_seconds": float(check.result.seconds),
            "kernel_seconds": 0.0,
            "kernel_calls": 0,
        },
        "meta": {"created": _timestamp()},
    }


def warehouse_records(report: ConformanceReport, commit: str,
                      quick: bool,
                      cfg: Optional[str] = None
                      ) -> List[Dict[str, object]]:
    """Condense a conformance run into warehouse store records.

    *cfg* overrides the configuration hash — resumable runs pass the
    full-corpus hash (:func:`corpus_config`) so partial runs key
    identically; without it the hash derives from the report's own
    case list (a complete, non-resumed run).
    """
    if cfg is None:
        cfg = config_hash(conformance_config(report, quick))
    return [case_record(check, report.seed, commit, cfg, quick)
            for check in report.checks]


def summary_entry(records: List[Dict[str, object]], commit: str,
                  quick: bool) -> Dict[str, object]:
    """A ``BENCH_scenarios.json`` history entry for this run.

    Mirrors :func:`repro.warehouse.summary.build_entry`'s shape
    (benchmark means + security outcomes per cell) but keeps
    out-of-band cells visible — an envelope miss *is* the signal the
    trajectory should carry.
    """
    benchmarks: Dict[str, object] = {}
    security: Dict[str, object] = {}
    cfg = records[0]["config_hash"] if records else ""
    for record in records:
        cell = str(record["cell"])
        benchmarks[cell] = {
            "mean": float(record["perf"]["attack_seconds"]),
            "kernel_seconds": 0.0,
            "kernel_calls": 0,
        }
        outcome = record["security"]
        security[cell] = {
            "recovery_rate": float(outcome["recovery_rate"]),
            "queries_mean": float(outcome["queries_mean"]),
            "outcome_fingerprint": str(
                outcome["outcome_fingerprint"]),
        }
    return {
        "commit": str(commit),
        "date": datetime.now(timezone.utc).date().isoformat(),
        "config_hash": str(cfg),
        "profile": "quick" if quick else "full",
        "benchmarks": benchmarks,
        "security": security,
    }
