"""Environment & lifecycle scenario engine (ROADMAP item 4).

``trajectory`` defines the seeded per-device environment
trajectories threaded through the oracle and fleet layers; it is
imported eagerly.  ``corpus`` and ``conformance`` (the seeded
conformance corpus and its checker) sit *above* the fleet layer and
are intentionally not re-exported here: importing them from this
package's namespace would create an import cycle with
:mod:`repro.fleet`, which consumes trajectory specs.  Import them as
submodules (``repro.scenario.corpus`` / ``.conformance``).
"""

from repro.scenario.trajectory import (
    AgingDrift,
    EnvironmentSample,
    EnvironmentTrajectory,
    TemperatureCycle,
    TemperatureRamp,
    TrajectorySpec,
    VoltageNoise,
)

__all__ = [
    "AgingDrift",
    "EnvironmentSample",
    "EnvironmentTrajectory",
    "TemperatureCycle",
    "TemperatureRamp",
    "TrajectorySpec",
    "VoltageNoise",
]
