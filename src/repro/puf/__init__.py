"""Ring-oscillator PUF substrate: arrays, variation, measurement.

This subpackage simulates the physical layer the paper's constructions
and attacks operate on: an array of identically laid-out ring oscillators
whose frequencies carry systematic spatial trends, static random process
variation (the entropy source) and per-measurement noise.
"""

from repro.puf.parameters import DAC13_PARAMS, FIG6_PARAMS, ROArrayParams
from repro.puf.ro_array import ROArray
from repro.puf.measurement import (
    CounterParams,
    FrequencyCounter,
    TemperatureSensor,
    compare_counts,
    enroll_frequencies,
)
from repro.puf.variation import (
    Polynomial2D,
    correlated_roughness,
    default_systematic_surface,
    design_matrix,
    n_terms,
    polynomial_terms,
    quadratic_ridge_x,
    tilted_plane,
)

__all__ = [
    "DAC13_PARAMS",
    "FIG6_PARAMS",
    "ROArrayParams",
    "ROArray",
    "CounterParams",
    "FrequencyCounter",
    "TemperatureSensor",
    "compare_counts",
    "enroll_frequencies",
    "Polynomial2D",
    "correlated_roughness",
    "default_systematic_surface",
    "design_matrix",
    "n_terms",
    "polynomial_terms",
    "quadratic_ridge_x",
    "tilted_plane",
]
