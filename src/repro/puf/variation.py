"""Spatial variation models for the RO frequency map.

Paper Fig. 2 decomposes the frequency topology ``f(x, y)`` of an RO array
into a *systematic* component (a smooth trend caused by correlated
manufacturing variation — undesired, removable) and *random* surface
roughness (the desired entropy source).  This module provides:

* :class:`Polynomial2D` — the bivariate polynomial family used both to
  *synthesise* systematic trends and, by the entropy distiller of
  paper §V-A, to *remove* them through least-squares regression.  The
  parametrisation follows the paper exactly:

  .. math::  f(x, y) = \\sum_{i=0}^{p} \\sum_{j=0}^{i} \\beta_{i,j}
             \\, x^{i-j} y^{j}

* factory helpers that build typical systematic surfaces (tilted planes,
  quadratic bowls, steep attack gradients) and correlated roughness.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro._rng import RNGLike, ensure_rng


def polynomial_terms(degree: int) -> List[Tuple[int, int]]:
    """Canonical ``(i, j)`` term ordering of the paper's polynomial.

    Term ``(i, j)`` denotes the monomial ``x**(i - j) * y**j``.  The
    ordering — ``i`` ascending, then ``j`` ascending — fixes the layout of
    coefficient vectors everywhere in the library (distiller helper data,
    attack payloads, regression design matrices).
    """
    if degree < 0:
        raise ValueError("degree must be non-negative")
    return [(i, j) for i in range(degree + 1) for j in range(i + 1)]


def n_terms(degree: int) -> int:
    """Number of coefficients of a degree-*degree* bivariate polynomial."""
    return (degree + 1) * (degree + 2) // 2


def design_matrix(x: np.ndarray, y: np.ndarray, degree: int) -> np.ndarray:
    """Regression design matrix with one column per canonical term.

    ``design_matrix(x, y, p) @ beta`` evaluates the paper's polynomial at
    every coordinate pair.
    """
    x = np.asarray(x, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    if x.shape != y.shape:
        raise ValueError("x and y must have the same length")
    columns = [x ** (i - j) * y ** j for i, j in polynomial_terms(degree)]
    return np.stack(columns, axis=1)


class Polynomial2D:
    """Bivariate polynomial ``f(x, y) = Σ β_{i,j} x^{i-j} y^{j}``.

    Instances are immutable value objects; the coefficient vector follows
    the :func:`polynomial_terms` ordering.
    """

    def __init__(self, degree: int, coefficients: Sequence[float]):
        coeffs = np.asarray(coefficients, dtype=float)
        expected = n_terms(degree)
        if coeffs.shape != (expected,):
            raise ValueError(
                f"degree {degree} needs {expected} coefficients, "
                f"got shape {coeffs.shape}"
            )
        self._degree = int(degree)
        self._coeffs = coeffs.copy()
        self._coeffs.flags.writeable = False

    @property
    def degree(self) -> int:
        """Total degree of the polynomial."""
        return self._degree

    @property
    def coefficients(self) -> np.ndarray:
        """Read-only coefficient vector in canonical term order."""
        return self._coeffs

    @classmethod
    def zero(cls, degree: int) -> "Polynomial2D":
        """The all-zero polynomial of the given degree."""
        return cls(degree, np.zeros(n_terms(degree)))

    @classmethod
    def fit(cls, x: np.ndarray, y: np.ndarray, values: np.ndarray,
            degree: int) -> "Polynomial2D":
        """Least-squares fit of *values* sampled at ``(x, y)``.

        This is the regression the entropy distiller performs during
        enrollment (paper §V-A, "coefficients may be determined in a least
        mean squares manner").
        """
        matrix = design_matrix(x, y, degree)
        values = np.asarray(values, dtype=float).ravel()
        if values.shape[0] != matrix.shape[0]:
            raise ValueError("values length must match coordinate count")
        beta, *_ = np.linalg.lstsq(matrix, values, rcond=None)
        return cls(degree, beta)

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Evaluate at coordinates, preserving the broadcast shape."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        shape = np.broadcast(x, y).shape
        flat = design_matrix(np.broadcast_to(x, shape).ravel(),
                             np.broadcast_to(y, shape).ravel(),
                             self._degree) @ self._coeffs
        return flat.reshape(shape)

    def __add__(self, other: "Polynomial2D") -> "Polynomial2D":
        if not isinstance(other, Polynomial2D):
            return NotImplemented
        hi, lo = ((self, other) if self.degree >= other.degree
                  else (other, self))
        coeffs = hi.coefficients.copy()
        # Align the lower-degree polynomial's terms onto the canonical
        # ordering of the higher degree.
        index = {term: k for k, term in
                 enumerate(polynomial_terms(hi.degree))}
        for term, value in zip(polynomial_terms(lo.degree),
                               lo.coefficients):
            coeffs[index[term]] += value
        return Polynomial2D(hi.degree, coeffs)

    def __neg__(self) -> "Polynomial2D":
        return Polynomial2D(self._degree, -self._coeffs)

    def __sub__(self, other: "Polynomial2D") -> "Polynomial2D":
        if not isinstance(other, Polynomial2D):
            return NotImplemented
        return self + (-other)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Polynomial2D)
                and self._degree == other._degree
                and np.array_equal(self._coeffs, other._coeffs))

    def __repr__(self) -> str:
        return f"Polynomial2D(degree={self._degree}, coeffs={self._coeffs})"


def tilted_plane(gx: float, gy: float, offset: float = 0.0) -> Polynomial2D:
    """Degree-1 surface with gradients *gx*, *gy* (Hz per cell)."""
    return Polynomial2D(1, [offset, gx, gy])


def quadratic_ridge_x(curvature: float, x_extremum: float,
                      offset: float = 0.0) -> Polynomial2D:
    """Quadratic surface varying only along x with extremum at *x_extremum*.

    This is the shape of the attack payloads in paper Fig. 6: a steep
    one-dimensional parabola (the triangle marker in the figure denotes
    the extremum column) whose horizontal gradients overshadow the random
    frequency variation everywhere except along iso-frequency columns.
    ``curvature > 0`` opens upwards.
    """
    # curvature * (x - x0)^2 + offset, expanded onto canonical terms
    # (1, x, y, x^2, xy, y^2).
    return Polynomial2D(2, [
        offset + curvature * x_extremum ** 2,   # 1
        -2.0 * curvature * x_extremum,          # x
        0.0,                                    # y
        curvature,                              # x^2
        0.0,                                    # x y
        0.0,                                    # y^2
    ])


def default_systematic_surface(rows: int, cols: int, amplitude: float,
                               rng: RNGLike = None) -> Polynomial2D:
    """Random smooth degree-2 trend spanning roughly ±*amplitude* Hz.

    Models the linear-plus-bowed wafer gradient of paper Fig. 2.  The
    trend is dominated by the linear part, with a weaker random quadratic
    bow, and is normalised so that its peak-to-peak span across the array
    is approximately ``2 * amplitude``.
    """
    gen = ensure_rng(rng)
    span_x = max(cols - 1, 1)
    span_y = max(rows - 1, 1)
    direction = gen.normal(size=2)
    direction /= np.linalg.norm(direction)
    linear = Polynomial2D(1, [0.0,
                              direction[0] / span_x,
                              direction[1] / span_y])
    bow = gen.normal(scale=0.25, size=3)
    quad = Polynomial2D(2, [0.0, 0.0, 0.0,
                            bow[0] / span_x ** 2,
                            bow[1] / (span_x * span_y),
                            bow[2] / span_y ** 2])
    surface = linear + quad
    xs, ys = np.meshgrid(np.arange(cols, dtype=float),
                         np.arange(rows, dtype=float))
    values = surface(xs, ys)
    peak = np.max(np.abs(values - values.mean()))
    if peak == 0:
        return Polynomial2D.zero(2)
    scale = amplitude / peak
    return Polynomial2D(2, surface.coefficients * scale)


def correlated_roughness(rows: int, cols: int, sigma: float,
                         correlation_length: float = 1.5,
                         rng: RNGLike = None) -> np.ndarray:
    """Spatially correlated random surface (Hz), shape ``(rows, cols)``.

    White process variation passed through a truncated Gaussian kernel;
    used by analysis experiments to study how short-range correlation
    (intermediate between the trend and white roughness of Fig. 2) leaks
    into response-bit correlations.  The output is renormalised to the
    requested marginal standard deviation.
    """
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    gen = ensure_rng(rng)
    white = gen.normal(size=(rows, cols))
    if correlation_length <= 0 or sigma == 0:
        return sigma * white
    radius = max(1, int(np.ceil(3 * correlation_length)))
    offsets = np.arange(-radius, radius + 1, dtype=float)
    kernel = np.exp(-0.5 * (offsets / correlation_length) ** 2)
    kernel /= kernel.sum()
    padded = np.pad(white, radius, mode="wrap")
    smooth = np.apply_along_axis(
        lambda row: np.convolve(row, kernel, mode="same"), 1, padded)
    smooth = np.apply_along_axis(
        lambda col: np.convolve(col, kernel, mode="same"), 0, smooth)
    smooth = smooth[radius:radius + rows, radius:radius + cols]
    std = smooth.std()
    if std == 0:
        return np.zeros((rows, cols))
    return sigma * smooth / std
