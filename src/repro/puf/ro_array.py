"""Behavioural model of a ring-oscillator array (paper §II, Fig. 1).

An :class:`ROArray` instance represents one manufactured IC sample.  Its
static randomness — per-oscillator process offsets and temperature slopes,
plus the systematic spatial trend — is drawn once at construction time.
Frequency *measurements* add fresh Gaussian noise on every call, modelling
CMOS noise and environmental jitter (paper §III-A).

Frequency model for oscillator ``i`` at column ``x_i``, row ``y_i``::

    f_i(T, V) = (f_nominal + systematic(x_i, y_i) + process_i)
                * (1 + voltage_coeff * (V - v_nominal))
                - slope_i * (T - temp_nominal)          [+ noise]

which captures the two environmental facts the paper relies on:
frequencies increase with supply voltage and decrease with temperature,
and the temperature dependence is (approximately) linear with a
per-oscillator slope, so the Δf(T) of a pair is itself linear in T and may
cross zero inside the operating range (Fig. 3).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro._rng import RNGLike, ensure_rng
from repro.puf.parameters import ROArrayParams
from repro.puf.variation import Polynomial2D, default_systematic_surface


class ROArray:
    """One manufactured sample of an RO-PUF array."""

    def __init__(self, params: ROArrayParams, rng: RNGLike = None,
                 systematic: Optional[Polynomial2D] = None):
        """Manufacture a device.

        Parameters
        ----------
        params:
            Physical parameter set (layout, nominal frequency, variation
            magnitudes).
        rng:
            Seed or generator for the device's static randomness and for
            its default measurement-noise stream.
        systematic:
            Explicit systematic trend surface in Hz.  When omitted, a
            random smooth trend of amplitude
            ``params.systematic_amplitude`` is drawn (paper Fig. 2).
        """
        self._params = params
        gen = ensure_rng(rng)
        # Independent child streams: one consumed at manufacture time,
        # one reserved for measurement noise, so that taking extra
        # measurements never changes which device was "manufactured".
        self._static_rng, self._noise_rng = gen.spawn(2)

        cols = np.arange(params.n) % params.cols
        rows = np.arange(params.n) // params.cols
        self._x = cols.astype(float)
        self._y = rows.astype(float)

        if systematic is None:
            systematic = default_systematic_surface(
                params.rows, params.cols, params.systematic_amplitude,
                self._static_rng)
        self._systematic = systematic

        self._process = self._static_rng.normal(
            scale=params.sigma_process, size=params.n)
        self._slopes = self._static_rng.normal(
            loc=params.temp_slope_mean, scale=params.temp_slope_sigma,
            size=params.n)

    # ------------------------------------------------------------------
    # geometry

    @property
    def params(self) -> ROArrayParams:
        """Physical parameter set of the device."""
        return self._params

    @property
    def n(self) -> int:
        """Number of oscillators."""
        return self._params.n

    @property
    def x(self) -> np.ndarray:
        """Column coordinate of each oscillator (length-``n`` vector)."""
        return self._x

    @property
    def y(self) -> np.ndarray:
        """Row coordinate of each oscillator (length-``n`` vector)."""
        return self._y

    @property
    def systematic(self) -> Polynomial2D:
        """The device's systematic trend surface (Hz)."""
        return self._systematic

    @property
    def process_variation(self) -> np.ndarray:
        """Static random frequency offsets (Hz) — the entropy source."""
        return self._process

    @property
    def temperature_slopes(self) -> np.ndarray:
        """Per-oscillator frequency decrease per °C (Hz/°C)."""
        return self._slopes

    def index_to_xy(self, index: int) -> Tuple[int, int]:
        """Map a univariate oscillator index to ``(x, y)`` layout cells."""
        if not 0 <= index < self.n:
            raise IndexError(f"oscillator index {index} out of range")
        return index % self._params.cols, index // self._params.cols

    def xy_to_index(self, x: int, y: int) -> int:
        """Map layout cell ``(x, y)`` to the univariate oscillator index."""
        if not (0 <= x < self._params.cols and 0 <= y < self._params.rows):
            raise IndexError(f"cell ({x}, {y}) outside the array")
        return y * self._params.cols + x

    # ------------------------------------------------------------------
    # frequencies

    def true_frequencies(self, temperature: Optional[float] = None,
                         voltage: Optional[float] = None) -> np.ndarray:
        """Noise-free frequencies (Hz) at the given operating point.

        Defaults to the nominal temperature and supply voltage.
        """
        p = self._params
        if temperature is None:
            temperature = p.temp_nominal
        if voltage is None:
            voltage = p.v_nominal
        base = p.f_nominal + self._systematic(self._x, self._y) \
            + self._process
        base = base * (1.0 + p.voltage_coeff * (voltage - p.v_nominal))
        return base - self._slopes * (temperature - p.temp_nominal)

    def true_frequencies_batch(self, temperatures: np.ndarray,
                               voltages: np.ndarray) -> np.ndarray:
        """Noise-free frequencies at per-measurement operating points.

        *temperatures* and *voltages* are equal-length ``(B,)``
        vectors; returns the ``(B, n)`` noise-free frequency matrix.
        The operation order matches :meth:`true_frequencies` exactly
        (voltage scaling multiplies *before* the temperature slope
        subtracts), so a constant vector reproduces the scalar path
        bitwise — the equivalence the trajectory engine pins in
        ``tests/scenario/``.
        """
        p = self._params
        temps = np.asarray(temperatures, dtype=float).ravel()
        volts = np.asarray(voltages, dtype=float).ravel()
        if temps.shape != volts.shape:
            raise ValueError("temperature and voltage vectors must "
                             "have equal length")
        base = p.f_nominal + self._systematic(self._x, self._y) \
            + self._process
        scale = 1.0 + p.voltage_coeff * (volts - p.v_nominal)
        return base[None, :] * scale[:, None] \
            - self._slopes[None, :] * (temps - p.temp_nominal)[:, None]

    def measurement_noise(self, count: Optional[int] = None,
                          rng: RNGLike = None) -> np.ndarray:
        """Measurement-noise draws from the device's noise stream (Hz).

        Returns a length-``n`` vector when *count* is ``None``, else a
        ``(count, n)`` matrix of independent rows.  Because NumPy fills
        any output shape element-by-element from the same bit stream, a
        single ``(count, n)`` draw consumes the stream exactly like
        *count* successive per-measurement draws — the property the
        batched oracle relies on for query-for-query equivalence with
        sequential simulation.  Noise is additive and operating-point
        independent, so rows drawn ahead of time remain valid for any
        later choice of temperature and voltage.
        """
        gen = self._noise_rng if rng is None else ensure_rng(rng)
        size = self.n if count is None else (int(count), self.n)
        return gen.normal(scale=self._params.sigma_noise, size=size)

    def measure_frequencies(self, temperature: Optional[float] = None,
                            voltage: Optional[float] = None,
                            rng: RNGLike = None) -> np.ndarray:
        """One noisy frequency measurement of every oscillator (Hz).

        Noise is drawn from *rng* when given, otherwise from the device's
        internal noise stream — fresh on every call.
        """
        noise = self.measurement_noise(rng=rng)
        return self.true_frequencies(temperature, voltage) + noise

    def measure_frequencies_batch(self, count: int,
                                  temperature: Optional[float] = None,
                                  voltage: Optional[float] = None,
                                  rng: RNGLike = None) -> np.ndarray:
        """*count* noisy measurements of every oscillator, ``(count, n)``.

        Row ``i`` is bitwise-identical to what the ``i``-th sequential
        :meth:`measure_frequencies` call would have returned from the
        same stream state — one vectorized draw instead of a Python
        loop.
        """
        if count < 1:
            raise ValueError("need at least one measurement")
        return (self.true_frequencies(temperature, voltage)[None, :]
                + self.measurement_noise(count, rng=rng))

    def measure_frequencies_trajectory(self, trajectory, count: int,
                                       start: int = 0,
                                       rng: RNGLike = None
                                       ) -> np.ndarray:
        """*count* noisy measurements under an environment trajectory.

        *trajectory* is a built
        :class:`~repro.scenario.trajectory.EnvironmentTrajectory`;
        measurement ``i`` of the returned ``(count, n)`` matrix is
        taken at the ambient the trajectory resolves for absolute
        query index ``start + i``, on top of any aged per-oscillator
        offsets.  Noise consumption is identical to
        :meth:`measure_frequencies_batch`, so trajectory and scalar
        measurements interleave on the same stream without drift.
        """
        if count < 1:
            raise ValueError("need at least one measurement")
        indices = np.arange(int(start), int(start) + int(count))
        env = trajectory.sample(indices)
        base = self.true_frequencies_batch(env.temperatures,
                                           env.voltages)
        shift = trajectory.oscillator_shift(self.n)
        if shift is not None:
            base = base + shift[None, :]
        return base + self.measurement_noise(count, rng=rng)

    def frequency_map(self, temperature: Optional[float] = None,
                      voltage: Optional[float] = None) -> np.ndarray:
        """Noise-free frequency map reshaped to ``(rows, cols)``.

        This is the ``f(x, y)`` topology of paper Fig. 2.
        """
        return self.true_frequencies(temperature, voltage).reshape(
            self._params.shape)

    def pair_delta(self, i: int, j: int,
                   temperature: Optional[float] = None,
                   voltage: Optional[float] = None) -> float:
        """Noise-free ``f_i - f_j`` at the operating point."""
        f = self.true_frequencies(temperature, voltage)
        return float(f[i] - f[j])

    def crossover_temperature(self, i: int, j: int) -> Optional[float]:
        """Temperature at which ``f_i(T) = f_j(T)``, or ``None``.

        With the linear temperature model, ``Δf(T)`` is affine in ``T``;
        the crossover exists whenever the pair's slopes differ.  Used by
        the temperature-aware cooperative construction to locate the
        unstable interval of Fig. 3.
        """
        p = self._params
        delta_at_nominal = self.pair_delta(i, j)
        slope_diff = float(self._slopes[i] - self._slopes[j])
        if slope_diff == 0.0:
            return None
        # delta(T) = delta_at_nominal - slope_diff * (T - temp_nominal)
        return p.temp_nominal + delta_at_nominal / slope_diff

    def __repr__(self) -> str:
        p = self._params
        return f"ROArray({p.rows}x{p.cols}, f_nom={p.f_nominal:.3g} Hz)"
