"""Physical parameters of the simulated ring-oscillator array.

The defaults model a mid-size FPGA RO PUF in the style of the prototypes
attacked by the paper (Xilinx Spartan-3 class): oscillators around 200 MHz,
random process variation of a few hundred kHz, measurement noise an order
of magnitude smaller, and a linear frequency decrease with temperature
whose per-oscillator slope spread produces the Δf(T) crossovers exploited
by the temperature-aware cooperative construction (paper Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class ROArrayParams:
    """Static description of an RO array and its variability sources.

    Attributes
    ----------
    rows, cols:
        Physical layout of the array; ``n = rows * cols`` oscillators.
        Oscillator *i* sits at column ``x = i % cols`` and row
        ``y = i // cols`` (row-major order).
    f_nominal:
        Design-target oscillation frequency in Hz.
    sigma_process:
        Standard deviation (Hz) of the static random (desired) process
        variation of each oscillator.  This is the entropy source.
    sigma_noise:
        Standard deviation (Hz) of the additive noise of a *single*
        frequency measurement.  Redrawn on every measurement.
    systematic_amplitude:
        Peak amplitude (Hz) of the default systematic spatial trend used
        when no explicit surface is supplied.  Models the correlated
        manufacturing gradient of paper Fig. 2.
    temp_nominal:
        Enrollment temperature in °C.
    temp_slope_mean:
        Mean frequency decrease per °C (Hz/°C).  RO frequencies fall with
        rising temperature (paper §III-A), hence the slope *subtracts*.
    temp_slope_sigma:
        Per-oscillator spread of the temperature slope (Hz/°C).  Non-zero
        spread makes the frequency curves of some neighbouring pairs cross
        inside the operating range, creating the "cooperating pairs" of
        the HOST 2009 construction.
    v_nominal:
        Nominal supply voltage in volts.
    voltage_coeff:
        Fractional frequency increase per volt of supply increase
        (frequencies rise with voltage, paper §III-A).
    """

    rows: int = 16
    cols: int = 32
    f_nominal: float = 200e6
    sigma_process: float = 400e3
    sigma_noise: float = 25e3
    systematic_amplitude: float = 1.5e6
    temp_nominal: float = 25.0
    temp_slope_mean: float = 40e3
    temp_slope_sigma: float = 4e3
    v_nominal: float = 1.20
    voltage_coeff: float = 0.08

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("array must have at least one row and column")
        if self.f_nominal <= 0:
            raise ValueError("f_nominal must be positive")
        for name in ("sigma_process", "sigma_noise", "temp_slope_sigma",
                     "systematic_amplitude"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def n(self) -> int:
        """Total number of oscillators."""
        return self.rows * self.cols

    @property
    def shape(self) -> Tuple[int, int]:
        """Array shape as ``(rows, cols)``."""
        return (self.rows, self.cols)


#: Parameter set matching the 4 x 10 array of paper Fig. 6 (attack
#: illustrations on the group-based construction and pairing schemes).
FIG6_PARAMS = ROArrayParams(rows=4, cols=10)

#: Parameter set matching the 16 x 32 array used by the DAC 2013 entropy
#: distiller experiments referenced in paper §V-A.
DAC13_PARAMS = ROArrayParams(rows=16, cols=32)
