"""Counter-based frequency measurement and enrollment averaging.

The multiplexer/counter/comparator periphery of paper Fig. 1 measures an
oscillator by counting rising edges during a fixed gate window, so the
device never sees real-valued frequencies — only quantised counts.  The
paper notes (§III-B) that the resulting discrete ``Δf = 0`` ties are a
bias source; :func:`compare_counts` makes that tie-breaking policy
explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro._rng import RNGLike, ensure_rng
from repro.puf.ro_array import ROArray


@dataclass(frozen=True)
class CounterParams:
    """Gate window of the edge counter.

    A window of 100 µs at 200 MHz yields counts near 20 000, i.e. a
    quantisation step of 10 kHz — comparable to measurement noise, as on
    real FPGA implementations.
    """

    window: float = 100e-6

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError("counter window must be positive")


class FrequencyCounter:
    """Quantises frequencies into edge counts and back."""

    def __init__(self, params: CounterParams = CounterParams()):
        self._params = params

    @property
    def params(self) -> CounterParams:
        """The counter's gate-window parameters."""
        return self._params

    def counts(self, frequencies: np.ndarray) -> np.ndarray:
        """Edge counts for the given instantaneous frequencies (Hz)."""
        freqs = np.asarray(frequencies, dtype=float)
        if np.any(freqs < 0):
            raise ValueError("frequencies must be non-negative")
        return np.floor(freqs * self._params.window).astype(np.int64)

    def estimate(self, counts: np.ndarray) -> np.ndarray:
        """Frequency estimate (Hz) from edge counts."""
        return np.asarray(counts, dtype=float) / self._params.window

    def measure(self, array: ROArray,
                temperature: Optional[float] = None,
                voltage: Optional[float] = None,
                rng: RNGLike = None) -> np.ndarray:
        """One quantised, noisy measurement of every oscillator (counts)."""
        return self.counts(array.measure_frequencies(
            temperature, voltage, rng=rng))

    def measure_batch(self, array: ROArray, samples: int,
                      temperature: Optional[float] = None,
                      voltage: Optional[float] = None,
                      rng: RNGLike = None) -> np.ndarray:
        """*samples* quantised measurements, ``(samples, n)`` counts."""
        return self.counts(array.measure_frequencies_batch(
            samples, temperature, voltage, rng=rng))

    def measure_trajectory(self, array: ROArray, trajectory,
                           samples: int, start: int = 0,
                           rng: RNGLike = None) -> np.ndarray:
        """*samples* quantised measurements along a trajectory.

        Sample ``i`` is taken at the ambient the built
        :class:`~repro.scenario.trajectory.EnvironmentTrajectory`
        resolves for absolute query index ``start + i``.
        """
        return self.counts(array.measure_frequencies_trajectory(
            trajectory, samples, start=start, rng=rng))


def compare_counts(count_a: int, count_b: int,
                   tie_value: int = 1) -> int:
    """Comparator response bit for a measured pair (paper Fig. 1).

    Returns ``1`` when ``count_a > count_b``, ``0`` when smaller, and
    *tie_value* on the discrete tie ``Δf = 0`` whose forced 0/1 outcome
    the paper identifies as a bias source (§III-B).
    """
    if count_a > count_b:
        return 1
    if count_a < count_b:
        return 0
    return int(tie_value)


def enroll_frequencies(array: ROArray, samples: int = 9,
                       temperature: Optional[float] = None,
                       voltage: Optional[float] = None,
                       counter: Optional[FrequencyCounter] = None,
                       rng: RNGLike = None) -> np.ndarray:
    """Averaged enrollment frequency estimate (Hz) per oscillator.

    Enrollment is the one-time post-manufacturing phase (paper §III); it
    averages *samples* independent measurements to suppress noise before
    helper data is derived.  When a *counter* is supplied, each sample is
    quantised before averaging, as on the real periphery.
    """
    if samples < 1:
        raise ValueError("need at least one enrollment sample")
    gen = ensure_rng(rng) if rng is not None else None
    freqs = array.measure_frequencies_batch(samples, temperature,
                                            voltage, rng=gen)
    if counter is not None:
        freqs = counter.estimate(counter.counts(freqs))
    # Accumulate row by row: pairwise (np.sum) rounding would perturb
    # enrollment relative to the historical per-sample loop.
    acc = np.zeros(array.n)
    for row in freqs:
        acc += row
    return acc / samples


@dataclass(frozen=True)
class TemperatureSensor:
    """On-chip temperature sensor (required by the HOST 2009 scheme).

    The temperature-aware cooperative construction assumes the device can
    read its own temperature; we model a sensor with a fixed calibration
    bias and per-read Gaussian noise.
    """

    bias: float = 0.0
    sigma: float = 0.25

    def read(self, true_temperature: float, rng: RNGLike = None) -> float:
        """One sensor read-out (°C) at the given ambient temperature."""
        gen = ensure_rng(rng)
        return true_temperature + self.bias + gen.normal(scale=self.sigma)

    def read_batch(self, true_temperature, count: int,
                   rng: RNGLike = None) -> np.ndarray:
        """*count* independent sensor read-outs (°C), one per query.

        *true_temperature* is a scalar ambient or a ``(count,)``
        vector of per-query ambients (trajectory-driven blocks); the
        noise stream is consumed identically either way, so constant
        trajectories stay bitwise-equal to the scalar path.
        """
        if count < 1:
            raise ValueError("need at least one sensor read")
        gen = ensure_rng(rng)
        return (true_temperature + self.bias
                + gen.normal(scale=self.sigma, size=count))
