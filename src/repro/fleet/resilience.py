"""Supervised, fault-tolerant execution of fleet sweep chunks.

The plain pool in :mod:`repro.fleet.parallel` assumes every worker
finishes: one crashed, hung or OOM-killed process aborts the whole
sweep.  This module adds a **supervised** execution mode in which each
dispatch chunk runs in its own watched child process under a
:class:`RetryPolicy`:

* a **watchdog** kills chunks that exceed ``chunk_timeout``;
* failed chunks are **retried** with exponential backoff whose jitter
  is seeded (schedules are reproducible run over run);
* every failure is recorded in a structured taxonomy
  (:class:`ChunkFailure`: ``crash`` / ``timeout`` / ``exception`` /
  ``poison``, with the worker pid, attempt number and payload digest);
* chunks that exhaust their retries are **quarantined** and re-executed
  in-process (graceful degradation) before the sweep gives up;
* chunks that fail even in-process are **poisoned**: the sweep raises
  a :class:`PoisonedSweepError` carrying the full report — a
  partial-result verdict, not an opaque traceback — or, with
  ``allow_partial=True``, returns fill values for the poisoned
  devices.

Because all per-device randomness is derived in the parent before any
dispatch (the :mod:`repro.fleet.parallel` seeding discipline), a retry
re-executes a bitwise-identical computation — so a sweep that
survived injected crashes, hangs and exceptions
(:mod:`repro.fleet.faultinject`) returns results **bitwise-equal to
the fault-free run**.  ``docs/resilience.md`` spells out the
contract; the equivalence is pinned by
``tests/fleet/test_resilience.py`` and the CI ``chaos-smoke`` job.

Supervision implies process isolation (a fault cannot be survived
in-process), so supervised payloads must be picklable for *every*
worker count, including 1.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.fleet import faultinject

#: Granularity of the supervisor's poll loop (seconds).  Bounds how
#: late a watchdog kill or a backed-off relaunch can be; failure
#: *semantics* never depend on it.
_POLL_SECONDS = 0.05


class PoisonedSweepError(RuntimeError):
    """A sweep finished with chunks that failed every recovery path.

    Raised instead of the poisoning chunk's opaque traceback: the
    message is the structured verdict (how many chunks, which kinds,
    the first detail line) and :attr:`report` carries the complete
    failure taxonomy for programmatic use.
    """

    def __init__(self, report: "ResilienceReport") -> None:
        self.report = report
        poisoned = report.poison_failures
        first = poisoned[0] if poisoned else None
        detail = (f"; first: chunk {first.chunk} ({first.detail})"
                  if first is not None else "")
        super().__init__(
            f"sweep poisoned: {len(report.poisoned)} of "
            f"{report.chunks} chunk(s) failed all "
            f"{report.policy.max_retries + 1} attempt(s) and the "
            f"in-process quarantine retry [{report.describe_kinds()}]"
            f"{detail}")


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/timeout policy of one supervised sweep.

    Parameters
    ----------
    max_retries:
        Child-process re-executions granted to a failing chunk
        beyond its first attempt (0 disables retry but keeps the
        quarantine pass).
    chunk_timeout:
        Watchdog limit in seconds per chunk attempt; ``None``
        disables the watchdog (hung workers then block the sweep,
        exactly as they would unsupervised).
    backoff_base / backoff_cap:
        Exponential backoff: attempt *k* waits
        ``min(cap, base * 2**k)`` seconds, scaled by seeded jitter.
    jitter_seed:
        Root of the deterministic jitter — same seed, same payloads,
        same backoff schedule, every run.
    allow_partial:
        ``True`` returns fill values (zeros / ``None``) for poisoned
        chunks instead of raising :class:`PoisonedSweepError`.
    """

    max_retries: int = 2
    chunk_timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter_seed: int = 0
    allow_partial: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ValueError("chunk_timeout must be positive")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff delays must be non-negative")

    def backoff_delay(self, payload_digest: str,
                      attempt: int) -> float:
        """Seconds to wait before relaunching after *attempt* failed.

        Exponential in *attempt*, with jitter in ``[0.5, 1.5)`` drawn
        deterministically from ``(jitter_seed, payload digest,
        attempt)`` — reproducible, yet de-synchronised across chunks.
        """
        material = (f"{self.jitter_seed}:{payload_digest}:"
                    f"{int(attempt)}").encode("ascii")
        word = int.from_bytes(
            hashlib.sha256(material).digest()[:8], "little")
        jitter = 0.5 + word / 2.0 ** 64
        delay = min(self.backoff_cap,
                    self.backoff_base * (2.0 ** int(attempt)))
        return delay * jitter

    def schedule(self, payload_digest: str) -> List[float]:
        """The full reproducible backoff schedule for one chunk."""
        return [self.backoff_delay(payload_digest, attempt)
                for attempt in range(self.max_retries)]


@dataclass(frozen=True)
class ChunkFailure:
    """One recorded chunk failure (the structured taxonomy entry).

    ``kind`` is ``crash`` (worker died without a message — killed,
    segfaulted, OOMed), ``timeout`` (watchdog reclaimed a hung
    worker), ``exception`` (the chunk body raised in-band) or
    ``poison`` (the in-process quarantine retry failed too).
    """

    kind: str
    chunk: int
    attempt: int
    pid: Optional[int]
    payload_digest: str
    detail: str

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (the CI artifact rows)."""
        return {"kind": self.kind, "chunk": int(self.chunk),
                "attempt": int(self.attempt), "pid": self.pid,
                "payload_digest": self.payload_digest,
                "detail": self.detail}


@dataclass
class ResilienceReport:
    """Everything a supervised sweep observed about its failures."""

    policy: RetryPolicy
    chunks: int = 0
    failures: List[ChunkFailure] = field(default_factory=list)
    retried: int = 0
    #: Chunks recovered by the in-process quarantine pass.
    degraded: List[int] = field(default_factory=list)
    #: Chunks that failed the quarantine pass too.
    poisoned: List[int] = field(default_factory=list)

    @property
    def verdict(self) -> str:
        """``clean`` / ``recovered`` / ``degraded`` / ``partial``."""
        if self.poisoned:
            return "partial"
        if self.degraded:
            return "degraded"
        if self.failures:
            return "recovered"
        return "clean"

    @property
    def poison_failures(self) -> List[ChunkFailure]:
        """The ``poison``-kind failure entries."""
        return [failure for failure in self.failures
                if failure.kind == "poison"]

    def counts_by_kind(self) -> Dict[str, int]:
        """Failure tally per taxonomy kind (insertion-ordered)."""
        counts: Dict[str, int] = {}
        for failure in self.failures:
            counts[failure.kind] = counts.get(failure.kind, 0) + 1
        return counts

    def describe_kinds(self) -> str:
        """Compact ``kind x count`` summary, e.g. ``crash x2``."""
        counts = self.counts_by_kind()
        if not counts:
            return "no failures"
        return ", ".join(f"{kind} x{count}"
                         for kind, count in sorted(counts.items()))

    def summary(self) -> str:
        """One human-readable line for CLI output."""
        return (f"{self.verdict}: {len(self.failures)} failure(s) "
                f"[{self.describe_kinds()}] over {self.chunks} "
                f"chunk(s), {self.retried} retried, "
                f"{len(self.degraded)} degraded in-process, "
                f"{len(self.poisoned)} poisoned")

    def to_payload(self) -> Dict[str, object]:
        """JSON-serialisable report (the CI chaos artifact)."""
        return {
            "verdict": self.verdict,
            "chunks": int(self.chunks),
            "retried": int(self.retried),
            "degraded": [int(index) for index in self.degraded],
            "poisoned": [int(index) for index in self.poisoned],
            "counts": self.counts_by_kind(),
            "failures": [failure.to_dict()
                         for failure in self.failures],
            "policy": {
                "max_retries": self.policy.max_retries,
                "chunk_timeout": self.policy.chunk_timeout,
                "backoff_base": self.policy.backoff_base,
                "backoff_cap": self.policy.backoff_cap,
                "jitter_seed": self.policy.jitter_seed,
                "allow_partial": self.policy.allow_partial,
            },
        }


class Supervisor:
    """Carries a :class:`RetryPolicy` into sweeps, collects reports.

    Pass one as the ``supervision`` argument of
    :func:`repro.fleet.parallel.run_scattered` /
    :func:`~repro.fleet.parallel.run_collected` (or of the ``Fleet``
    sweep methods, which thread it through).  Each supervised sweep
    appends a fresh :class:`ResilienceReport`; one supervisor can
    therefore account for a whole multi-sweep campaign.
    """

    def __init__(self, policy: Optional[RetryPolicy] = None) -> None:
        self.policy = policy if policy is not None else RetryPolicy()
        self.reports: List[ResilienceReport] = []

    @property
    def last_report(self) -> Optional[ResilienceReport]:
        """The most recent sweep's report (``None`` before any)."""
        return self.reports[-1] if self.reports else None

    @property
    def failures(self) -> List[ChunkFailure]:
        """All failures observed across every supervised sweep."""
        return [failure for report in self.reports
                for failure in report.failures]

    def new_report(self, chunks: int) -> ResilienceReport:
        """Open the report for one supervised sweep."""
        report = ResilienceReport(policy=self.policy, chunks=chunks)
        self.reports.append(report)
        return report

    def summary_lines(self) -> List[str]:
        """One summary line per supervised sweep."""
        return [f"sweep {index}: {report.summary()}"
                for index, report in enumerate(self.reports)]

    def to_payload(self) -> Dict[str, object]:
        """JSON artifact: per-sweep reports plus the global tally."""
        kinds: Dict[str, int] = {}
        for report in self.reports:
            for kind, count in report.counts_by_kind().items():
                kinds[kind] = kinds.get(kind, 0) + count
        return {
            "sweeps": len(self.reports),
            "failures": sum(len(report.failures)
                            for report in self.reports),
            "counts": kinds,
            "reports": [report.to_payload()
                        for report in self.reports],
        }

    def write_report(self, path):
        """Write :meth:`to_payload` as JSON; returns the path.

        The CLI ``--failure-report`` artifact (CI ships it from the
        chaos-smoke job).
        """
        import json
        from pathlib import Path

        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.to_payload(), indent=2, sort_keys=True)
            + "\n", encoding="ascii")
        return target


# ----------------------------------------------------------------------
# supervised child entrypoints (module level so every start method can
# pickle them)


def _send_outcome(conn, message: Tuple[str, object]) -> None:
    """Best-effort result/error send; the parent survives a lost
    pipe either way (it reads EOF as a crash)."""
    try:
        conn.send(message)
    except Exception:  # pragma: no cover - torn pipe during shutdown
        pass


def _scattered_entry(conn, run_job, payloads, indices, slots,
                     chunk: int, attempt: int) -> None:
    """Child body: run one chunk, scatter outputs into shared memory.

    This is the supervised worker entrypoint — the fault-injection
    environment hook (:func:`repro.fleet.faultinject.active_spec`)
    fires here, keyed on ``(chunk, attempt)``.
    """
    from multiprocessing import shared_memory

    try:
        tripwire = faultinject.entry_fire(
            faultinject.active_spec(chunk, attempt))
        segments = [shared_memory.SharedMemory(name=slot.name)
                    for slot in slots]
        try:
            views = [np.ndarray((slot.length,), dtype=slot.dtype,
                                buffer=segment.buf)
                     for slot, segment in zip(slots, segments)]
            try:
                for index, payload in zip(indices, payloads):
                    for view, value in zip(views, run_job(payload)):
                        view[index] = value
                    tripwire.step()
            finally:
                views.clear()
                del views
        finally:
            for segment in segments:
                try:
                    segment.close()
                except BufferError:  # pragma: no cover
                    pass
        _send_outcome(conn, ("ok", None))
    except BaseException as error:
        _send_outcome(conn,
                      ("error", f"{type(error).__name__}: {error}"))
    finally:
        conn.close()


def _collected_entry(conn, run_job, payloads, chunk: int,
                     attempt: int) -> None:
    """Child body: run one chunk, send results back by value."""
    try:
        tripwire = faultinject.entry_fire(
            faultinject.active_spec(chunk, attempt))
        results = []
        for payload in payloads:
            results.append(run_job(payload))
            tripwire.step()
        _send_outcome(conn, ("ok", results))
    except BaseException as error:
        _send_outcome(conn,
                      ("error", f"{type(error).__name__}: {error}"))
    finally:
        conn.close()


# ----------------------------------------------------------------------
# the supervisor loop


@dataclass
class _ChunkTask:
    """Parent-side state of one chunk across its attempts."""

    index: int
    indices: List[int]
    digest: str
    attempt: int = 0
    ready_at: float = 0.0


@dataclass
class _Active:
    """One launched chunk attempt under watch."""

    proc: object
    conn: object
    deadline: Optional[float]
    task: _ChunkTask


def payload_digest(payloads: Sequence[object]) -> str:
    """Short stable digest identifying a chunk's payload content."""
    digest = hashlib.sha256()
    for payload in payloads:
        digest.update(pickle.dumps(payload))
    return digest.hexdigest()[:16]


def _reap(entry: _Active) -> None:
    """Join a finished/killed child and release its pipe end."""
    entry.proc.join()
    try:
        entry.conn.close()
    except OSError:  # pragma: no cover - already closed
        pass


def _supervise(tasks: List[_ChunkTask], policy: RetryPolicy,
               width: int, report: ResilienceReport,
               start: Callable[[_ChunkTask], Tuple[object, object]],
               on_success: Callable[[_ChunkTask, object], None],
               run_quarantined: Callable[[_ChunkTask], None]) -> None:
    """Drive every chunk to success, quarantine, or poison.

    *start* launches one watched child for a task and returns
    ``(process, parent_conn)``; *on_success* consumes a child's
    ``ok`` payload; *run_quarantined* re-executes a quarantined
    chunk in the parent process (the graceful-degradation pass).
    """
    pending: List[_ChunkTask] = list(tasks)
    active: Dict[int, _Active] = {}
    quarantined: List[_ChunkTask] = []

    while pending or active:
        now = time.monotonic()
        launchable = [task for task in pending
                      if task.ready_at <= now]
        while launchable and len(active) < width:
            task = launchable.pop(0)
            pending.remove(task)
            proc, conn = start(task)
            deadline = (now + policy.chunk_timeout
                        if policy.chunk_timeout is not None else None)
            active[task.index] = _Active(proc, conn, deadline, task)
        if not active:
            # Every remaining chunk is backing off; sleep to the
            # earliest relaunch.
            wake = min(task.ready_at for task in pending)
            time.sleep(max(0.0, wake - time.monotonic()))
            continue

        timeout = _POLL_SECONDS
        deadlines = [entry.deadline for entry in active.values()
                     if entry.deadline is not None]
        if deadlines:
            timeout = min(timeout,
                          max(0.0, min(deadlines) - time.monotonic()))
        ready = connection.wait(
            [entry.conn for entry in active.values()], timeout)

        now = time.monotonic()
        for index, entry in list(active.items()):
            failure: Optional[Tuple[str, str]] = None
            if entry.conn in ready:
                try:
                    message = entry.conn.recv()
                except (EOFError, OSError):
                    message = None
                _reap(entry)
                if (isinstance(message, tuple) and len(message) == 2
                        and message[0] == "ok"):
                    on_success(entry.task, message[1])
                    del active[index]
                    continue
                if message is None:
                    code = entry.proc.exitcode
                    failure = ("crash",
                               f"worker died without a message "
                               f"(exit code {code})")
                else:
                    failure = ("exception", str(message[1]))
            elif entry.deadline is not None and now >= entry.deadline:
                entry.proc.kill()
                _reap(entry)
                failure = ("timeout",
                           f"chunk exceeded the "
                           f"{policy.chunk_timeout:g}s watchdog")
            if failure is None:
                continue
            del active[index]
            kind, detail = failure
            task = entry.task
            report.failures.append(ChunkFailure(
                kind=kind, chunk=task.index, attempt=task.attempt,
                pid=entry.proc.pid, payload_digest=task.digest,
                detail=detail))
            if task.attempt < policy.max_retries:
                delay = policy.backoff_delay(task.digest,
                                             task.attempt)
                task.attempt += 1
                task.ready_at = time.monotonic() + delay
                report.retried += 1
                pending.append(task)
            else:
                quarantined.append(task)

    # Graceful degradation: one in-process retry per quarantined
    # chunk before the sweep admits defeat.  Only ``raise``-mode
    # injected faults fire here (crash/hang would take the
    # supervisor down), so genuinely poisonous chunks stay poisoned.
    for task in sorted(quarantined, key=lambda item: item.index):
        attempt = policy.max_retries + 1
        try:
            faultinject.fire(
                faultinject.active_spec(task.index, attempt),
                inprocess=True)
            run_quarantined(task)
            report.degraded.append(task.index)
        except Exception as error:
            report.failures.append(ChunkFailure(
                kind="poison", chunk=task.index, attempt=attempt,
                pid=None, payload_digest=task.digest,
                detail=f"{type(error).__name__}: {error}"))
            report.poisoned.append(task.index)

    if report.poisoned and not policy.allow_partial:
        raise PoisonedSweepError(report)


def _build_tasks(payloads: Sequence[object],
                 blocks: Sequence[np.ndarray]) -> List[_ChunkTask]:
    """One parent-side task per dispatch chunk."""
    return [
        _ChunkTask(index=index, indices=[int(i) for i in block],
                   digest=payload_digest(
                       [payloads[int(i)] for i in block]))
        for index, block in enumerate(blocks)]


def run_supervised_scattered(run_job, payloads: Sequence[object],
                             dtypes: Sequence,
                             workers: Optional[int],
                             shared: Sequence[object],
                             supervisor: Supervisor
                             ) -> Tuple[np.ndarray, ...]:
    """Supervised twin of :func:`repro.fleet.parallel.run_scattered`.

    Same contract — one scalar per dtype per payload, entry ``i``
    from ``payloads[i]``, results bitwise-independent of *workers*
    and of which attempts faulted — plus the recovery semantics of
    the module docstring.  Poisoned chunks leave zeros in their
    entries when the policy allows partial results.
    """
    from repro.fleet.parallel import (
        SharedResultBuffer,
        _ensure_picklable,
        _pool_context,
        _run_inprocess,
        chunk_indices,
        resolve_workers,
    )

    count = len(payloads)
    resolved = resolve_workers(workers, count)
    if count == 0:
        supervisor.new_report(0)
        return tuple(np.zeros(0, dtype=dt) for dt in dtypes)
    _ensure_picklable(run_job, payloads)
    blocks = chunk_indices(count, min(count, 4 * resolved))
    report = supervisor.new_report(len(blocks))
    tasks = _build_tasks(payloads, blocks)
    ctx = _pool_context()

    buffers: List[SharedResultBuffer] = []
    try:
        for dt in dtypes:
            buffers.append(SharedResultBuffer(count, dt))
        slots = [buffer.slot for buffer in buffers]

        def start(task: _ChunkTask):
            recv, send = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_scattered_entry,
                args=(send, run_job,
                      [payloads[i] for i in task.indices],
                      task.indices, slots, task.index, task.attempt),
                daemon=True)
            proc.start()
            send.close()
            return proc, recv

        def on_success(task: _ChunkTask, payload: object) -> None:
            pass  # the child already scattered into shared memory

        def run_quarantined(task: _ChunkTask) -> None:
            results = _run_inprocess(
                run_job, [payloads[i] for i in task.indices], shared)
            views = [buffer.view() for buffer in buffers]
            try:
                for index, values in zip(task.indices, results):
                    for view, value in zip(views, values):
                        view[index] = value
            finally:
                views.clear()
                del views

        _supervise(tasks, supervisor.policy,
                   min(resolved, len(blocks)), report, start,
                   on_success, run_quarantined)
        return tuple(buffer.read() for buffer in buffers)
    finally:
        for buffer in buffers:
            buffer.dispose()


def run_supervised_collected(run_job, payloads: Sequence[object],
                             workers: Optional[int],
                             shared: Sequence[object],
                             supervisor: Supervisor) -> list:
    """Supervised twin of :func:`repro.fleet.parallel.run_collected`.

    Results travel back over the watched child's pipe; poisoned
    chunks leave ``None`` in their entries when the policy allows
    partial results.
    """
    from repro.fleet.parallel import (
        _ensure_picklable,
        _pool_context,
        _run_inprocess,
        chunk_indices,
        resolve_workers,
    )

    count = len(payloads)
    resolved = resolve_workers(workers, count)
    if count == 0:
        supervisor.new_report(0)
        return []
    _ensure_picklable(run_job, payloads)
    blocks = chunk_indices(count, min(count, 4 * resolved))
    report = supervisor.new_report(len(blocks))
    tasks = _build_tasks(payloads, blocks)
    ctx = _pool_context()
    results: list = [None] * count

    def start(task: _ChunkTask):
        recv, send = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_collected_entry,
            args=(send, run_job,
                  [payloads[i] for i in task.indices],
                  task.index, task.attempt),
            daemon=True)
        proc.start()
        send.close()
        return proc, recv

    def on_success(task: _ChunkTask, payload: object) -> None:
        for index, value in zip(task.indices, payload):
            results[index] = value

    def run_quarantined(task: _ChunkTask) -> None:
        values = _run_inprocess(
            run_job, [payloads[i] for i in task.indices], shared)
        for index, value in zip(task.indices, values):
            results[index] = value

    _supervise(tasks, supervisor.policy, min(resolved, len(blocks)),
               report, start, on_success, run_quarantined)
    return results
