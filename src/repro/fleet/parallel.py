"""Process-pool execution layer for fleet sweeps.

Fleet sweeps are embarrassingly parallel across devices: each device's
Monte-Carlo outcome is a pure function of (a) the device/keygen/helper
state captured when the sweep starts and (b) a noise substream derived
from the population seed.  This module exploits that shape:

* :func:`run_scattered` executes one job per device and scatters each
  job's fixed-width numeric outputs into **shared-memory result
  buffers** — workers write their chunk of the result vector in place,
  nothing is serialised on the way back.
* :func:`run_collected` executes one job per device and collects
  arbitrary Python results (used for enrollment, whose outputs are
  keygen/helper objects).

Both entry points guarantee **worker-count invariance**: results are
bitwise-identical whatever ``workers`` is, including 1.  Two mechanisms
make that hold.  First, every per-device random stream is derived in
the parent *before* dispatch, so stream identity cannot depend on which
worker runs the job or in which order.  Second, jobs always run against
*copies* of their payload — a deep copy in-process for ``workers=1``,
the pickle across the process boundary otherwise — so a sweep never
mutates parent-side device or keygen state either way.

Payloads must be picklable for ``workers > 1`` (library objects are;
user-supplied attack factories must be module-level callables, not
lambdas).  ``workers=1`` relaxes this to deep-copyability, which keeps
lambda factories working for in-process sweeps.

Both entry points also accept ``supervision=`` — a
:class:`repro.fleet.resilience.Supervisor` — which reroutes the sweep
through the fault-tolerant supervised executor (per-chunk watchdog,
seeded retry/backoff, quarantine, in-process degradation) with the
same bitwise results contract.  See :mod:`repro.fleet.resilience` and
``docs/resilience.md``.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

#: A job maps one device's payload to a tuple of numeric outputs.
JobFn = Callable[[object], Tuple]


def resolve_workers(workers: Optional[int],
                    count: Optional[int] = None) -> int:
    """Normalise the ``workers`` knob to a positive worker count.

    ``None`` and ``0`` mean "one worker per available CPU"; any other
    value must be a positive integer.  When *count* (the number of
    payloads) is given, the result is additionally capped at it —
    requesting more workers than there is work never spawns idle
    processes.
    """
    if workers is None or workers == 0:
        resolved = max(1, os.cpu_count() or 1)
    else:
        resolved = int(workers)
        if resolved < 1:
            raise ValueError("workers must be a positive integer, 0 "
                             "or None (auto)")
    if count is not None:
        resolved = max(1, min(resolved, int(count)))
    return resolved


def _ensure_picklable(run_job: JobFn,
                      payloads: Sequence[object]) -> None:
    """Fail fast, and helpfully, before a pool sees a bad payload.

    A non-picklable job or payload (typically a lambda attack factory)
    would otherwise surface as a raw pickling traceback from deep
    inside the pool machinery — worse under spawn/forkserver, where
    the error appears asynchronously.  This pre-check names the
    offending payload and the fix instead.
    """
    try:
        pickle.dumps(run_job)
    except Exception as error:
        raise ValueError(
            f"job function {run_job!r} is not picklable and cannot "
            f"cross a process boundary ({error}). Use a module-level "
            f"callable instead of a lambda/closure, or run with "
            f"workers=1 and no supervision for in-process execution."
        ) from None
    for index, payload in enumerate(payloads):
        try:
            pickle.dumps(payload)
        except Exception as error:
            raise ValueError(
                f"payload {index} is not picklable and cannot cross "
                f"a process boundary ({error}). Attack/keygen "
                f"factories must be module-level callables (see "
                f"repro.fleet.campaign), or run with workers=1 and "
                f"no supervision for in-process execution."
            ) from None


def chunk_indices(count: int, chunks: int) -> List[np.ndarray]:
    """Split ``range(count)`` into at most *chunks* contiguous blocks.

    Chunks are the unit of work handed to a pool worker and the unit of
    shared-memory writeback; contiguity keeps each worker's writes in
    one cache-friendly slice.  Empty blocks are dropped.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if chunks < 1:
        raise ValueError("need at least one chunk")
    return [block for block in np.array_split(np.arange(count), chunks)
            if block.size]


def _pool_context():
    """The platform-default multiprocessing start method.

    Deliberately not forced to ``fork``: CPython picks per platform
    and version (fork on Linux ≤ 3.13, forkserver on Linux 3.14+,
    spawn on macOS/Windows) precisely because forking a multi-threaded
    parent can deadlock children.  Sweep payloads are picklable, so
    every start method works; under spawn/forkserver, scripts calling
    parallel sweeps at module level need the standard
    ``if __name__ == "__main__":`` guard.
    """
    return multiprocessing.get_context()


@dataclass(frozen=True)
class _BufferSlot:
    """Attach handle for one shared-memory result vector."""

    name: str
    length: int
    dtype: str


class SharedResultBuffer:
    """A 1-D result vector in shared memory, filled chunk-by-chunk.

    The parent allocates the buffer and passes :attr:`slot` to workers;
    each worker attaches, writes the entries of its device chunk, and
    detaches.  :meth:`read` copies the vector out so the segment can be
    unlinked as soon as the sweep completes.
    """

    def __init__(self, length: int, dtype) -> None:
        self._dtype = np.dtype(dtype)
        self._length = int(length)
        size = max(1, self._length * self._dtype.itemsize)
        self._shm = shared_memory.SharedMemory(create=True, size=size)
        self.view()[:] = 0

    @property
    def slot(self) -> _BufferSlot:
        """Pickle-friendly handle workers use to attach."""
        return _BufferSlot(self._shm.name, self._length,
                           self._dtype.str)

    def view(self) -> np.ndarray:
        """The parent's live view of the shared vector."""
        return np.ndarray((self._length,), dtype=self._dtype,
                          buffer=self._shm.buf)

    def read(self) -> np.ndarray:
        """A private copy of the current buffer contents."""
        return self.view().copy()

    def dispose(self) -> None:
        """Release and unlink the shared segment."""
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def _write_chunk(run_job: JobFn, slots: Sequence[_BufferSlot],
                 indices: Sequence[int],
                 payloads: Sequence[object]) -> None:
    """Worker body: run a chunk of jobs, scatter outputs into shm."""
    segments = [shared_memory.SharedMemory(name=slot.name)
                for slot in slots]
    try:
        views = [np.ndarray((slot.length,), dtype=slot.dtype,
                            buffer=segment.buf)
                 for slot, segment in zip(slots, segments)]
        try:
            for index, payload in zip(indices, payloads):
                for view, value in zip(views, run_job(payload)):
                    view[index] = value
        finally:
            # Drop the buffer exports before closing; a propagating
            # job exception must not be masked by close() complaints.
            views.clear()
            del views
    finally:
        for segment in segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - interpreter-
                pass             # version dependent export tracking


def _collect_chunk(run_job: JobFn,
                   payloads: Sequence[object]) -> List[object]:
    """Worker body: run a chunk of jobs, return results by value."""
    return [run_job(payload) for payload in payloads]


def _run_inprocess(run_job: JobFn, payloads: Sequence[object],
                   shared: Sequence[object] = ()) -> list:
    """Single-worker path: same mutation semantics as the pool path.

    Jobs run against deep copies so parent-side keygen streams stay
    untouched, exactly as they do when the payload is pickled to
    another process.  Objects in *shared* are kept by reference
    instead of copied — the caller guarantees jobs never mutate them
    (fleet sweeps treat device models as read-only: all noise comes
    from explicit job streams), which skips duplicating the device
    physics on every in-process sweep.
    """
    results = []
    for payload in payloads:
        memo = {id(obj): obj for obj in shared}
        results.append(run_job(copy.deepcopy(payload, memo)))
    return results


def run_scattered(run_job: JobFn, payloads: Sequence[object],
                  dtypes: Sequence, workers: Optional[int] = 1,
                  shared: Sequence[object] = (),
                  supervision=None) -> Tuple[np.ndarray, ...]:
    """Run one job per payload; scatter numeric outputs per device.

    *run_job* must return one scalar per entry of *dtypes* for every
    payload.  Returns one 1-D array per dtype, each of length
    ``len(payloads)``, with entry ``i`` produced by ``payloads[i]`` —
    bitwise-independent of *workers* and of how devices were chunked.
    *shared* lists read-only payload constituents exempt from the
    in-process defensive copy (see :func:`_run_inprocess`).
    *supervision* (a :class:`repro.fleet.resilience.Supervisor`)
    reroutes the sweep through the fault-tolerant executor; it always
    isolates chunks in watched child processes, so payloads must then
    be picklable even with ``workers=1``.
    """
    if supervision is not None:
        from repro.fleet.resilience import run_supervised_scattered
        return run_supervised_scattered(run_job, payloads, dtypes,
                                        workers, shared, supervision)
    count = len(payloads)
    resolved = resolve_workers(workers, count)
    if resolved == 1 or count <= 1:
        outputs = [np.zeros(count, dtype=dt) for dt in dtypes]
        for index, values in enumerate(
                _run_inprocess(run_job, payloads, shared)):
            for output, value in zip(outputs, values):
                output[index] = value
        return tuple(outputs)

    _ensure_picklable(run_job, payloads)
    # Buffers are allocated inside the try so that a failure while
    # allocating buffer k still disposes buffers 0..k-1 — a
    # list-comprehension outside it would orphan those segments.
    buffers: List[SharedResultBuffer] = []
    try:
        for dt in dtypes:
            buffers.append(SharedResultBuffer(count, dt))
        slots = [buffer.slot for buffer in buffers]
        chunks = chunk_indices(count, min(count, 4 * resolved))
        with ProcessPoolExecutor(
                max_workers=min(resolved, len(chunks)),
                mp_context=_pool_context()) as pool:
            futures = [
                pool.submit(_write_chunk, run_job, slots,
                            block.tolist(),
                            [payloads[i] for i in block])
                for block in chunks]
            for future in futures:
                future.result()
        return tuple(buffer.read() for buffer in buffers)
    finally:
        for buffer in buffers:
            buffer.dispose()


def run_collected(run_job: JobFn, payloads: Sequence[object],
                  workers: Optional[int] = 1,
                  shared: Sequence[object] = (),
                  supervision=None) -> list:
    """Run one job per payload; collect Python results in order.

    Like :func:`run_scattered` but for jobs whose outputs are objects
    (enrollment produces keygens and helper data); results travel back
    through the future machinery instead of shared memory.  *shared*
    lists read-only payload constituents exempt from the in-process
    defensive copy.  *supervision* reroutes through the fault-tolerant
    executor exactly as in :func:`run_scattered`.
    """
    if supervision is not None:
        from repro.fleet.resilience import run_supervised_collected
        return run_supervised_collected(run_job, payloads, workers,
                                        shared, supervision)
    count = len(payloads)
    resolved = resolve_workers(workers, count)
    if resolved == 1 or count <= 1:
        return _run_inprocess(run_job, payloads, shared)
    _ensure_picklable(run_job, payloads)
    chunks = chunk_indices(count, min(count, 4 * resolved))
    results: list = [None] * count
    with ProcessPoolExecutor(max_workers=min(resolved, len(chunks)),
                             mp_context=_pool_context()) as pool:
        futures = [(block,
                    pool.submit(_collect_chunk, run_job,
                                [payloads[i] for i in block]))
                   for block in chunks]
        for block, future in futures:
            for index, result in zip(block, future.result()):
                results[index] = result
    return results
