"""Multi-device fleets: manufacture, enroll and sweep IC populations.

The paper's claims are population statements — failure rates, entropy
and attack cost over *manufactured devices*, not over one lucky sample.
A :class:`Fleet` manufactures many :class:`~repro.puf.ro_array.ROArray`
instances from one experiment seed (independent child RNG streams, so
device ``i`` is identical no matter how many siblings exist), enrolls a
construction on each, and runs chunked Monte-Carlo sweeps through the
batched oracle so population curves cost one vectorized pass per device
instead of nested Python loops.

Chunking bounds peak memory: a sweep over ``trials`` reconstructions
materialises at most ``chunk × n`` measurement floats at a time,
whatever the requested trial count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro._rng import RNGLike, spawn
from repro.analysis.entropy import bit_bias, inter_device_distances
from repro.core.batch_oracle import BatchOracle
from repro.keygen.base import KeyGenerator, OperatingPoint
from repro.puf.parameters import ROArrayParams
from repro.puf.ro_array import ROArray

#: Builds one device model per IC sample (constructions keep per-device
#: sketch caches, so sharing one instance across a fleet is also fine).
KeyGenFactory = Callable[[], KeyGenerator]


@dataclass(frozen=True)
class FleetEnrollment:
    """Enrollment of one construction across a fleet.

    Key lengths are device-dependent for the selection-based schemes,
    so keys are kept as a list; :meth:`key_matrix` truncates to the
    common prefix when a rectangular view is needed for entropy
    statistics.
    """

    keygens: Tuple[KeyGenerator, ...]
    helpers: Tuple[object, ...]
    keys: Tuple[np.ndarray, ...]

    def __len__(self) -> int:
        return len(self.helpers)

    @property
    def key_bits(self) -> np.ndarray:
        """Key length of every device."""
        return np.array([key.size for key in self.keys])

    def key_matrix(self) -> np.ndarray:
        """Keys truncated to the fleet-wide minimum length."""
        if not self.keys:
            return np.zeros((0, 0), dtype=np.uint8)
        width = int(min(key.size for key in self.keys))
        return np.stack([key[:width] for key in self.keys]).astype(
            np.uint8)

    def uniqueness(self) -> float:
        """Mean pairwise fractional Hamming distance (ideal: 0.5)."""
        matrix = self.key_matrix()
        if matrix.shape[0] < 2 or matrix.shape[1] == 0:
            raise ValueError("need two devices with non-empty keys")
        return float(np.mean(inter_device_distances(matrix)))

    def bit_aliasing(self) -> np.ndarray:
        """Per-position mean key bit across devices (ideal: 0.5)."""
        matrix = self.key_matrix()
        if matrix.shape[0] == 0:
            raise ValueError("need at least one device")
        return bit_bias(matrix)


class Fleet:
    """A population of manufactured IC samples.

    Parameters
    ----------
    params:
        Physical parameter set shared by the population.
    size:
        Number of manufactured devices.
    seed:
        Experiment seed; device streams are spawned children, so
        results are reproducible and device ``i`` does not depend on
        ``size``.
    """

    def __init__(self, params: ROArrayParams, size: int,
                 seed: RNGLike = None):
        if size < 1:
            raise ValueError("a fleet needs at least one device")
        self._params = params
        self._arrays = [ROArray(params, rng=child)
                        for child in spawn(seed, size)]

    @classmethod
    def from_arrays(cls, arrays: Sequence[ROArray]) -> "Fleet":
        """Wrap already-manufactured devices into a fleet."""
        if not arrays:
            raise ValueError("a fleet needs at least one device")
        fleet = cls.__new__(cls)
        fleet._params = arrays[0].params
        fleet._arrays = list(arrays)
        return fleet

    @property
    def params(self) -> ROArrayParams:
        return self._params

    @property
    def devices(self) -> List[ROArray]:
        return list(self._arrays)

    def __len__(self) -> int:
        return len(self._arrays)

    def __iter__(self) -> Iterator[ROArray]:
        return iter(self._arrays)

    def __getitem__(self, index: int) -> ROArray:
        return self._arrays[index]

    # ------------------------------------------------------------------
    # enrollment

    def enroll(self, keygen_factory: KeyGenFactory,
               seed: RNGLike = None) -> FleetEnrollment:
        """Enroll one construction on every device.

        Enrollment randomness is spawned per device from *seed*, so a
        fleet enrollment is as reproducible as a single-device one.
        """
        keygens: List[KeyGenerator] = []
        helpers: List[object] = []
        keys: List[np.ndarray] = []
        for array, child in zip(self._arrays,
                                spawn(seed, len(self._arrays))):
            keygen = keygen_factory()
            helper, key = keygen.enroll(array, rng=child)
            keygens.append(keygen)
            helpers.append(helper)
            keys.append(key)
        return FleetEnrollment(tuple(keygens), tuple(helpers),
                               tuple(keys))

    def oracles(self, enrollment: FleetEnrollment,
                op: OperatingPoint = OperatingPoint()
                ) -> List[BatchOracle]:
        """One batched failure oracle per enrolled device."""
        return [BatchOracle(array, keygen, op=op)
                for array, keygen in zip(self._arrays,
                                         enrollment.keygens)]

    # ------------------------------------------------------------------
    # Monte-Carlo sweeps

    def failure_rates(self, enrollment: FleetEnrollment, trials: int,
                      op: Optional[OperatingPoint] = None,
                      helpers: Optional[Sequence[object]] = None,
                      chunk: int = 1024) -> np.ndarray:
        """Per-device key-regeneration failure rate over *trials*.

        *helpers* overrides the enrolled helper data (e.g. a fleet-wide
        manipulation under study); trials are executed in blocks of at
        most *chunk* queries to bound memory.
        """
        if trials < 1:
            raise ValueError("need at least one trial")
        if chunk < 1:
            raise ValueError("chunk must be positive")
        if helpers is None:
            helpers = enrollment.helpers
        if len(helpers) != len(self._arrays):
            raise ValueError("one helper per device required")
        resolved = op if op is not None else OperatingPoint()
        rates = np.empty(len(self._arrays))
        for index, oracle in enumerate(self.oracles(enrollment,
                                                    op=resolved)):
            failures = 0
            remaining = trials
            while remaining > 0:
                block = min(chunk, remaining)
                outcomes = oracle.query_block(helpers[index], block)
                failures += int(np.count_nonzero(~outcomes))
                remaining -= block
            rates[index] = failures / trials
        return rates

    def reliability_curve(self, enrollment: FleetEnrollment,
                          temperatures: Sequence[float], trials: int,
                          chunk: int = 1024) -> np.ndarray:
        """Success rates over an environmental sweep.

        Returns a ``(len(temperatures), len(fleet))`` matrix of key
        regeneration success rates, each entry estimated from *trials*
        batched reconstructions at that operating point.
        """
        curve = np.empty((len(temperatures), len(self._arrays)))
        for row, temperature in enumerate(temperatures):
            op = OperatingPoint(temperature=float(temperature))
            curve[row] = 1.0 - self.failure_rates(
                enrollment, trials, op=op, chunk=chunk)
        return curve

    def attack_success(self, enrollment: FleetEnrollment,
                       attack_factory: Callable[
                           [BatchOracle, KeyGenerator, object], object],
                       op: OperatingPoint = OperatingPoint()
                       ) -> Tuple[np.ndarray, np.ndarray]:
        """Run a full helper-data attack against every device.

        *attack_factory(oracle, keygen, helper)* builds an attack
        driver exposing ``run()`` with a ``key`` attribute on its
        result.  Returns ``(recovered, queries)``: a boolean
        key-recovery mask and the per-device oracle query bill.  The
        drivers run their distinguishers through the batched oracle, so
        a fleet-wide campaign stays one vectorized block per decision.
        """
        recovered = np.zeros(len(self._arrays), dtype=bool)
        queries = np.zeros(len(self._arrays), dtype=np.int64)
        oracles = self.oracles(enrollment, op=op)
        for index, oracle in enumerate(oracles):
            attack = attack_factory(oracle, enrollment.keygens[index],
                                    enrollment.helpers[index])
            result = attack.run()
            key = getattr(result, "key", None)
            recovered[index] = (key is not None and np.array_equal(
                key, enrollment.keys[index]))
            queries[index] = getattr(result, "queries", oracle.queries)
        return recovered, queries
