"""Multi-device fleets: manufacture, enroll and sweep IC populations.

The paper's claims are population statements — failure rates, entropy
and attack cost over *manufactured devices*, not over one lucky sample.
A :class:`Fleet` manufactures many :class:`~repro.puf.ro_array.ROArray`
instances from one experiment seed (independent child RNG streams, so
device ``i`` is identical no matter how many siblings exist), enrolls a
construction on each, and runs chunked Monte-Carlo sweeps through the
batched oracle so population curves cost one vectorized pass per device
instead of nested Python loops.

Two knobs bound resources and scale the sweeps:

* ``chunk`` bounds peak memory: a sweep over ``trials`` reconstructions
  materialises at most ``chunk × n`` measurement floats at a time,
  whatever the requested trial count.
* ``workers`` splits the device population across a process pool with
  shared-memory result buffers (see :mod:`repro.fleet.parallel`).

Sweeps follow a strict seeding discipline — population seed → per-sweep
device substreams, all derived in the parent before any dispatch — so a
sweep's results are **bitwise-identical for every worker count and
chunk size**, and sweeps never consume the devices' own internal noise
streams.  ``docs/fleet.md`` spells out the contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro._rng import RNGLike, ensure_rng, spawn
from repro.analysis.entropy import bit_bias, inter_device_distances
from repro.core.batch_oracle import BatchOracle
from repro.fleet.campaign import run_campaign
from repro.fleet.parallel import (
    resolve_workers,
    run_collected,
    run_scattered,
)
from repro.keygen.base import KeyGenerator, OperatingPoint
from repro.puf.parameters import ROArrayParams
from repro.puf.ro_array import ROArray

#: Builds one device model per IC sample.  The factory must construct
#: a fresh ``KeyGenerator`` on every call (a class or
#: ``functools.partial`` does): the resulting enrollment then holds
#: one independent keygen per device.  A factory returning a pre-built
#: shared instance is not supported — deep copy treats the factory
#: closure as atomic, so ``workers=1`` would alias that instance
#: across all devices while ``workers > 1`` would copy it per chunk.
KeyGenFactory = Callable[[], KeyGenerator]

#: Builds one attack driver per device; must be picklable (a
#: module-level callable) when sweeps run with ``workers > 1``.
AttackFactory = Callable[[BatchOracle, KeyGenerator, object], object]


@dataclass(frozen=True)
class FleetEnrollment:
    """Enrollment of one construction across a fleet.

    Key lengths are device-dependent for the selection-based schemes,
    so keys are kept as a list; :meth:`key_matrix` truncates to the
    common prefix when a rectangular view is needed for entropy
    statistics.
    """

    keygens: Tuple[KeyGenerator, ...]
    helpers: Tuple[object, ...]
    keys: Tuple[np.ndarray, ...]

    def __len__(self) -> int:
        return len(self.helpers)

    @property
    def key_bits(self) -> np.ndarray:
        """Key length of every device."""
        return np.array([key.size for key in self.keys])

    def key_matrix(self) -> np.ndarray:
        """Keys truncated to the fleet-wide minimum length.

        Returns a ``(devices, min_bits)`` uint8 matrix.
        """
        if not self.keys:
            return np.zeros((0, 0), dtype=np.uint8)
        width = int(min(key.size for key in self.keys))
        return np.stack([key[:width] for key in self.keys]).astype(
            np.uint8)

    def uniqueness(self) -> float:
        """Mean pairwise fractional Hamming distance (ideal: 0.5)."""
        matrix = self.key_matrix()
        if matrix.shape[0] < 2 or matrix.shape[1] == 0:
            raise ValueError("need two devices with non-empty keys")
        return float(np.mean(inter_device_distances(matrix)))

    def bit_aliasing(self) -> np.ndarray:
        """Per-position mean key bit across devices (ideal: 0.5)."""
        matrix = self.key_matrix()
        if matrix.shape[0] == 0:
            raise ValueError("need at least one device")
        return bit_bias(matrix)


# ----------------------------------------------------------------------
# per-device jobs (module level so the process pool can pickle them)


@dataclass
class _EnrollJob:
    """One device's enrollment work order."""

    array: ROArray
    factory: KeyGenFactory
    stream: np.random.Generator


def _enroll_job(job: _EnrollJob) -> Tuple[KeyGenerator, object,
                                          np.ndarray]:
    """Enroll one device; returns ``(keygen, helper, key)``."""
    keygen = job.factory()
    helper, key = keygen.enroll(job.array, rng=job.stream)
    return keygen, helper, key


@dataclass
class _FailureRateJob:
    """One device's share of a failure-rate sweep."""

    array: ROArray
    keygen: KeyGenerator
    helper: object
    op: OperatingPoint
    trials: int
    chunk: int
    stream: np.random.Generator
    transient: np.random.Generator
    #: Built per-device environment trajectory (or ``None``).
    trajectory: Optional[object] = None


def _failure_rate_job(job: _FailureRateJob) -> Tuple[float]:
    """Estimate one device's failure rate over ``job.trials``."""
    job.keygen.reseed_transient_streams(job.transient)
    oracle = BatchOracle(job.array, job.keygen, op=job.op,
                         rng=job.stream,
                         trajectory=job.trajectory)
    failures = 0
    remaining = job.trials
    while remaining > 0:
        block = min(job.chunk, remaining)
        outcomes = oracle.query_block(job.helper, block)
        failures += int(np.count_nonzero(~outcomes))
        remaining -= block
    return (failures / job.trials,)


@dataclass
class _AttackChunkJob:
    """One worker's share of an attack campaign: a device chunk.

    The chunk is the lock-step unit — the devices listed here advance
    through the campaign scheduler together inside one worker; with
    ``lockstep=False`` the same chunk falls back to the per-device
    scalar loop (one ``run()`` at a time), which is the executable
    equivalence reference.
    """

    arrays: List[ROArray]
    keygens: List[KeyGenerator]
    helpers: List[object]
    keys: List[np.ndarray]
    op: OperatingPoint
    attack_factory: AttackFactory
    streams: List[Tuple[np.random.Generator, np.random.Generator]]
    lockstep: bool
    fused: bool = True
    #: Built per-device environment trajectories (or ``None``).
    trajectories: Optional[List[object]] = None


def _run_chunk_attacks(job: _AttackChunkJob
                       ) -> Tuple[List[object], List[BatchOracle]]:
    """Shared chunk body: build oracles/attacks, run the campaign.

    The chunk is also the supervised executor's retry unit: because
    the job only consumes streams handed to it (derived parent-side)
    and runs against payload copies, re-executing a chunk from
    scratch reproduces it bitwise.
    """
    oracles: List[BatchOracle] = []
    attacks: List[object] = []
    trajectories = (job.trajectories if job.trajectories is not None
                    else [None] * len(job.arrays))
    for array, keygen, helper, (stream, transient), trajectory in zip(
            job.arrays, job.keygens, job.helpers, job.streams,
            trajectories):
        keygen.reseed_transient_streams(transient)
        oracle = BatchOracle(array, keygen, op=job.op, rng=stream,
                             trajectory=trajectory)
        oracles.append(oracle)
        attacks.append(job.attack_factory(oracle, keygen, helper))
    if job.lockstep:
        results = run_campaign(oracles, attacks, fused=job.fused)
    else:
        results = [attack.run() for attack in attacks]
    return results, oracles


def _attack_chunk_job(job: _AttackChunkJob) -> List[Tuple[bool, int]]:
    """Run one chunk's attacks; ``(recovered, queries)`` per device."""
    results, oracles = _run_chunk_attacks(job)
    report: List[Tuple[bool, int]] = []
    for result, oracle, key in zip(results, oracles, job.keys):
        recovered_key = getattr(result, "key", None)
        recovered = (recovered_key is not None
                     and bool(np.array_equal(recovered_key, key)))
        report.append((recovered,
                       int(getattr(result, "queries",
                                   oracle.queries))))
    return report


def _attack_results_chunk_job(job: _AttackChunkJob) -> List[object]:
    """Run one chunk's attacks; raw result objects per device."""
    results, _ = _run_chunk_attacks(job)
    return results


class Fleet:
    """A population of manufactured IC samples.

    Parameters
    ----------
    params:
        Physical parameter set shared by the population.
    size:
        Number of manufactured devices.
    seed:
        Experiment seed.  Device streams are spawned children, so
        results are reproducible and device ``i`` does not depend on
        ``size``; sweep noise substreams are spawned from the same
        root, so successive sweeps are reproducible given the seed and
        the call order.
    """

    def __init__(self, params: ROArrayParams, size: int,
                 seed: RNGLike = None):
        if size < 1:
            raise ValueError("a fleet needs at least one device")
        self._params = params
        self._root = ensure_rng(seed)
        self._arrays = [ROArray(params, rng=child)
                        for child in self._root.spawn(size)]

    @classmethod
    def from_arrays(cls, arrays: Sequence[ROArray],
                    seed: RNGLike = None) -> "Fleet":
        """Wrap already-manufactured devices into a fleet.

        *seed* feeds the sweep-substream root; omit it for fresh
        unpredictable sweep noise (results remain worker-count
        invariant within each sweep, but are not reproducible across
        runs).
        """
        if not arrays:
            raise ValueError("a fleet needs at least one device")
        fleet = cls.__new__(cls)
        fleet._params = arrays[0].params
        fleet._root = ensure_rng(seed)
        fleet._arrays = list(arrays)
        return fleet

    @property
    def params(self) -> ROArrayParams:
        """Physical parameter set shared by the population."""
        return self._params

    @property
    def devices(self) -> List[ROArray]:
        """The manufactured device models, in fleet order."""
        return list(self._arrays)

    def __len__(self) -> int:
        return len(self._arrays)

    def __iter__(self) -> Iterator[ROArray]:
        return iter(self._arrays)

    def __getitem__(self, index: int) -> ROArray:
        return self._arrays[index]

    def _sweep_streams(self) -> List[Tuple[np.random.Generator,
                                           np.random.Generator]]:
        """Fresh per-device ``(noise, transient)`` sweep substreams.

        Two substreams per device: one feeds the oracle's measurement
        noise, the other re-seeds the keygen's transient per-query
        randomness (e.g. the temperature-aware sensor stream), so
        successive sweeps draw independent sensor noise too.  All
        substreams are spawned from the population root in the parent
        process, *before* any dispatch: stream identity is therefore a
        function of (population seed, sweep call order, device index)
        only — never of worker count, chunking or scheduling.
        """
        streams = self._root.spawn(2 * len(self._arrays))
        return list(zip(streams[0::2], streams[1::2]))

    def _build_trajectories(self, spec) -> Optional[List[object]]:
        """Per-device built trajectories, in fleet order.

        *spec* is a
        :class:`~repro.scenario.trajectory.TrajectorySpec` (or
        ``None``).  Building happens in the parent before any
        dispatch, and each device's streams derive from ``(spec
        seed, device index)`` alone, so trajectory-driven sweeps
        keep the fleet's worker-count/chunk-size invariance.
        """
        if spec is None:
            return None
        return [spec.build(self._params, index)
                for index in range(len(self._arrays))]

    # ------------------------------------------------------------------
    # enrollment

    def enroll(self, keygen_factory: KeyGenFactory,
               seed: RNGLike = None,
               workers: Optional[int] = 1,
               supervision=None) -> FleetEnrollment:
        """Enroll one construction on every device.

        Enrollment randomness is spawned per device from *seed*, so a
        fleet enrollment is as reproducible as a single-device one and
        bitwise-independent of *workers*.  With ``workers > 1`` the
        factory must be picklable (module-level, not a lambda).
        *supervision* (a
        :class:`repro.fleet.resilience.Supervisor`) runs the
        enrollment under the fault-tolerant executor.
        """
        jobs = [_EnrollJob(array, keygen_factory, child)
                for array, child in zip(self._arrays,
                                        spawn(seed,
                                              len(self._arrays)))]
        results = run_collected(_enroll_job, jobs, workers=workers,
                                shared=self._arrays,
                                supervision=supervision)
        return FleetEnrollment(
            tuple(keygen for keygen, _, _ in results),
            tuple(helper for _, helper, _ in results),
            tuple(key for _, _, key in results))

    def oracles(self, enrollment: FleetEnrollment,
                op: OperatingPoint = OperatingPoint()
                ) -> List[BatchOracle]:
        """One batched failure oracle per enrolled device.

        These oracles draw noise from each device's own internal
        stream (scalar-compatible semantics); the sweep methods below
        instead derive dedicated substreams so they stay parallel- and
        repeat-deterministic.
        """
        return [BatchOracle(array, keygen, op=op)
                for array, keygen in zip(self._arrays,
                                         enrollment.keygens)]

    # ------------------------------------------------------------------
    # Monte-Carlo sweeps

    def failure_rates(self, enrollment: FleetEnrollment, trials: int,
                      op: Optional[OperatingPoint] = None,
                      helpers: Optional[Sequence[object]] = None,
                      chunk: int = 1024,
                      workers: Optional[int] = 1,
                      trajectory=None,
                      supervision=None) -> np.ndarray:
        """Per-device key-regeneration failure rate over *trials*.

        Parameters
        ----------
        helpers:
            Overrides the enrolled helper data (e.g. a fleet-wide
            manipulation under study).
        chunk:
            Trials are executed in blocks of at most *chunk* queries
            to bound memory.
        workers:
            Process-pool width; ``None``/``0`` uses every CPU.  The
            returned rates are bitwise-identical for every value.
        supervision:
            Optional :class:`repro.fleet.resilience.Supervisor`: the
            sweep runs under the fault-tolerant executor (watchdog,
            seeded retry, quarantine) with unchanged results.
        trajectory:
            Optional
            :class:`~repro.scenario.trajectory.TrajectorySpec`.  Each
            device runs its trials under its own built trajectory
            (ambient resolved per query index); the ambient overrides
            *op* for trajectory-driven queries.  Results stay
            bitwise-identical for every worker count and chunk size.

        Returns
        -------
        numpy.ndarray
            ``(len(fleet),)`` float64 failure-rate vector.
        """
        jobs = self.failure_rate_jobs(enrollment, trials, op=op,
                                      helpers=helpers, chunk=chunk,
                                      trajectory=trajectory)
        (rates,) = run_scattered(_failure_rate_job, jobs,
                                 (np.float64,), workers=workers,
                                 shared=self._arrays,
                                 supervision=supervision)
        return rates

    def failure_rate_jobs(self, enrollment: FleetEnrollment,
                          trials: int,
                          op: Optional[OperatingPoint] = None,
                          helpers: Optional[Sequence[object]] = None,
                          chunk: int = 1024,
                          trajectory=None) -> List[_FailureRateJob]:
        """Build the per-device job list of a failure-rate sweep.

        This is the shard-aware entry point behind
        :meth:`failure_rates`: it derives the sweep substreams (one
        ``(noise, transient)`` pair per device, advancing the
        population root exactly as the direct sweep would) and returns
        one self-contained, picklable job per device, in fleet order.
        Executing any partition of the list — locally, in a pool, or
        on distributed shard workers
        (:mod:`repro.service`) — and concatenating the per-device
        outputs in fleet order reproduces :meth:`failure_rates`
        bitwise.
        """
        if trials < 1:
            raise ValueError("need at least one trial")
        if chunk < 1:
            raise ValueError("chunk must be positive")
        if helpers is None:
            helpers = enrollment.helpers
        if len(helpers) != len(self._arrays):
            raise ValueError("one helper per device required")
        resolved = op if op is not None else OperatingPoint()
        trajectories = self._build_trajectories(trajectory)
        return [_FailureRateJob(array, keygen, helper, resolved,
                                trials, chunk, stream, transient,
                                None if trajectories is None
                                else trajectories[index])
                for index, (array, keygen, helper,
                            (stream, transient)) in enumerate(zip(
                    self._arrays, enrollment.keygens, helpers,
                    self._sweep_streams()))]

    def reliability_curve(self, enrollment: FleetEnrollment,
                          temperatures: Sequence[float], trials: int,
                          chunk: int = 1024,
                          workers: Optional[int] = 1,
                          supervision=None) -> np.ndarray:
        """Success rates over an environmental sweep.

        Returns a ``(len(temperatures), len(fleet))`` float64 matrix
        of key regeneration success rates, each entry estimated from
        *trials* batched reconstructions at that operating point.
        Each temperature row derives its own device substreams, so the
        matrix is bitwise-independent of *workers* and *chunk*; all
        ``rows × devices`` jobs run through one dispatch (one pool,
        one payload serialisation) instead of one pool per row.
        """
        if trials < 1:
            raise ValueError("need at least one trial")
        if chunk < 1:
            raise ValueError("chunk must be positive")
        devices = len(self._arrays)
        temps = [float(t) for t in temperatures]
        if not temps:
            return np.empty((0, devices))
        jobs = []
        for temperature in temps:
            point = OperatingPoint(temperature=temperature)
            jobs.extend(
                _FailureRateJob(array, keygen, helper, point, trials,
                                chunk, stream, transient)
                for array, keygen, helper, (stream, transient) in zip(
                    self._arrays, enrollment.keygens,
                    enrollment.helpers, self._sweep_streams()))
        (rates,) = run_scattered(_failure_rate_job, jobs,
                                 (np.float64,), workers=workers,
                                 shared=self._arrays,
                                 supervision=supervision)
        return 1.0 - rates.reshape(len(temps), devices)

    def attack_success(self, enrollment: FleetEnrollment,
                       attack_factory: AttackFactory,
                       op: OperatingPoint = OperatingPoint(),
                       workers: Optional[int] = 1,
                       lockstep: Optional[bool] = None,
                       batch: Optional[int] = None,
                       fused: Optional[bool] = None,
                       trajectory=None,
                       supervision=None
                       ) -> Tuple[np.ndarray, np.ndarray]:
        """Run a full helper-data attack against every device.

        *attack_factory(oracle, keygen, helper)* builds an attack
        driver exposing ``run()`` with a ``key`` attribute on its
        result; with ``workers > 1`` it must be picklable
        (module-level).  Returns ``(recovered, queries)``: a boolean
        key-recovery mask and the per-device ``int64`` oracle query
        bill.

        Parameters
        ----------
        lockstep:
            ``True`` runs the round-based lock-step campaign engine
            (:mod:`repro.fleet.campaign`): each worker advances its
            whole device chunk together, one fused oracle round per
            distinguisher block.  ``False`` keeps the per-device
            scalar loop.  ``None`` (default) auto-detects: lock-step
            whenever the driver exposes the stepwise ``steps()``
            protocol.  Either way the per-device results are
            **bitwise-identical** — lock-stepping only reorders work
            across devices, never within one device's oracle stream.
        batch:
            Devices per lock-step chunk (and per worker dispatch).
            Defaults to an even split over the resolved worker count,
            i.e. the widest batch the pool allows.  Lock-step within a
            worker composes with processes across chunks.
        fused:
            Cross-device completion fusion inside each lock-step
            round: the frontier's ECC kernel work is grouped by
            kernel key and run as one call per distinct code
            (:mod:`repro.ecc.kernel`).  ``None`` (default) turns
            fusion on exactly when lock-step is active; it has no
            effect on the scalar loop.  Like *lockstep*, it changes
            execution grouping only — per-device results stay
            bitwise-identical.
        trajectory:
            Optional
            :class:`~repro.scenario.trajectory.TrajectorySpec`: the
            attacked devices live under per-device environment
            trajectories (built parent-side, in fleet order).
            Attack queries without an explicit operating point see
            the trajectory ambient; explicitly-set points (attacker
            chamber control, e.g. the temp-aware attack) override
            it, aging drift excepted.
        supervision:
            Optional :class:`repro.fleet.resilience.Supervisor`: the
            campaign runs under the fault-tolerant executor with
            chunk-level retry of each :class:`_AttackChunkJob`; the
            per-device results contract is unchanged.
        """
        count = len(self._arrays)
        spans = None
        if batch is not None:
            width = int(batch)
            if width < 1:
                raise ValueError("batch must be a positive integer")
            spans = [(begin, min(begin + width, count))
                     for begin in range(0, count, width)]
        jobs = self.attack_chunk_jobs(enrollment, attack_factory,
                                      spans=spans, op=op,
                                      lockstep=lockstep, fused=fused,
                                      trajectory=trajectory,
                                      workers=workers)
        reports = run_collected(_attack_chunk_job, jobs,
                                workers=workers, shared=self._arrays,
                                supervision=supervision)
        flat = [entry for report in reports for entry in report]
        recovered = np.array([entry[0] for entry in flat],
                             dtype=np.bool_)
        queries = np.array([entry[1] for entry in flat],
                           dtype=np.int64)
        return recovered, queries

    def attack_chunk_jobs(self, enrollment: FleetEnrollment,
                          attack_factory: AttackFactory,
                          spans: Optional[Sequence[Tuple[int, int]]]
                          = None,
                          op: OperatingPoint = OperatingPoint(),
                          lockstep: Optional[bool] = None,
                          fused: Optional[bool] = None,
                          trajectory=None,
                          workers: Optional[int] = 1
                          ) -> List[_AttackChunkJob]:
        """Build the chunked job list of an attack campaign.

        This is the shard-aware entry point behind
        :meth:`attack_success` / :meth:`attack_results`: it derives
        the sweep substreams (advancing the population root exactly as
        a direct campaign would), resolves the lock-step/fusion knobs,
        and returns one self-contained, picklable
        :class:`_AttackChunkJob` per *span* — a ``(start, stop)``
        device range in fleet order.  *spans* default to the even
        split :meth:`attack_success` would use for *workers*; pass
        explicit contiguous ranges (e.g. a
        :class:`repro.service.ShardPlan`'s) to re-chunk the campaign.
        Per-device results are bitwise-invariant to the chunking, so
        any span partition merges to the same outcome.
        """
        count = len(self._arrays)
        streams = self._sweep_streams()
        trajectories = self._build_trajectories(trajectory)
        if lockstep is None:
            lockstep = self._supports_lockstep(enrollment,
                                               attack_factory, op)
        if fused is None:
            fused = bool(lockstep)
        if spans is None:
            resolved = resolve_workers(workers, count)
            chunks = max(1, min(count,
                                resolved if lockstep else 4 * resolved))
            width = -(-count // chunks)
            spans = [(begin, min(begin + width, count))
                     for begin in range(0, count, width)]
        jobs = []
        for start, stop in spans:
            if not 0 <= start < stop <= count:
                raise ValueError(
                    f"span ({start}, {stop}) outside the fleet's "
                    f"device range")
            indices = range(start, stop)
            jobs.append(_AttackChunkJob(
                [self._arrays[i] for i in indices],
                [enrollment.keygens[i] for i in indices],
                [enrollment.helpers[i] for i in indices],
                [enrollment.keys[i] for i in indices],
                op, attack_factory,
                [streams[i] for i in indices], bool(lockstep),
                bool(fused),
                None if trajectories is None
                else [trajectories[i] for i in indices]))
        return jobs

    def attack_results(self, enrollment: FleetEnrollment,
                       attack_factory: AttackFactory,
                       op: OperatingPoint = OperatingPoint(),
                       lockstep: Optional[bool] = None,
                       fused: Optional[bool] = None,
                       trajectory=None,
                       workers: Optional[int] = 1,
                       supervision=None) -> List[object]:
        """Run a full attack per device; return the raw result objects.

        Companion to :meth:`attack_success` for callers that need
        every attack's complete result — relations, comparer
        decisions, recovered keys — rather than the summary mask (the
        results warehouse fingerprints per-device decisions from
        these).  It follows the same sweep-stream discipline (one
        ``(noise, transient)`` substream pair per device, derived
        before any execution), so a device's result is
        bitwise-identical to what the matching :meth:`attack_success`
        call observes — whatever *workers* is, and whether or not a
        supervised run had to retry chunks.

        *lockstep* / *fused* / *trajectory* / *supervision* mean what
        they mean on :meth:`attack_success`; ``None`` auto-detects
        the stepwise protocol and fuses exactly when lock-stepping.
        The default ``workers=1`` without supervision keeps the
        historical single-process path (results built in this
        process); otherwise chunks dispatch through the pool or the
        supervised executor, and result objects must be picklable.
        """
        count = len(self._arrays)
        if lockstep is None:
            lockstep = self._supports_lockstep(enrollment,
                                               attack_factory, op)
        if fused is None:
            fused = bool(lockstep)
        resolved = resolve_workers(workers, count)
        if resolved == 1 and supervision is None:
            streams = self._sweep_streams()
            trajectories = self._build_trajectories(trajectory)
            built = ([None] * count if trajectories is None
                     else trajectories)
            oracles: List[BatchOracle] = []
            attacks: List[object] = []
            for array, keygen, helper, (stream, transient), traj in \
                    zip(self._arrays, enrollment.keygens,
                        enrollment.helpers, streams, built):
                keygen.reseed_transient_streams(transient)
                oracle = BatchOracle(array, keygen, op=op, rng=stream,
                                     trajectory=traj)
                oracles.append(oracle)
                attacks.append(attack_factory(oracle, keygen, helper))
            if lockstep:
                return run_campaign(oracles, attacks,
                                    fused=bool(fused))
            return [attack.run() for attack in attacks]
        jobs = self.attack_chunk_jobs(enrollment, attack_factory,
                                      op=op, lockstep=lockstep,
                                      fused=fused,
                                      trajectory=trajectory,
                                      workers=workers)
        reports = run_collected(_attack_results_chunk_job, jobs,
                                workers=workers, shared=self._arrays,
                                supervision=supervision)
        return [result for report in reports for result in report]

    def _supports_lockstep(self, enrollment: FleetEnrollment,
                           attack_factory: AttackFactory,
                           op: OperatingPoint) -> bool:
        """Probe whether the factory's drivers speak the stepwise
        protocol (a throwaway driver build; no oracle queries)."""
        try:
            probe = attack_factory(
                BatchOracle(self._arrays[0], enrollment.keygens[0],
                            op=op),
                enrollment.keygens[0], enrollment.helpers[0])
        except Exception:
            # Let the real dispatch surface construction errors.
            return False
        return hasattr(probe, "steps")
