"""Round-based lock-step execution of one attack across many devices.

``Fleet.attack_success`` used to walk its device population one attack
at a time: each worker drove one adaptive attack loop to completion,
one distinguisher decision per oracle round trip, before touching the
next device.  :class:`LockstepCampaign` turns that inside out.  Every
device's attack runs as a stepwise generator
(:mod:`repro.core.lockstep`); the campaign gathers the **frontier** —
the pending request of every still-active device — each round and
advances all of them together through the vectorized lane engines: one
noise block per device, one batched bookkeeping pass per request type
(per-device accept/reject/continue masks, variable per-device query
counts), then the finished devices' generators resume and contribute
their next request to the following round.

Devices finish at different rounds; the frontier simply shrinks.
Because every lane consumes only its own oracle's stream, in request
order, with speculative tails unwound, per-device decisions, query
bills and recovered keys are **bitwise-identical** to driving each
attack alone — the property that lets the lock-step path slot under
``Fleet.attack_success`` (lock-step within a worker, processes across
chunks) without changing a single reported number.

The same property makes the campaign chunk the natural **retry unit**
for supervised execution (:mod:`repro.fleet.resilience`): a chunk's
``_AttackChunkJob`` consumes only parent-derived streams against
payload copies, so a crashed or timed-out chunk re-runs from scratch
and lands on the same bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.batch_oracle import BatchOracle
from repro.core.distiller_attack import DistillerPairingAttack
from repro.core.group_attack import GroupBasedAttack
from repro.core.lockstep import AttackSteps, Lane, lane_engines
from repro.core.sequential_attack import SequentialPairingAttack
from repro.core.temp_aware_attack import TempAwareAttack


class LockstepCampaign:
    """Drives a batch of stepwise attacks in shared rounds.

    Parameters
    ----------
    lanes:
        One ``(oracle, steps)`` pair per device: the device's batched
        oracle and the attack's :meth:`steps` generator.  Oracles must
        be distinct objects — each lane owns its noise stream.
    fused:
        Cross-device completion fusion (default on).  Each round, the
        frontier's evaluation requests are taken through the
        two-phase protocol — per-device ``plan_rows``, then **one ECC
        kernel call per distinct kernel key across every device in
        the round** (:func:`repro.ecc.kernel.run_kernels`), then
        per-device finalize — instead of one kernel chain per device.
        Per-device decisions, query bills and recovered keys are
        bitwise-identical either way (``docs/evaluators.md``); fusion
        only amortizes the per-call fixed cost of many tiny
        completions, the measured hot spot of campaign rounds
        (``benchmarks/bench_campaign_fusion.py``).
    """

    def __init__(self, lanes: Sequence[Tuple[BatchOracle, AttackSteps]],
                 fused: bool = True) -> None:
        self._entries = list(lanes)
        self._fused = bool(fused)

    def run(self) -> List[object]:
        """Execute every attack to completion; results in lane order.

        Each scheduler round partitions the active frontier by request
        type and hands every group to its lane engine for one block of
        progress; devices whose request completed are resumed
        immediately so their next request joins the very next round.
        """
        engines = lane_engines(fused=self._fused)
        results: List[object] = [None] * len(self._entries)
        active: List[Tuple[int, AttackSteps, Lane]] = []
        for index, (oracle, steps) in enumerate(self._entries):
            slot = self._advance(index, steps, oracle, None, results)
            if slot is not None:
                active.append(slot)
        while active:
            progressed = False
            for engine in engines:
                lanes = [lane for _, _, lane in active
                         if isinstance(lane.request,
                                       engine.request_type)]
                if lanes:
                    engine.step(lanes)
                    progressed = True
            if not progressed:
                request = active[0][2].request
                raise TypeError(
                    f"no lane engine accepts request {request!r}")
            survivors: List[Tuple[int, AttackSteps, Lane]] = []
            for index, steps, lane in active:
                if not lane.finished:
                    survivors.append((index, steps, lane))
                    continue
                slot = self._advance(index, steps, lane.oracle,
                                     lane.outcome, results)
                if slot is not None:
                    survivors.append(slot)
            active = survivors
        return results

    @staticmethod
    def _advance(index: int, steps: AttackSteps, oracle: BatchOracle,
                 reply, results: List[object]
                 ) -> Optional[Tuple[int, AttackSteps, Lane]]:
        """Resume one generator; park its next request or its result."""
        try:
            request = steps.send(reply)
        except StopIteration as stop:
            results[index] = stop.value
            return None
        return index, steps, Lane(oracle, request)


def run_campaign(oracles: Sequence[BatchOracle],
                 attacks: Sequence[object],
                 fused: bool = True) -> List[object]:
    """Lock-step a batch of constructed attack drivers.

    Convenience wrapper pairing each attack's ``steps()`` generator
    with its device's oracle; returns the attack results in device
    order, bitwise-identical to calling each ``run()`` alone.
    *fused* selects cross-device completion fusion (see
    :class:`LockstepCampaign`); it changes execution grouping only,
    never results.
    """
    if len(oracles) != len(attacks):
        raise ValueError("need exactly one oracle per attack")
    missing = [attack for attack in attacks
               if not hasattr(attack, "steps")]
    if missing:
        raise TypeError(
            f"attack driver {missing[0]!r} does not expose the "
            "stepwise protocol (steps())")
    return LockstepCampaign(
        [(oracle, attack.steps())
         for oracle, attack in zip(oracles, attacks)],
        fused=fused).run()


# ----------------------------------------------------------------------
# picklable attack factories (module-level, for workers > 1)


def sequential_attack_factory(oracle, keygen, helper
                              ) -> SequentialPairingAttack:
    """Build a §VI-A sequential-pairing attack driver for one device."""
    return SequentialPairingAttack(oracle, keygen, helper)


@dataclass
class _BoundSequentialAttack:
    """A sequential attack with the distinguisher pre-selected.

    ``SequentialPairingAttack`` takes its *method* as a ``run()`` /
    ``steps()`` argument, but the campaign engine and the fleet drive
    attacks through the no-argument protocol.  This wrapper binds the
    method once so SPRT (and explicit paired) campaigns compose with
    ``run_campaign`` and ``Fleet.attack_success`` unchanged.
    """

    attack: SequentialPairingAttack
    method: str

    def steps(self):
        """Stepwise protocol with the bound distinguisher."""
        return self.attack.steps(self.method)

    def run(self):
        """Scalar reference drive with the bound distinguisher."""
        return self.attack.run(self.method)


@dataclass(frozen=True)
class SequentialAttackFactory:
    """Picklable §VI-A attack factory with a bound distinguisher.

    ``method`` is ``"paired"`` (adaptive reference/test comparison —
    also the entry point of the ML-decoder calibration variant, which
    the attack selects automatically from the enrolled code) or
    ``"sprt"`` (Wald's sequential test).
    """

    method: str = "paired"

    def __call__(self, oracle, keygen, helper) -> _BoundSequentialAttack:
        """Build the attack driver for one enrolled device."""
        return _BoundSequentialAttack(
            SequentialPairingAttack(oracle, keygen, helper), self.method)


@dataclass(frozen=True)
class TempAwareAttackFactory:
    """Picklable §VI-B temperature-aware attack factory.

    The temperature-aware attack does not expose the stepwise
    protocol, so fleets fall back to the per-device scalar loop for
    it; the factory exists so warehouse/fleet call sites treat every
    attack family uniformly.
    """

    def __call__(self, oracle, keygen, helper) -> TempAwareAttack:
        """Build the attack driver for one enrolled device."""
        return TempAwareAttack(oracle, keygen, helper)


@dataclass(frozen=True)
class GroupAttackFactory:
    """Picklable §VI-C group-based attack factory for a geometry."""

    rows: int
    cols: int

    def __call__(self, oracle, keygen, helper) -> GroupBasedAttack:
        """Build the attack driver for one enrolled device."""
        return GroupBasedAttack(oracle, keygen, helper, self.rows,
                                self.cols)


@dataclass(frozen=True)
class DistillerAttackFactory:
    """Picklable §VI-D distiller + pairing attack factory."""

    rows: int
    cols: int
    max_joint_bits: int = 8

    def __call__(self, oracle, keygen, helper) -> DistillerPairingAttack:
        """Build the attack driver for one enrolled device."""
        return DistillerPairingAttack(oracle, keygen, helper,
                                      self.rows, self.cols,
                                      max_joint_bits=self.max_joint_bits)
