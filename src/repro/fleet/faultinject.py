"""Deterministic fault injection for supervised fleet execution.

Resilience code that is only exercised by real hardware failures is
resilience code that does not work.  This module gives the supervised
execution layer (:mod:`repro.fleet.resilience`) a seeded, fully
deterministic fault source: a :class:`FaultPlan` names exactly which
dispatch chunks fail, how (worker killed, worker hung, exception
raised), and on which attempts — so every retry, quarantine and
poison path has a reproducible test, and CI can run whole sweeps
under injected crashes and still demand bitwise-identical results.

Activation is an **environment hook**: the supervised worker
entrypoint reads :data:`ENV_VAR` (inline JSON or a path to a JSON
file) and fires the spec targeting its ``(chunk, attempt)``
coordinate, if any.  The hook lives in the *supervised* entrypoint
only — the plain (unsupervised) pool never consults a plan, because
without a supervisor there is nothing to catch the fault.

Fault modes:

``crash``
    ``SIGKILL`` to the worker's own pid — the parent sees a dead
    process with no message, exactly like an OOM kill.
``hang``
    The worker sleeps far past any sane chunk timeout; only the
    supervisor's watchdog can reclaim it.
``raise``
    An :class:`InjectedFault` propagates out of the chunk body —
    the in-band exception path.

``crash`` and ``hang`` are meaningless in the parent process, so the
in-process quarantine path (graceful degradation) fires ``raise``
specs only; a ``raise`` spec with ``attempts=None`` (every attempt)
is therefore a *poison* chunk that survives quarantine too.
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

#: Environment variable carrying the active plan: inline JSON (first
#: character ``{``) or a filesystem path to a JSON file.
ENV_VAR = "REPRO_FAULT_PLAN"

#: Fault modes a spec may name.
MODES = ("crash", "hang", "raise")

#: How long a ``hang`` fault sleeps.  Far beyond any reasonable chunk
#: timeout, but bounded so an accidentally-activated plan cannot
#: freeze an unsupervised process forever.
HANG_SECONDS = 600.0


class InjectedFault(RuntimeError):
    """The exception a ``raise``-mode fault throws inside a worker."""


class FaultPlanError(ValueError):
    """A fault plan payload violates the expected layout."""


@dataclass(frozen=True)
class FaultSpec:
    """One targeted fault: where, how, and on which attempts.

    Parameters
    ----------
    chunk:
        Dispatch-chunk index the fault targets.
    mode:
        ``crash``, ``hang`` or ``raise`` (see module docstring).
    attempts:
        Attempt numbers the fault fires on (attempt 0 is the first
        execution; retries count up; the in-process quarantine pass
        runs as attempt ``max_retries + 1``).  ``None`` fires on
        *every* attempt — a poison chunk when the mode is ``raise``.
    after_items:
        Fire after this many chunk items completed (``None`` fires
        on chunk entry).  Lets tests prove that a retry fully
        rewrites a partially-written shared-memory chunk.
    """

    chunk: int
    mode: str
    attempts: Optional[Tuple[int, ...]] = (0,)
    after_items: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise FaultPlanError(
                f"unknown fault mode {self.mode!r}; "
                f"expected one of {MODES}")
        if self.attempts is not None:
            object.__setattr__(self, "attempts",
                               tuple(int(a) for a in self.attempts))

    def fires_on(self, attempt: int) -> bool:
        """Whether this spec fires on *attempt*."""
        return self.attempts is None or int(attempt) in self.attempts

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        payload: dict = {"chunk": int(self.chunk), "mode": self.mode}
        if self.attempts is not None:
            payload["attempts"] = list(self.attempts)
        else:
            payload["attempts"] = None
        if self.after_items is not None:
            payload["after_items"] = int(self.after_items)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        """Parse one spec from its JSON form."""
        try:
            attempts = payload.get("attempts", (0,))
            return cls(chunk=int(payload["chunk"]),
                       mode=str(payload["mode"]),
                       attempts=(None if attempts is None
                                 else tuple(int(a) for a in attempts)),
                       after_items=(
                           None if payload.get("after_items") is None
                           else int(payload["after_items"])))
        except (KeyError, TypeError, ValueError) as error:
            raise FaultPlanError(
                f"malformed fault spec {payload!r}: {error}"
            ) from None


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic set of targeted faults.

    The plan is pure data: given the same plan, the same chunks fail
    in the same way on the same attempts, every run — which is what
    lets the equivalence tests demand that a faulted sweep's results
    match the fault-free sweep bitwise.
    """

    seed: int = 0
    faults: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def spec_for(self, chunk: int,
                 attempt: int) -> Optional[FaultSpec]:
        """The first spec firing on ``(chunk, attempt)``, if any."""
        for spec in self.faults:
            if spec.chunk == int(chunk) and spec.fires_on(attempt):
                return spec
        return None

    def to_json(self) -> str:
        """Compact JSON encoding (the :data:`ENV_VAR` payload)."""
        return json.dumps({
            "seed": int(self.seed),
            "faults": [spec.to_dict() for spec in self.faults],
        }, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from its JSON encoding."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise FaultPlanError(
                f"fault plan is not valid JSON ({error})") from None
        if not isinstance(payload, dict):
            raise FaultPlanError("fault plan must be a JSON object")
        faults = payload.get("faults", [])
        if not isinstance(faults, list):
            raise FaultPlanError("fault plan 'faults' must be a list")
        return cls(seed=int(payload.get("seed", 0)),
                   faults=tuple(FaultSpec.from_dict(item)
                                for item in faults))

    @classmethod
    def seeded(cls, seed: int, chunks: int, rate: float = 0.5,
               modes: Tuple[str, ...] = ("crash", "hang", "raise"),
               ) -> "FaultPlan":
        """Derive a random-looking but fully deterministic plan.

        Each chunk independently draws whether it faults (probability
        *rate*) and which mode, from a counter-based stream keyed on
        ``(seed, chunk)`` — so growing *chunks* never re-rolls the
        faults of existing chunk indices.  Every generated fault
        targets attempt 0 only, the shape retry is guaranteed to
        recover from.
        """
        import numpy as np

        faults = []
        for chunk in range(int(chunks)):
            stream = np.random.default_rng(
                np.random.SeedSequence([int(seed), int(chunk)]))
            if stream.random() < rate:
                mode = modes[int(stream.integers(len(modes)))]
                faults.append(FaultSpec(chunk=chunk, mode=mode,
                                        attempts=(0,)))
        return cls(seed=int(seed), faults=tuple(faults))


def load_plan(value: str) -> FaultPlan:
    """Parse a plan from inline JSON or from a JSON file path."""
    text = value.strip()
    if not text.startswith("{"):
        with open(text, encoding="utf-8") as handle:
            text = handle.read()
    return FaultPlan.from_json(text)


def active_plan() -> Optional[FaultPlan]:
    """The plan named by :data:`ENV_VAR`, or ``None``.

    Read fresh on every call (no caching): supervised children
    inherit the parent environment at start, and tests flip the hook
    around individual sweeps.
    """
    value = os.environ.get(ENV_VAR, "").strip()
    if not value:
        return None
    return load_plan(value)


def active_spec(chunk: int, attempt: int) -> Optional[FaultSpec]:
    """The active plan's spec for ``(chunk, attempt)``, if any."""
    plan = active_plan()
    if plan is None:
        return None
    return plan.spec_for(chunk, attempt)


@contextlib.contextmanager
def activated(plan: Optional[FaultPlan]) -> Iterator[None]:
    """Context manager installing *plan* in the environment hook.

    ``None`` (or an empty plan) clears the hook instead — the
    fault-free arm of an equivalence comparison.
    """
    previous = os.environ.get(ENV_VAR)
    if plan is None or not plan.faults:
        os.environ.pop(ENV_VAR, None)
    else:
        os.environ[ENV_VAR] = plan.to_json()
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous


def fire(spec: Optional[FaultSpec], inprocess: bool = False) -> None:
    """Execute one fault spec (no-op when *spec* is ``None``).

    *inprocess* marks the graceful-degradation pass running inside
    the supervisor's own process: ``crash``/``hang`` faults are
    skipped there (killing or freezing the parent would take the
    supervisor down with the chunk), ``raise`` faults still fire so
    poison chunks stay poisonous.
    """
    if spec is None:
        return
    if spec.mode == "raise":
        raise InjectedFault(
            f"injected fault: chunk {spec.chunk} raised")
    if inprocess:
        return
    if spec.mode == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    elif spec.mode == "hang":
        time.sleep(HANG_SECONDS)


@dataclass
class _ItemTripwire:
    """Per-item firing state for ``after_items`` specs."""

    spec: Optional[FaultSpec]
    done: int = field(default=0)

    def step(self) -> None:
        """Record one completed item; fire if the threshold is hit."""
        self.done += 1
        if (self.spec is not None
                and self.spec.after_items is not None
                and self.done == self.spec.after_items):
            fire(self.spec)


def entry_fire(spec: Optional[FaultSpec]) -> _ItemTripwire:
    """Chunk-entry injection point for supervised workers.

    Fires *spec* immediately when it has no ``after_items``
    threshold; otherwise returns a tripwire the chunk loop steps
    after each completed item.
    """
    if spec is not None and spec.after_items is None:
        fire(spec)
        return _ItemTripwire(None)
    return _ItemTripwire(spec)
