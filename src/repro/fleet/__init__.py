"""Fleet simulation: population-scale Monte-Carlo over batched oracles.

Manufactures many IC samples from one seed and sweeps reliability,
entropy and attack-success statistics across the population with
chunked, vectorized execution — optionally split across a process pool
(``workers=N``) with shared-memory result buffers and bitwise
worker-count-invariant results (see ``docs/fleet.md``).  Attack
campaigns run through the round-based lock-step engine
(:mod:`repro.fleet.campaign`): one attack advanced across a whole
device batch per distinguisher round, bitwise-identical to the
per-device scalar loop (see ``docs/attacks.md``).

Sweeps optionally run **supervised** (``supervision=Supervisor(...)``):
per-chunk watchdog timeouts, seeded retry with backoff, a structured
failure taxonomy, and quarantine with in-process degradation — while
keeping results bitwise-equal to a fault-free run.  A deterministic
fault-injection harness (:mod:`repro.fleet.faultinject`) exercises
every recovery path in tests and CI (see ``docs/resilience.md``).
"""

from repro.fleet.campaign import (
    DistillerAttackFactory,
    GroupAttackFactory,
    LockstepCampaign,
    SequentialAttackFactory,
    TempAwareAttackFactory,
    run_campaign,
    sequential_attack_factory,
)
from repro.fleet.faultinject import (
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    InjectedFault,
)
from repro.fleet.fleet import (
    AttackFactory,
    Fleet,
    FleetEnrollment,
    KeyGenFactory,
)
from repro.fleet.parallel import (
    SharedResultBuffer,
    chunk_indices,
    resolve_workers,
    run_collected,
    run_scattered,
)
from repro.fleet.resilience import (
    ChunkFailure,
    PoisonedSweepError,
    ResilienceReport,
    RetryPolicy,
    Supervisor,
)

__all__ = [
    "AttackFactory",
    "ChunkFailure",
    "DistillerAttackFactory",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "Fleet",
    "FleetEnrollment",
    "GroupAttackFactory",
    "InjectedFault",
    "KeyGenFactory",
    "LockstepCampaign",
    "PoisonedSweepError",
    "ResilienceReport",
    "RetryPolicy",
    "SequentialAttackFactory",
    "Supervisor",
    "TempAwareAttackFactory",
    "run_campaign",
    "sequential_attack_factory",
    "SharedResultBuffer",
    "chunk_indices",
    "resolve_workers",
    "run_collected",
    "run_scattered",
]
