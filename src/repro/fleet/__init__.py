"""Fleet simulation: population-scale Monte-Carlo over batched oracles.

Manufactures many IC samples from one seed and sweeps reliability,
entropy and attack-success statistics across the population with
chunked, vectorized execution.
"""

from repro.fleet.fleet import Fleet, FleetEnrollment, KeyGenFactory

__all__ = [
    "Fleet",
    "FleetEnrollment",
    "KeyGenFactory",
]
