"""Fleet simulation: population-scale Monte-Carlo over batched oracles.

Manufactures many IC samples from one seed and sweeps reliability,
entropy and attack-success statistics across the population with
chunked, vectorized execution — optionally split across a process pool
(``workers=N``) with shared-memory result buffers and bitwise
worker-count-invariant results (see ``docs/fleet.md``).
"""

from repro.fleet.fleet import (
    AttackFactory,
    Fleet,
    FleetEnrollment,
    KeyGenFactory,
)
from repro.fleet.parallel import (
    SharedResultBuffer,
    chunk_indices,
    resolve_workers,
    run_collected,
    run_scattered,
)

__all__ = [
    "AttackFactory",
    "Fleet",
    "FleetEnrollment",
    "KeyGenFactory",
    "SharedResultBuffer",
    "chunk_indices",
    "resolve_workers",
    "run_collected",
    "run_scattered",
]
