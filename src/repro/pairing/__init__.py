"""RO pair selection schemes (paper §IV).

Four constructions in order of increasing complexity: chain of
neighbours, 1-out-of-k masking, the sequential pairing algorithm
(Algorithm 1) and the temperature-aware cooperative scheme, plus the
shared pair/response-bit primitives.
"""

from repro.pairing.base import (
    Pair,
    orient_pairs,
    pair_deltas,
    pair_index_arrays,
    response_bits,
    response_bits_batch,
    validate_pairs,
)
from repro.pairing.neighbor import neighbor_chain_pairs, snake_order
from repro.pairing.masking import MaskingHelper, OneOutOfKMasking
from repro.pairing.sequential import (
    SequentialPairing,
    SequentialPairingHelper,
    run_sequential_pairing,
)
from repro.pairing.temp_aware import (
    AssistantSelectionError,
    CooperationEntry,
    PairClass,
    PairProfile,
    TempAwareCooperative,
    TempAwareHelper,
    classify_pair,
    deterministic_selection_leakage,
)

__all__ = [
    "Pair",
    "orient_pairs",
    "pair_deltas",
    "pair_index_arrays",
    "response_bits",
    "response_bits_batch",
    "validate_pairs",
    "neighbor_chain_pairs",
    "snake_order",
    "MaskingHelper",
    "OneOutOfKMasking",
    "SequentialPairing",
    "SequentialPairingHelper",
    "run_sequential_pairing",
    "AssistantSelectionError",
    "CooperationEntry",
    "PairClass",
    "PairProfile",
    "TempAwareCooperative",
    "TempAwareHelper",
    "classify_pair",
    "deterministic_selection_leakage",
]
