"""1-out-of-k masking over a fixed pair set (paper §IV-B, Suh & Devadas).

A fixed set of candidate pairs is partitioned into groups of ``k``
consecutive pairs.  During enrollment the pair maximising ``|Δf|`` is
selected within each group — trading ``k``-fold efficiency for
reliability — and the winning index is stored as public helper data.
The *selection indices* are the manipulable helper data exploited in
paper §VI-D / Fig. 6b.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.pairing.base import (
    Pair,
    pair_deltas,
    response_bits,
    response_bits_batch,
)


@dataclass(frozen=True)
class MaskingHelper:
    """Public helper data of a 1-out-of-k masking scheme.

    ``selected[g]`` is the index *within group g* (``0 .. k-1``) of the
    enrolled pair.  Groups partition the base pair list in order.
    """

    k: int
    selected: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be positive")
        for index in self.selected:
            if not 0 <= index < self.k:
                raise ValueError(
                    f"selection index {index} outside [0, {self.k})")

    @property
    def bits(self) -> int:
        """Number of response bits the scheme produces."""
        return len(self.selected)

    def with_selection(self, group: int, index: int) -> "MaskingHelper":
        """A manipulated copy with one group's selection replaced."""
        if not 0 <= group < len(self.selected):
            raise IndexError(f"group {group} out of range")
        selected = list(self.selected)
        selected[group] = int(index)
        return MaskingHelper(self.k, tuple(selected))


class OneOutOfKMasking:
    """Enrollment and reconstruction of the 1-out-of-k masking scheme."""

    def __init__(self, base_pairs: Sequence[Pair], k: int):
        if k < 1:
            raise ValueError("k must be positive")
        if len(base_pairs) < k:
            raise ValueError("need at least one full group of pairs")
        self._base_pairs = [(int(a), int(b)) for a, b in base_pairs]
        self._k = k
        # Trailing pairs that do not fill a whole group are discarded,
        # mirroring a fixed-geometry hardware implementation.
        self._groups = len(self._base_pairs) // k

    @property
    def k(self) -> int:
        """Number of candidate pairs per response bit."""
        return self._k

    @property
    def groups(self) -> int:
        """Number of k-pair groups (= number of response bits)."""
        return self._groups

    @property
    def base_pairs(self) -> List[Pair]:
        """The underlying neighbour pairs, in layout order."""
        return list(self._base_pairs)

    def group_pairs(self, group: int) -> List[Pair]:
        """The ``k`` candidate pairs of one group."""
        if not 0 <= group < self._groups:
            raise IndexError(f"group {group} out of range")
        start = group * self._k
        return self._base_pairs[start:start + self._k]

    def enroll(self, frequencies: np.ndarray
               ) -> Tuple[MaskingHelper, np.ndarray]:
        """Select the most reliable pair per group.

        Returns the helper data and the enrolled response bits.
        """
        deltas = pair_deltas(frequencies, self._base_pairs)
        selected = []
        for group in range(self._groups):
            start = group * self._k
            magnitudes = np.abs(deltas[start:start + self._k])
            selected.append(int(np.argmax(magnitudes)))
        helper = MaskingHelper(self._k, tuple(selected))
        return helper, self.evaluate(frequencies, helper)

    def selected_pairs(self, helper: MaskingHelper) -> List[Pair]:
        """The pair each group contributes under the given helper data."""
        if helper.bits != self._groups:
            raise ValueError("helper data does not match the group count")
        return [self._base_pairs[group * self._k + index]
                for group, index in enumerate(helper.selected)]

    def evaluate(self, frequencies: np.ndarray,
                 helper: MaskingHelper) -> np.ndarray:
        """Response bits under (possibly manipulated) helper data."""
        return response_bits(frequencies, self.selected_pairs(helper))

    def evaluate_batch(self, frequencies: np.ndarray,
                       helper: MaskingHelper) -> np.ndarray:
        """Response bits for a ``(B, n)`` measurement batch.

        The helper's pair selection is resolved once; row ``i`` equals
        ``evaluate(frequencies[i], helper)``.
        """
        return response_bits_batch(frequencies,
                                   self.selected_pairs(helper))
