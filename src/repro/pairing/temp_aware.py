"""Temperature-aware cooperative RO PUF (paper §IV-D, Yin & Qu HOST 2009).

Neighbouring oscillators are paired disjointly.  With the linear
temperature model, each pair's discrepancy ``Δf(T)`` is affine in ``T``;
over the operating range ``[T_min, T_max]`` a pair is classified
(paper Fig. 3) as:

* **good** — ``|Δf(T)| > Δf_th`` throughout: one reliable bit;
* **bad** — ``|Δf(T)| <= Δf_th`` throughout: discarded;
* **cooperating** — reliable except inside a crossover interval
  ``[T_l, T_h]`` around the temperature where ``Δf = 0``.

Helper data per cooperating pair stores ``T_l``, ``T_h``, the index of an
assisting cooperating pair with a non-intersecting crossover interval,
and the index of an assigned masking good pair.  At enrollment the
assistant is chosen so that ``r_c ⊕ r_g = r_a`` (all bits in *reference*
orientation, i.e. normalised to the low-temperature side); inside its
crossover interval the device then reconstructs ``r_c = r_g ⊕ r_a``.

Security-relevant subtlety reproduced here (paper §IV-D): the assistant
must be selected *at random* among the satisfying candidates.  A
deterministic scan that skips non-satisfying candidates leaks
``r_skipped != r_selected`` to anyone who can re-run the public
procedure — see :func:`deterministic_selection_leakage`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._rng import RNGLike, ensure_rng
from repro.pairing.base import Pair
from repro.pairing.neighbor import neighbor_chain_pairs
from repro.puf.ro_array import ROArray
from repro.puf.measurement import enroll_frequencies


class PairClass(enum.Enum):
    """Fig. 3 classification of a neighbour pair."""

    GOOD = "good"
    BAD = "bad"
    COOPERATING = "cooperating"
    #: Unreliable near a range edge without an in-range crossover; the
    #: paper's three-way classification has no slot for these, so they
    #: are discarded like bad pairs (documented deviation).
    MARGINAL = "marginal"


@dataclass(frozen=True)
class PairProfile:
    """Affine Δf(T) model of one pair plus its classification.

    ``delta_at(T) = delta_ref + slope * (T - t_ref)``; the reference bit
    is the pair's response on the low-temperature side of its crossover
    (or throughout the range for good pairs).
    """

    pair: Pair
    kind: PairClass
    delta_ref: float
    slope: float
    t_ref: float
    t_low: Optional[float] = None
    t_high: Optional[float] = None
    crossover: Optional[float] = None

    def delta_at(self, temperature: float) -> float:
        """Modelled ``Δf`` (Hz) at the given temperature."""
        return self.delta_ref + self.slope * (temperature - self.t_ref)

    def reference_bit(self, t_min: float) -> int:
        """Response bit on the low-temperature side of the range."""
        return 1 if self.delta_at(t_min) >= 0 else 0


def classify_pair(pair: Pair, delta_min: float, delta_max: float,
                  t_min: float, t_max: float,
                  threshold: float) -> PairProfile:
    """Classify a pair from its measured discrepancies at the two
    environmental extremes (the original proposal's enrollment procedure).

    Parameters
    ----------
    delta_min, delta_max:
        ``f_a - f_b`` measured at ``t_min`` and ``t_max``.
    """
    if t_max <= t_min:
        raise ValueError("t_max must exceed t_min")
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    slope = (delta_max - delta_min) / (t_max - t_min)

    def profile(kind, t_low=None, t_high=None, crossover=None):
        return PairProfile(pair=pair, kind=kind, delta_ref=delta_min,
                           slope=slope, t_ref=t_min, t_low=t_low,
                           t_high=t_high, crossover=crossover)

    inside_min = abs(delta_min) <= threshold
    inside_max = abs(delta_max) <= threshold
    same_sign = (delta_min >= 0) == (delta_max >= 0)

    if not inside_min and not inside_max and same_sign:
        return profile(PairClass.GOOD)
    if inside_min and inside_max:
        return profile(PairClass.BAD)

    if slope == 0.0:
        # Constant Δf inside the band at one extreme only cannot happen;
        # defensive fallback.
        return profile(PairClass.BAD)

    crossover = t_min - delta_min / slope
    # Temperatures where |Δf| = threshold.
    t_at_plus = t_min + (threshold - delta_min) / slope
    t_at_minus = t_min + (-threshold - delta_min) / slope
    t_low, t_high = sorted((t_at_plus, t_at_minus))

    if t_min <= crossover <= t_max:
        return profile(PairClass.COOPERATING,
                       t_low=max(t_low, t_min),
                       t_high=min(t_high, t_max),
                       crossover=crossover)
    # Unreliable band touches the range but the bit never flips inside
    # it: no crossover to compensate, but also not reliable everywhere.
    return profile(PairClass.MARGINAL, t_low=max(t_low, t_min),
                   t_high=min(t_high, t_max), crossover=crossover)


@dataclass(frozen=True)
class CooperationEntry:
    """Helper-data record of one cooperating pair.

    All fields are public and attacker-writable: the crossover interval
    boundaries and both indices are exactly the §VI-B manipulation
    surface.
    """

    pair_index: int
    t_low: float
    t_high: float
    good_index: int
    assist_index: int

    def with_assist(self, assist_index: int) -> "CooperationEntry":
        """Manipulated copy pointing at a different assisting pair."""
        return CooperationEntry(self.pair_index, self.t_low, self.t_high,
                                self.good_index, int(assist_index))

    def with_interval(self, t_low: float,
                      t_high: float) -> "CooperationEntry":
        """Manipulated copy with replaced interval boundaries."""
        return CooperationEntry(self.pair_index, float(t_low),
                                float(t_high), self.good_index,
                                self.assist_index)


@dataclass(frozen=True)
class TempAwareHelper:
    """Full public helper data of the construction."""

    pairs: Tuple[Pair, ...]
    good_indices: Tuple[int, ...]
    cooperation: Tuple[CooperationEntry, ...]
    t_min: float
    t_max: float
    threshold: float

    @property
    def bits(self) -> int:
        """Key length: one bit per good pair + one per cooperating pair."""
        return len(self.good_indices) + len(self.cooperation)

    def replace_entry(self, position: int,
                      entry: CooperationEntry) -> "TempAwareHelper":
        """Helper data with one cooperation record replaced."""
        records = list(self.cooperation)
        records[position] = entry
        return TempAwareHelper(self.pairs, self.good_indices,
                               tuple(records), self.t_min, self.t_max,
                               self.threshold)


class AssistantSelectionError(RuntimeError):
    """No admissible assisting pair satisfies the masking constraint."""


class _Unassistable(Exception):
    """Internal: a cooperating pair found no assistant this round."""

    def __init__(self, pair_index: int):
        super().__init__(f"pair {pair_index} has no admissible assistant")
        self.pair_index = pair_index


class TempAwareCooperative:
    """Enrollment and reconstruction of the HOST 2009 construction."""

    def __init__(self, t_min: float, t_max: float, threshold: float,
                 selection: str = "randomized",
                 enrollment_samples: int = 9):
        """
        Parameters
        ----------
        t_min, t_max:
            User-defined operating temperature range (°C).
        threshold:
            Reliability threshold ``Δf_th`` in Hz.
        selection:
            Assistant-selection policy: ``"randomized"`` (as the paper
            demands) or ``"deterministic"`` (first satisfying candidate
            in index order — leaks relations, §IV-D).
        enrollment_samples:
            Averaged frequency measurements per environmental extreme.
        """
        if selection not in ("randomized", "deterministic"):
            raise ValueError(
                "selection must be 'randomized' or 'deterministic'")
        self._t_min = float(t_min)
        self._t_max = float(t_max)
        self._threshold = float(threshold)
        self._selection = selection
        self._samples = int(enrollment_samples)

    # ------------------------------------------------------------------
    # enrollment

    def profile_pairs(self, array: ROArray,
                      rng: RNGLike = None) -> List[PairProfile]:
        """Measure at both extremes and classify every neighbour pair."""
        gen = ensure_rng(rng)
        pairs = neighbor_chain_pairs(array.params.rows, array.params.cols,
                                     overlap=False)
        f_lo = enroll_frequencies(array, self._samples,
                                  temperature=self._t_min, rng=gen)
        f_hi = enroll_frequencies(array, self._samples,
                                  temperature=self._t_max, rng=gen)
        profiles = []
        for pair in pairs:
            a, b = pair
            profiles.append(classify_pair(
                pair, f_lo[a] - f_lo[b], f_hi[a] - f_hi[b],
                self._t_min, self._t_max, self._threshold))
        return profiles

    @staticmethod
    def intervals_intersect(first: PairProfile,
                            second: PairProfile) -> bool:
        """Whether two cooperating pairs' crossover intervals overlap."""
        return not (first.t_high < second.t_low
                    or second.t_high < first.t_low)

    def enroll(self, array: ROArray, rng: RNGLike = None
               ) -> Tuple[TempAwareHelper, np.ndarray]:
        """Classify pairs, build cooperation records, output the key bits.

        The key is the concatenation of good-pair reference bits followed
        by cooperating-pair reference bits, in pair-index order.
        Cooperating pairs for which no admissible assistant exists are
        discarded like bad pairs (iterated to a fixpoint, since each
        removal shrinks the assistant pool).

        Raises
        ------
        AssistantSelectionError
            If cooperating pairs exist but there is no good pair at all
            to mask with.
        """
        gen = ensure_rng(rng)
        profiles = self.profile_pairs(array, gen)

        good = [i for i, p in enumerate(profiles)
                if p.kind is PairClass.GOOD]
        coop = [i for i, p in enumerate(profiles)
                if p.kind is PairClass.COOPERATING]
        if not good and coop:
            raise AssistantSelectionError(
                "no good pairs available for masking")

        # Cooperating pairs without any admissible assistant are
        # discarded, like bad pairs; dropping one can invalidate another
        # pair's assistant pool, so iterate to a fixpoint.
        active = list(coop)
        while True:
            try:
                records = self._build_records(profiles, good, active, gen)
                break
            except _Unassistable as exc:
                active.remove(exc.pair_index)
                if not active:
                    records = []
                    break

        helper = TempAwareHelper(
            pairs=tuple(p.pair for p in profiles),
            good_indices=tuple(good),
            cooperation=tuple(records),
            t_min=self._t_min, t_max=self._t_max,
            threshold=self._threshold)
        key_bits = np.array(
            [profiles[i].reference_bit(self._t_min) for i in good]
            + [profiles[e.pair_index].reference_bit(self._t_min)
               for e in records], dtype=np.uint8)
        return helper, key_bits

    def _build_records(self, profiles: Sequence[PairProfile],
                       good: Sequence[int], active: Sequence[int],
                       gen) -> List[CooperationEntry]:
        """Assistant/mask selection for every active cooperating pair.

        Randomized policy (secure): pick a random admissible assistant,
        then a random good pair whose bit satisfies the masking
        constraint.  Deterministic policy (leaky, §IV-D): the good pair
        is assigned round-robin and assistants are scanned in index
        order until the constraint is met.
        """
        records: List[CooperationEntry] = []
        for position, pair_index in enumerate(active):
            profile = profiles[pair_index]
            r_c = profile.reference_bit(self._t_min)
            candidates = [j for j in active if j != pair_index
                          and not self.intervals_intersect(
                              profile, profiles[j])]
            good_index = None
            assist = None
            if self._selection == "randomized":
                candidates = list(candidates)
                gen.shuffle(candidates)
                for j in candidates:
                    needed = r_c ^ profiles[j].reference_bit(self._t_min)
                    goods = [g for g in good
                             if profiles[g].reference_bit(self._t_min)
                             == needed]
                    if goods:
                        assist = j
                        good_index = int(gen.choice(goods))
                        break
            else:
                good_index = good[position % len(good)]
                target = r_c ^ profiles[good_index].reference_bit(
                    self._t_min)
                for j in candidates:
                    if profiles[j].reference_bit(self._t_min) == target:
                        assist = j
                        break
            if assist is None:
                raise _Unassistable(pair_index)
            records.append(CooperationEntry(
                pair_index=pair_index,
                t_low=profile.t_low,
                t_high=profile.t_high,
                good_index=good_index,
                assist_index=assist))
        return records

    # ------------------------------------------------------------------
    # reconstruction

    def evaluate(self, frequencies: np.ndarray, helper: TempAwareHelper,
                 temperature: float) -> np.ndarray:
        """Device-side key bits from one measurement at *temperature*.

        *frequencies* is the (noisy) measurement vector at the given
        operating temperature; *temperature* is the on-chip sensor value
        the device uses to interpret the helper intervals.
        """
        freqs = np.asarray(frequencies, dtype=float)
        entry_of: Dict[int, CooperationEntry] = {
            e.pair_index: e for e in helper.cooperation}

        def measured_bit(pair_index: int) -> int:
            a, b = helper.pairs[pair_index]
            return 1 if freqs[a] >= freqs[b] else 0

        def coop_reference_bit(pair_index: int, depth: int) -> int:
            """Reference bit of a cooperating pair at this temperature."""
            if depth > 1:
                # Assistance is single-level by construction (assistant
                # intervals must not intersect the requester's); deeper
                # recursion means the helper data was manipulated into a
                # loop — refuse rather than recurse unboundedly.
                raise ValueError(
                    "cooperation helper data forms an assistance cycle")
            if pair_index not in entry_of:
                raise ValueError(
                    f"assist index {pair_index} is not a cooperating pair")
            entry = entry_of[pair_index]
            if temperature < entry.t_low:
                return measured_bit(pair_index)
            if temperature > entry.t_high:
                return measured_bit(pair_index) ^ 1
            r_g = measured_bit(entry.good_index)
            r_a = coop_reference_bit(entry.assist_index, depth + 1)
            return r_g ^ r_a

        bits = [measured_bit(i) for i in helper.good_indices]
        bits += [coop_reference_bit(e.pair_index, 0)
                 for e in helper.cooperation]
        return np.array(bits, dtype=np.uint8)

    def evaluate_batch(self, frequencies: np.ndarray,
                       helper: TempAwareHelper,
                       temperatures: np.ndarray
                       ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`evaluate` over a measurement batch.

        Parameters
        ----------
        frequencies:
            ``(B, n)`` float matrix of noisy measurement rows, one per
            reconstruction attempt.
        helper:
            Public helper data (possibly manipulated).
        temperatures:
            ``(B,)`` float vector of *sensed* temperatures, one per row
            — each attempt reads the on-chip sensor independently.

        Returns
        -------
        (bits, valid):
            ``bits`` is the ``(B, helper.bits)`` uint8 response matrix;
            ``valid`` is a ``(B,)`` boolean vector.  Row ``i`` of
            ``bits`` equals ``evaluate(frequencies[i], helper,
            temperatures[i])`` wherever ``valid[i]`` is true; where it
            is false the scalar path would have raised ``ValueError``
            (assistant index not a cooperating pair, or an assistance
            cycle — both observable per-row failures), and the row's
            bits are unspecified.
        """
        freqs = np.asarray(frequencies, dtype=float)
        if freqs.ndim != 2:
            raise ValueError("frequencies must be a (B, n) matrix")
        temps = np.asarray(temperatures, dtype=float)
        count = freqs.shape[0]
        if temps.shape != (count,):
            raise ValueError("need one sensed temperature per row")

        first = np.fromiter((p[0] for p in helper.pairs), dtype=np.intp,
                            count=len(helper.pairs))
        second = np.fromiter((p[1] for p in helper.pairs), dtype=np.intp,
                             count=len(helper.pairs))
        # (B, P) comparator outcomes, matching the scalar tie policy
        # (``>=``) bit for bit.
        measured = freqs[:, first] >= freqs[:, second]

        if helper.good_indices:
            good_bits = measured[:, list(helper.good_indices)]
        else:
            good_bits = np.zeros((count, 0), dtype=bool)

        entries = helper.cooperation
        valid = np.ones(count, dtype=bool)
        if entries:
            # The scalar path resolves every record through a
            # pair_index-keyed dict, so on (manipulated) helper data
            # with duplicate pair indices the *last* duplicate wins
            # for all of them; replicate that resolution before
            # building the column arrays.
            entry_of = {e.pair_index: e for e in entries}
            resolved = [entry_of[e.pair_index] for e in entries]
            position_of = {e.pair_index: i
                           for i, e in enumerate(entries)}
            pair_idx = np.array([e.pair_index for e in resolved],
                                dtype=np.intp)
            t_low = np.array([e.t_low for e in resolved])
            t_high = np.array([e.t_high for e in resolved])
            good_idx = np.array([e.good_index for e in resolved],
                                dtype=np.intp)
            assist_pos = np.array(
                [position_of.get(e.assist_index, -1)
                 for e in resolved],
                dtype=np.intp)

            own = measured[:, pair_idx]
            above = temps[:, None] > t_high[None, :]
            inside = (~above) & (temps[:, None] >= t_low[None, :])
            # Reference bit assuming the row is *outside* the entry's
            # interval; junk inside, where assistance takes over.
            shallow = np.where(above, ~own, own)
            # Single-level assistance: the assistant's own reference
            # bit, read through the same outside-interval rule.  A -1
            # position indexes the last column — junk, but only where
            # the row is invalid anyway.
            assisted = measured[:, good_idx] ^ shallow[:, assist_pos]
            coop_bits = np.where(inside, assisted, shallow)

            # A row fails observably when any entry needs assistance
            # from a non-cooperating pair, or when the assistant is
            # itself inside its interval (the scalar path's cycle
            # refusal at recursion depth 2).
            no_assist = assist_pos < 0
            assist_inside = inside[:, assist_pos]
            bad = inside & (no_assist[None, :] | assist_inside)
            valid = ~bad.any(axis=1)
        else:
            coop_bits = np.zeros((count, 0), dtype=bool)

        bits = np.concatenate(
            [good_bits, coop_bits], axis=1).astype(np.uint8)
        return bits, valid


def deterministic_selection_leakage(
        helper: TempAwareHelper,
        profiles: Sequence[PairProfile]) -> List[Tuple[int, int, int]]:
    """Relations leaked by a deterministic assistant-selection scan.

    Re-runs the public candidate ordering: every admissible candidate
    *scanned before* the selected assistant must have failed the masking
    constraint, so its reference bit differs from the assistant's.
    Returns triples ``(entry_position, skipped_pair, selected_pair)``
    each asserting ``r_skipped != r_selected`` — key information an
    attacker obtains from helper data alone, with zero device queries
    (paper §IV-D).
    """
    leaks: List[Tuple[int, int, int]] = []
    coop = [e.pair_index for e in helper.cooperation]
    for position, entry in enumerate(helper.cooperation):
        requester = profiles[entry.pair_index]
        candidates = [j for j in coop if j != entry.pair_index
                      and not TempAwareCooperative.intervals_intersect(
                          requester, profiles[j])]
        for j in candidates:
            if j == entry.assist_index:
                break
            leaks.append((position, j, entry.assist_index))
    return leaks
