"""Shared primitives for RO pair selection schemes (paper §IV).

A *pair* is an ordered tuple ``(a, b)`` of oscillator indices; its
response bit is ``r = 1`` iff ``f_a > f_b`` at measurement time (the
comparator of paper Fig. 1).  The *orientation* of a stored pair is
security-relevant: §VII-C points out that storing indices sorted by
enrollment frequency leaks every response bit outright.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

Pair = Tuple[int, int]


def validate_pairs(pairs: Sequence[Pair], n: int,
                   allow_reuse: bool = False) -> List[Pair]:
    """Validate a pair list against an array of *n* oscillators.

    Checks index range, self-pairing, and — unless *allow_reuse* — that
    no oscillator appears in two pairs.  The re-use check is exactly the
    sanity check the paper says devices should (but typically do not)
    perform on incoming helper data (§VII-C).
    """
    seen = set()
    result: List[Pair] = []
    for pair in pairs:
        if len(pair) != 2:
            raise ValueError(f"pair {pair!r} must have two elements")
        a, b = int(pair[0]), int(pair[1])
        if not (0 <= a < n and 0 <= b < n):
            raise ValueError(f"pair ({a}, {b}) out of range [0, {n})")
        if a == b:
            raise ValueError(f"oscillator {a} paired with itself")
        if not allow_reuse:
            if a in seen or b in seen:
                raise ValueError(
                    f"oscillator re-used across pairs: ({a}, {b})")
            seen.add(a)
            seen.add(b)
        result.append((a, b))
    return result


def pair_index_arrays(pairs: Sequence[Pair]) -> Tuple[np.ndarray,
                                                      np.ndarray]:
    """Split a pair list into fancy-index vectors ``(a, b)``.

    The vectors drive batched comparator evaluation: for a frequency
    matrix ``F`` of shape ``(B, n)``, ``F[:, a] >= F[:, b]`` yields all
    ``B`` response-bit vectors in one NumPy pass.
    """
    if len(pairs) == 0:
        empty = np.zeros(0, dtype=np.intp)
        return empty, empty.copy()
    arr = np.asarray([(int(a), int(b)) for a, b in pairs],
                     dtype=np.intp)
    return arr[:, 0], arr[:, 1]


def response_bits(frequencies: np.ndarray,
                  pairs: Sequence[Pair]) -> np.ndarray:
    """Comparator response bit of every pair: ``1`` iff ``f_a > f_b``.

    Discrete ties (possible with quantised counter values, §III-B)
    resolve to ``1``, matching :func:`repro.puf.compare_counts`.
    """
    freqs = np.asarray(frequencies, dtype=float)
    a, b = pair_index_arrays(pairs)
    return (freqs[a] >= freqs[b]).astype(np.uint8)


def response_bits_batch(frequencies: np.ndarray,
                        pairs: Sequence[Pair]) -> np.ndarray:
    """Response bits of every pair for a ``(B, n)`` measurement batch.

    Row ``i`` equals ``response_bits(frequencies[i], pairs)``; the whole
    ``(B, len(pairs))`` matrix is produced by one vectorized comparison.
    """
    freqs = np.asarray(frequencies, dtype=float)
    if freqs.ndim != 2:
        raise ValueError("batch evaluation needs a (B, n) matrix")
    a, b = pair_index_arrays(pairs)
    return (freqs[:, a] >= freqs[:, b]).astype(np.uint8)


def pair_deltas(frequencies: np.ndarray,
                pairs: Sequence[Pair]) -> np.ndarray:
    """Signed frequency discrepancies ``f_a - f_b`` of every pair."""
    freqs = np.asarray(frequencies, dtype=float)
    a, b = pair_index_arrays(pairs)
    return freqs[a] - freqs[b]


def orient_pairs(pairs: Iterable[Pair], frequencies: np.ndarray,
                 policy: str, rng=None) -> List[Pair]:
    """Fix the stored orientation of each pair.

    ``policy`` is one of:

    * ``"randomized"`` — each pair's element order is drawn from *rng*;
      the resulting response bits are uniform secrets (correct practice).
    * ``"sorted"`` — the higher-frequency oscillator is stored first, so
      every enrolled response bit equals 1: the full-key leak of §VII-C.
    * ``"as-is"`` — keep the caller's orientation (e.g. fixed geometric
      order for neighbour chains).
    """
    freqs = np.asarray(frequencies, dtype=float)
    if policy == "as-is":
        return [(int(a), int(b)) for a, b in pairs]
    if policy == "sorted":
        return [(int(a), int(b)) if freqs[a] >= freqs[b]
                else (int(b), int(a)) for a, b in pairs]
    if policy == "randomized":
        if rng is None:
            raise ValueError("randomized orientation needs an rng")
        return [(int(a), int(b)) if rng.integers(0, 2) == 0
                else (int(b), int(a)) for a, b in pairs]
    raise ValueError(f"unknown orientation policy {policy!r}")
