"""Chain-of-neighbours pair selection (paper §IV-A).

Pairing physically adjacent oscillators reduces the impact of spatially
correlated (systematic) variation, because a smooth trend contributes
almost the same offset to both elements of a pair.  The chain traverses
the two-dimensional array in boustrophedon ("snake") order so that
consecutive chain elements are always layout neighbours:

* *disjoint* chains pair elements ``(s0, s1), (s2, s3), ...`` giving
  ``floor(N / 2)`` independent bits;
* *overlapping* chains pair ``(s0, s1), (s1, s2), ...`` giving up to
  ``N - 1`` bits (still independent: they encode the rank order along
  the chain).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.pairing.base import Pair


def snake_order(rows: int, cols: int) -> np.ndarray:
    """Univariate oscillator indices in boustrophedon layout order.

    Even rows run left-to-right, odd rows right-to-left, so consecutive
    entries are always physically adjacent cells.
    """
    if rows < 1 or cols < 1:
        raise ValueError("array must have at least one row and column")
    order = np.empty(rows * cols, dtype=np.int64)
    position = 0
    for row in range(rows):
        columns = range(cols) if row % 2 == 0 else range(cols - 1, -1, -1)
        for col in columns:
            order[position] = row * cols + col
            position += 1
    return order


def neighbor_chain_pairs(rows: int, cols: int,
                         overlap: bool = False) -> List[Pair]:
    """Neighbour pairs along the snake chain.

    With *overlap* the chain shares oscillators across pairs (``N - 1``
    pairs); otherwise pairs are disjoint (``floor(N / 2)`` pairs).
    Orientation follows chain order; the response bit of each pair is
    determined by the (secret) process variation.
    """
    chain = snake_order(rows, cols)
    if overlap:
        return [(int(chain[i]), int(chain[i + 1]))
                for i in range(len(chain) - 1)]
    return [(int(chain[2 * i]), int(chain[2 * i + 1]))
            for i in range(len(chain) // 2)]
