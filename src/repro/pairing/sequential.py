"""The sequential pairing algorithm ("LISA", paper §IV-C, Algorithm 1).

The algorithm sorts enrollment frequencies in descending order and pairs
entries from the top half with entries from the bottom half whenever
their discrepancy exceeds a threshold ``Δf_th``, producing up to
``floor(N / 2)`` disjoint, reliable pairs.  The resulting pair list is
stored in public helper NVM.

Two storage-format policies are implemented because the paper's §VII-C
shows the choice is security-critical:

* ``"randomized"`` — each pair's index order is randomised at enrollment,
  so the response bit (``f_first > f_second``) is a uniform secret;
* ``"sorted"`` — the higher-frequency oscillator is stored first; every
  response bit is then 1 by construction and a *read-only* attacker
  learns the full key without a single device query.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro._rng import RNGLike, ensure_rng
from repro.pairing.base import (
    Pair,
    orient_pairs,
    response_bits,
    response_bits_batch,
    validate_pairs,
)


def run_sequential_pairing(frequencies: np.ndarray,
                           threshold: float) -> List[Pair]:
    """Algorithm 1 verbatim (0-based indices).

    Returns pairs oriented ``(faster, slower)``; every returned pair has
    ``f_a - f_b > threshold``.  Orientation/storage policy is applied
    separately by :class:`SequentialPairing`.
    """
    freqs = np.asarray(frequencies, dtype=float)
    n = freqs.shape[0]
    if n < 2:
        raise ValueError("need at least two oscillators")
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    # pi: indices sorted by descending frequency.
    pi = np.argsort(-freqs, kind="stable")
    pairs: List[Pair] = []
    i = 0
    for j in range(math.ceil(n / 2), n):
        if freqs[pi[i]] - freqs[pi[j]] > threshold:
            pairs.append((int(pi[i]), int(pi[j])))
            i += 1
    return pairs


@dataclass(frozen=True)
class SequentialPairingHelper:
    """Public helper data: the stored pair list, in stored order.

    Both the *order of the list* (which key-bit position each pair feeds)
    and the *orientation within each pair* (which oscillator is "first")
    are attacker-writable, which is precisely what the §VI-A attack
    manipulates.
    """

    pairs: Tuple[Pair, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "pairs",
            tuple((int(a), int(b)) for a, b in self.pairs))

    @property
    def bits(self) -> int:
        """Number of response bits (= number of pairs)."""
        return len(self.pairs)

    def with_swapped_positions(self, i: int, j: int
                               ) -> "SequentialPairingHelper":
        """Swap the *list positions* of pairs ``i`` and ``j``.

        This is the §VI-A manipulation: response bits swap key positions,
        introducing two bit errors iff ``r_i != r_j``.
        """
        pairs = list(self.pairs)
        pairs[i], pairs[j] = pairs[j], pairs[i]
        return SequentialPairingHelper(tuple(pairs))

    def with_flipped_orientation(self, i: int) -> "SequentialPairingHelper":
        """Reverse the stored index order of pair ``i``.

        Deterministically inverts that pair's response bit — the
        attacker's precision error-injection tool once some bit
        relations are known.
        """
        pairs = list(self.pairs)
        a, b = pairs[i]
        pairs[i] = (b, a)
        return SequentialPairingHelper(tuple(pairs))


class SequentialPairing:
    """Enrollment/reconstruction of the sequential pairing construction."""

    def __init__(self, threshold: float,
                 storage_order: str = "randomized",
                 enforce_disjoint: bool = True):
        """
        Parameters
        ----------
        threshold:
            Frequency discrepancy threshold ``Δf_th`` in Hz.
        storage_order:
            ``"randomized"`` (secure) or ``"sorted"`` (the §VII-C leak).
        enforce_disjoint:
            Whether reconstruction validates that helper pairs do not
            re-use oscillators — the sanity check the paper recommends.
        """
        if storage_order not in ("randomized", "sorted"):
            raise ValueError("storage_order must be 'randomized' or "
                             "'sorted'")
        self._threshold = float(threshold)
        self._storage_order = storage_order
        self._enforce_disjoint = enforce_disjoint

    @property
    def threshold(self) -> float:
        """Pair-selection reliability threshold in Hz."""
        return self._threshold

    @property
    def storage_order(self) -> str:
        """Pair-list storage-order policy."""
        return self._storage_order

    @property
    def enforce_disjoint(self) -> bool:
        """Whether evaluation rejects reused oscillators."""
        return self._enforce_disjoint

    def enroll(self, frequencies: np.ndarray, rng: RNGLike = None
               ) -> Tuple[SequentialPairingHelper, np.ndarray]:
        """Run Algorithm 1 and store pairs under the configured policy.

        Returns the helper data and the enrolled response bits
        (all ones when ``storage_order == "sorted"``).
        """
        oriented = run_sequential_pairing(frequencies, self._threshold)
        gen = ensure_rng(rng)
        stored = orient_pairs(oriented, frequencies,
                              "randomized" if
                              self._storage_order == "randomized"
                              else "sorted", gen)
        helper = SequentialPairingHelper(tuple(stored))
        return helper, response_bits(frequencies, helper.pairs)

    def evaluate(self, frequencies: np.ndarray,
                 helper: SequentialPairingHelper) -> np.ndarray:
        """Device-side response bits under (possibly modified) helper data."""
        n = np.asarray(frequencies).shape[0]
        validate_pairs(helper.pairs, n,
                       allow_reuse=not self._enforce_disjoint)
        return response_bits(frequencies, helper.pairs)

    def evaluate_batch(self, frequencies: np.ndarray,
                       helper: SequentialPairingHelper) -> np.ndarray:
        """Response bits for a ``(B, n)`` measurement batch.

        Helper-data validation runs once for the whole batch; row ``i``
        of the result equals ``evaluate(frequencies[i], helper)``.
        """
        freqs = np.asarray(frequencies, dtype=float)
        if freqs.ndim != 2:
            raise ValueError("batch evaluation needs a (B, n) matrix")
        validate_pairs(helper.pairs, freqs.shape[1],
                       allow_reuse=not self._enforce_disjoint)
        return response_bits_batch(freqs, helper.pairs)
