"""Long-lived shard workers driven over a length-prefixed protocol.

The fleet's process pool (PR 2) and supervised executor (PR 8) spawn
one child per chunk attempt.  The service dispatcher instead keeps a
small set of **long-lived worker processes**, each connected back to
the dispatcher over a stream socket, and feeds them shards one at a
time — the shape a shard-per-host deployment takes, exercised here
with local processes.

Wire protocol (both directions)::

    offset  size  field
    0       4     frame length n (u32, little-endian)
    4       n     pickled message

Messages are ``(type, payload)`` tuples:

* ``("hello", {"worker", "pid", "protocol"})`` — worker → dispatcher,
  once, immediately after connecting.  A worker that dies before its
  hello surfaces as a :class:`WorkerHandshakeError` naming the worker
  and its exit code — never a hang.
* ``("task", {"kind", "shard", "jobs", "attempt"})`` — dispatcher →
  worker: execute one shard.
* ``("result", {"shard", "attempt", "data", "seconds", "kernel",
  "pid"})`` — worker → dispatcher on success.
* ``("error", {"shard", "attempt", "detail"})`` — worker →
  dispatcher when the shard body raised; the worker stays alive and
  accepts further tasks.
* ``("shutdown", None)`` — dispatcher → worker: exit the loop.

Two transports bind the same protocol: ``"pipe"`` (an
``AF_UNIX`` stream socket in a private temporary directory) and
``"tcp"`` (loopback TCP, port chosen by the OS).  Results are
bitwise-identical across transports — the transport moves bytes, the
substreams were all derived before dispatch.

Failure handling reuses the PR 8 taxonomy: a worker death mid-shard
is a ``crash``, a watchdog overrun a ``timeout``, an in-band error
frame an ``exception``; retries back off on the seeded
:meth:`~repro.fleet.resilience.RetryPolicy.backoff_delay` schedule
keyed by the shard digest, exhausted shards run degraded in the
dispatcher process, and shards that still fail poison the sweep
(:class:`~repro.fleet.resilience.PoisonedSweepError`) unless the
policy allows partial results.
"""

from __future__ import annotations

import copy
import os
import pickle
import selectors
import socket
import struct
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.fleet import faultinject
from repro.fleet.parallel import _pool_context, resolve_workers
from repro.fleet.resilience import (
    ChunkFailure,
    PoisonedSweepError,
    ResilienceReport,
    RetryPolicy,
    Supervisor,
)
from repro.service.shard import ShardPlan, ShardSpec, execute_shard

#: Protocol version carried in every hello frame; a mismatch is a
#: deployment error and fails the handshake loudly.
PROTOCOL_VERSION = 1

#: Supported worker transports.
TRANSPORTS = ("pipe", "tcp")

#: Granularity of the dispatcher's poll loop (seconds); bounds how
#: late a watchdog kill or backed-off relaunch can be, never what the
#: results are.
_POLL_SECONDS = 0.05

#: Frames beyond this are a protocol violation, not a huge payload.
_MAX_FRAME = 1 << 31


class ServiceProtocolError(RuntimeError):
    """A peer sent bytes violating the framed message protocol."""


class WorkerHandshakeError(RuntimeError):
    """A shard worker failed to complete the service handshake.

    Raised by the dispatcher instead of blocking on ``accept()``
    forever when a worker process dies (or stalls) before sending its
    hello frame — the ``resolve_workers``/dispatcher interaction fix:
    worker counts are resolved against the shard count up front, and
    every resolved worker must check in within the handshake timeout
    or name the reason it could not.
    """


# ----------------------------------------------------------------------
# framing


def send_frame(sock: socket.socket, message: Tuple[str, object]
               ) -> None:
    """Send one length-prefixed pickled message."""
    payload = pickle.dumps(message)
    sock.sendall(struct.pack("<I", len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise EOFError("peer closed the connection mid-frame"
                           if chunks or remaining < count
                           else "peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Tuple[str, object]:
    """Receive one length-prefixed pickled message.

    Raises :class:`EOFError` on a cleanly closed peer and
    :class:`ServiceProtocolError` on malformed framing.
    """
    header = _recv_exact(sock, 4)
    (length,) = struct.unpack("<I", header)
    if length > _MAX_FRAME:
        raise ServiceProtocolError(
            f"frame length {length} exceeds the protocol bound")
    message = pickle.loads(_recv_exact(sock, length))
    if not (isinstance(message, tuple) and len(message) == 2
            and isinstance(message[0], str)):
        raise ServiceProtocolError(
            "message is not a (type, payload) tuple")
    return message


# ----------------------------------------------------------------------
# transports


def _make_listener(transport: str, tmpdir: str
                   ) -> Tuple[socket.socket, Tuple]:
    """Bind a listening socket; returns ``(listener, address)``.

    The address tuple is what workers receive (picklable under every
    multiprocessing start method): ``("unix", path)`` or
    ``("tcp", host, port)``.
    """
    if transport == "pipe":
        path = os.path.join(tmpdir, "dispatch.sock")
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(path)
        listener.listen()
        return listener, ("unix", path)
    if transport == "tcp":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen()
        host, port = listener.getsockname()
        return listener, ("tcp", host, port)
    raise ValueError(f"unknown transport {transport!r}; expected one "
                     f"of {TRANSPORTS}")


def _connect(address: Tuple) -> socket.socket:
    """Worker-side connect to a dispatcher address tuple."""
    if address[0] == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(address[1])
    elif address[0] == "tcp":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.connect((address[1], address[2]))
    else:
        raise ValueError(f"unknown address family {address[0]!r}")
    return sock


# ----------------------------------------------------------------------
# worker process


def worker_main(address: Tuple, worker_id: int) -> None:
    """Entry point of one long-lived shard worker process.

    Connects back to the dispatcher, introduces itself, then serves
    tasks until told to shut down.  The fault-injection environment
    hook (:func:`repro.fleet.faultinject.active_spec`) fires at task
    receipt, keyed on ``(shard index, attempt)`` — so the chaos plans
    driving the supervised pool tests drive the service identically.
    """
    sock = _connect(address)
    try:
        send_frame(sock, ("hello", {"worker": int(worker_id),
                                    "pid": os.getpid(),
                                    "protocol": PROTOCOL_VERSION}))
        while True:
            try:
                kind, payload = recv_frame(sock)
            except EOFError:
                return
            if kind == "shutdown":
                return
            if kind != "task":
                raise ServiceProtocolError(
                    f"worker expected a task frame, got {kind!r}")
            spec: ShardSpec = payload["shard"]
            attempt = int(payload["attempt"])
            try:
                tripwire = faultinject.entry_fire(
                    faultinject.active_spec(spec.index, attempt))
                outcome = execute_shard(payload["kind"],
                                        payload["jobs"],
                                        tripwire=tripwire)
            except Exception as error:
                send_frame(sock, ("error", {
                    "shard": spec.index, "attempt": attempt,
                    "detail": f"{type(error).__name__}: {error}"}))
                continue
            outcome.update({"shard": spec.index, "attempt": attempt,
                            "pid": os.getpid()})
            send_frame(sock, ("result", outcome))
    finally:
        sock.close()


# ----------------------------------------------------------------------
# dispatcher


@dataclass
class _ShardTask:
    """Dispatcher-side state of one shard across its attempts."""

    spec: ShardSpec
    kind: str
    jobs: List[object]
    attempt: int = 0
    ready_at: float = 0.0


@dataclass(eq=False)
class _Worker:
    """One connected long-lived worker (identity-hashed: lives in
    the drive loop's ready set)."""

    worker_id: int
    proc: object
    sock: socket.socket
    pid: int
    task: Optional[_ShardTask] = None
    deadline: Optional[float] = None
    buffer: bytes = field(default=b"", repr=False)


class Dispatcher:
    """Drives a sharded sweep over long-lived protocol workers.

    Parameters
    ----------
    workers:
        Worker process count; ``None``/``0`` resolves to the CPU
        count, and the resolved value is always capped at the shard
        count (idle workers would only burn the handshake budget).
    transport:
        ``"pipe"`` (unix-domain socket) or ``"tcp"`` (loopback).
    policy:
        :class:`~repro.fleet.resilience.RetryPolicy` governing
        watchdog timeouts, retry counts and backoff; defaults to the
        supervised executor's defaults.
    supervisor:
        Optional :class:`~repro.fleet.resilience.Supervisor` to
        collect the run's :class:`ResilienceReport` into; one is
        created on demand otherwise (exposed as :attr:`supervisor`).
    handshake_timeout:
        Seconds each spawned worker gets to check in before the
        dispatcher raises :class:`WorkerHandshakeError`.
    """

    def __init__(self, workers: Optional[int] = None,
                 transport: str = "pipe",
                 policy: Optional[RetryPolicy] = None,
                 supervisor: Optional[Supervisor] = None,
                 handshake_timeout: float = 30.0):
        if transport not in TRANSPORTS:
            raise ValueError(f"unknown transport {transport!r}; "
                             f"expected one of {TRANSPORTS}")
        self._workers_arg = workers
        self.transport = transport
        self.supervisor = (supervisor if supervisor is not None
                           else Supervisor(policy))
        if policy is not None and supervisor is not None \
                and supervisor.policy is not policy:
            raise ValueError("pass either policy or supervisor, "
                             "not conflicting both")
        self.handshake_timeout = float(handshake_timeout)
        self.report: Optional[ResilienceReport] = None

    @property
    def policy(self) -> RetryPolicy:
        """The active retry policy."""
        return self.supervisor.policy

    # ------------------------------------------------------------------

    def run(self, plan: ShardPlan, kind: str,
            shard_jobs: Sequence[Sequence[object]]
            ) -> Iterator[Dict[str, object]]:
        """Execute every shard; yield raw outcome dicts as they land.

        *shard_jobs* is the per-shard job payload list, aligned with
        ``plan.shards``.  Outcomes arrive in completion order (not
        shard order) and carry ``shard`` (the :class:`ShardSpec`),
        ``kind``, ``data``, ``seconds``, ``kernel``, ``attempt``,
        ``worker`` (pid) and ``degraded``/``poisoned`` flags.  The
        run's :class:`ResilienceReport` is on :attr:`report` once the
        iterator is exhausted.
        """
        if len(shard_jobs) != len(plan.shards):
            raise ValueError("one job list per shard required")
        self.report = self.supervisor.new_report(len(plan.shards))
        resolved = resolve_workers(self._workers_arg,
                                   len(plan.shards))
        tasks = [_ShardTask(spec, kind, list(jobs))
                 for spec, jobs in zip(plan.shards, shard_jobs)]
        ctx = _pool_context()
        workers: Dict[int, _Worker] = {}
        self._next_worker_id = 0
        with tempfile.TemporaryDirectory(
                prefix="repro-service-") as tmpdir:
            listener, address = _make_listener(self.transport, tmpdir)
            try:
                for _ in range(resolved):
                    worker = self._spawn_worker(ctx, listener, address)
                    workers[worker.worker_id] = worker
                yield from self._drive(tasks, workers, ctx, listener,
                                       address)
            finally:
                self._shutdown(workers, listener)

    # ------------------------------------------------------------------

    def _spawn_worker(self, ctx, listener: socket.socket,
                      address: Tuple) -> _Worker:
        """Start one worker process and complete its handshake."""
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        proc = ctx.Process(target=worker_main,
                           args=(address, worker_id), daemon=True)
        proc.start()
        deadline = time.monotonic() + self.handshake_timeout
        listener.settimeout(_POLL_SECONDS)
        while True:
            if not proc.is_alive():
                code = proc.exitcode
                proc.join()
                raise WorkerHandshakeError(
                    f"service worker {worker_id} (pid {proc.pid}) "
                    f"exited with code {code} before completing the "
                    f"handshake")
            if time.monotonic() >= deadline:
                proc.kill()
                proc.join()
                raise WorkerHandshakeError(
                    f"service worker {worker_id} (pid {proc.pid}) "
                    f"did not complete the handshake within "
                    f"{self.handshake_timeout:g}s")
            try:
                sock, _ = listener.accept()
            except socket.timeout:
                continue
            sock.settimeout(self.handshake_timeout)
            try:
                kind, payload = recv_frame(sock)
            except (EOFError, OSError):
                sock.close()
                continue  # a dying worker's half-open connection
            if kind != "hello":
                sock.close()
                raise ServiceProtocolError(
                    f"expected a hello frame, got {kind!r}")
            if payload.get("protocol") != PROTOCOL_VERSION:
                sock.close()
                raise WorkerHandshakeError(
                    f"service worker {payload.get('worker')} speaks "
                    f"protocol {payload.get('protocol')}, dispatcher "
                    f"speaks {PROTOCOL_VERSION}")
            sock.settimeout(None)
            sock.setblocking(False)
            return _Worker(int(payload["worker"]), proc, sock,
                           int(payload["pid"]))

    def _drive(self, tasks: List[_ShardTask],
               workers: Dict[int, _Worker], ctx,
               listener: socket.socket, address: Tuple
               ) -> Iterator[Dict[str, object]]:
        """The select loop: assign, collect, retry, degrade."""
        report = self.report
        policy = self.policy
        pending: List[_ShardTask] = list(tasks)
        quarantined: List[_ShardTask] = []
        selector = selectors.DefaultSelector()
        for worker in workers.values():
            selector.register(worker.sock, selectors.EVENT_READ,
                              worker)

        def idle() -> List[_Worker]:
            return [w for w in workers.values() if w.task is None]

        def fail(worker: _Worker, kind: str, detail: str,
                 respawn: bool) -> None:
            task = worker.task
            worker.task = None
            worker.deadline = None
            report.failures.append(ChunkFailure(
                kind=kind, chunk=task.spec.index,
                attempt=task.attempt, pid=worker.pid,
                payload_digest=task.spec.digest, detail=detail))
            if task.attempt < policy.max_retries:
                delay = policy.backoff_delay(task.spec.digest,
                                             task.attempt)
                task.attempt += 1
                task.ready_at = time.monotonic() + delay
                report.retried += 1
                pending.append(task)
            else:
                quarantined.append(task)
            if respawn:
                selector.unregister(worker.sock)
                worker.sock.close()
                worker.proc.kill()
                worker.proc.join()
                del workers[worker.worker_id]
                if pending or any(w.task for w in workers.values()):
                    fresh = self._spawn_worker(ctx, listener, address)
                    workers[fresh.worker_id] = fresh
                    selector.register(fresh.sock,
                                      selectors.EVENT_READ, fresh)

        while pending or any(w.task for w in workers.values()):
            now = time.monotonic()
            launchable = [task for task in pending
                          if task.ready_at <= now]
            free = idle()
            while launchable and free:
                task = launchable.pop(0)
                pending.remove(task)
                worker = free.pop(0)
                worker.task = task
                worker.deadline = (
                    now + policy.chunk_timeout
                    if policy.chunk_timeout is not None else None)
                try:
                    send_frame(worker.sock, ("task", {
                        "kind": task.kind, "shard": task.spec,
                        "jobs": task.jobs,
                        "attempt": task.attempt}))
                except (BrokenPipeError, ConnectionError, OSError):
                    fail(worker, "crash",
                         "worker connection lost while sending the "
                         "task", respawn=True)

            busy = [w for w in workers.values() if w.task is not None]
            if not busy:
                if pending:
                    wake = min(task.ready_at for task in pending)
                    time.sleep(min(_POLL_SECONDS,
                                   max(0.0,
                                       wake - time.monotonic())))
                continue

            timeout = _POLL_SECONDS
            deadlines = [w.deadline for w in busy
                         if w.deadline is not None]
            if deadlines:
                timeout = min(timeout,
                              max(0.0,
                                  min(deadlines) - time.monotonic()))
            ready = {key.data for key, _ in selector.select(timeout)}

            now = time.monotonic()
            for worker in list(workers.values()):
                if worker.task is None:
                    if worker in ready:
                        # An idle worker only "speaks" by dying
                        # (EOF); replace it if work remains.
                        selector.unregister(worker.sock)
                        worker.sock.close()
                        worker.proc.kill()
                        worker.proc.join()
                        del workers[worker.worker_id]
                        if pending or any(w.task
                                          for w in workers.values()):
                            fresh = self._spawn_worker(ctx, listener,
                                                       address)
                            workers[fresh.worker_id] = fresh
                            selector.register(
                                fresh.sock, selectors.EVENT_READ,
                                fresh)
                    continue
                if worker in ready:
                    try:
                        kind, payload = self._read_frame(worker)
                    except (EOFError, ConnectionError, OSError,
                            ServiceProtocolError) as error:
                        fail(worker, "crash",
                             f"worker died without a message "
                             f"({type(error).__name__}: {error}; "
                             f"exit code {worker.proc.exitcode})",
                             respawn=True)
                        continue
                    if kind is None:
                        continue  # partial frame, keep waiting
                    if kind == "result":
                        task = worker.task
                        worker.task = None
                        worker.deadline = None
                        yield {
                            "shard": task.spec, "kind": task.kind,
                            "data": payload["data"],
                            "seconds": payload["seconds"],
                            "kernel": payload["kernel"],
                            "attempt": int(payload["attempt"]),
                            "worker": int(payload["pid"]),
                            "degraded": False, "poisoned": False}
                    elif kind == "error":
                        fail(worker, "exception",
                             str(payload["detail"]), respawn=False)
                    else:
                        fail(worker, "crash",
                             f"worker sent unexpected frame "
                             f"{kind!r}", respawn=True)
                elif (worker.deadline is not None
                      and now >= worker.deadline):
                    fail(worker, "timeout",
                         f"shard exceeded the "
                         f"{policy.chunk_timeout:g}s watchdog",
                         respawn=True)

        yield from self._degrade(quarantined)
        if report.poisoned and not policy.allow_partial:
            raise PoisonedSweepError(report)

    def _read_frame(self, worker: _Worker):
        """Drain one frame from a non-blocking worker socket.

        Returns ``(None, None)`` while the frame is still partial —
        the select loop will call again when more bytes arrive.
        """
        while True:
            if len(worker.buffer) >= 4:
                (length,) = struct.unpack("<I", worker.buffer[:4])
                if length > _MAX_FRAME:
                    raise ServiceProtocolError(
                        f"frame length {length} exceeds the protocol "
                        f"bound")
                if len(worker.buffer) >= 4 + length:
                    payload = worker.buffer[4:4 + length]
                    worker.buffer = worker.buffer[4 + length:]
                    message = pickle.loads(payload)
                    if not (isinstance(message, tuple)
                            and len(message) == 2):
                        raise ServiceProtocolError(
                            "message is not a (type, payload) tuple")
                    return message
            try:
                chunk = worker.sock.recv(1 << 20)
            except (BlockingIOError, InterruptedError):
                return None, None
            if not chunk:
                raise EOFError("worker closed the connection")
            worker.buffer += chunk

    def _degrade(self, quarantined: List[_ShardTask]
                 ) -> Iterator[Dict[str, object]]:
        """In-dispatcher retry of shards that exhausted the workers.

        Jobs run against deep copies (the submitting process owns the
        originals' stream state), mirroring the supervised executor's
        graceful-degradation pass.  Only ``raise``-mode injected
        faults fire here, so genuinely poisonous shards stay
        poisoned.
        """
        report = self.report
        for task in sorted(quarantined, key=lambda t: t.spec.index):
            attempt = self.policy.max_retries + 1
            try:
                faultinject.fire(
                    faultinject.active_spec(task.spec.index, attempt),
                    inprocess=True)
                outcome = execute_shard(task.kind,
                                        copy.deepcopy(task.jobs))
                report.degraded.append(task.spec.index)
                yield {
                    "shard": task.spec, "kind": task.kind,
                    "data": outcome["data"],
                    "seconds": outcome["seconds"],
                    "kernel": outcome["kernel"], "attempt": attempt,
                    "worker": os.getpid(), "degraded": True,
                    "poisoned": False}
            except Exception as error:
                report.failures.append(ChunkFailure(
                    kind="poison", chunk=task.spec.index,
                    attempt=attempt, pid=None,
                    payload_digest=task.spec.digest,
                    detail=f"{type(error).__name__}: {error}"))
                report.poisoned.append(task.spec.index)
                if self.policy.allow_partial:
                    yield {
                        "shard": task.spec, "kind": task.kind,
                        "data": None, "seconds": 0.0,
                        "kernel": {"calls": 0, "rows": 0,
                                   "seconds": 0.0},
                        "attempt": attempt, "worker": None,
                        "degraded": False, "poisoned": True}

    def _shutdown(self, workers: Dict[int, _Worker],
                  listener: socket.socket) -> None:
        """Stop every worker and release the listener."""
        for worker in workers.values():
            try:
                worker.sock.setblocking(True)
                send_frame(worker.sock, ("shutdown", None))
            except OSError:
                pass
            try:
                worker.sock.close()
            except OSError:
                pass
        for worker in workers.values():
            worker.proc.join(timeout=5.0)
            if worker.proc.is_alive():  # pragma: no cover - stuck
                worker.proc.kill()
                worker.proc.join()
        listener.close()
