"""Deterministic shard plans over a seeded device population.

A :class:`ShardPlan` splits a population into contiguous device
ranges.  The plan is pure data derived from ``(population seed,
device count, shard count)`` — it never encodes *where* a shard will
execute.  Combined with the fleet's sweep-stream discipline (every
per-device substream is derived in the submitting process before any
dispatch, see :meth:`repro.fleet.Fleet.failure_rate_jobs`), any shard
can run on any worker process, in any order, and the merged outputs
are bitwise-identical to the single-host sweep.

The shard is also the service's retry unit: :func:`shard_digest`
gives each shard a stable identity that seeds the
:class:`repro.fleet.resilience.RetryPolicy` backoff jitter, so a
faulted streamed sweep replays the exact schedule run over run.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.ecc.kernel import kernel_stats
from repro.fleet.fleet import (
    _attack_chunk_job,
    _attack_results_chunk_job,
    _failure_rate_job,
)
from repro.fleet.parallel import chunk_indices

#: Sweep kinds the service can shard.
KIND_FAILURE = "failure-rates"
KIND_ATTACK = "attack-success"
KIND_ATTACK_RESULTS = "attack-results"
KINDS = (KIND_FAILURE, KIND_ATTACK, KIND_ATTACK_RESULTS)


def shard_digest(population_seed: int, index: int, start: int,
                 stop: int) -> str:
    """Stable identity of one shard of one seeded population.

    Used as the shard's substream-root label in the plan and as the
    payload digest seeding retry backoff jitter — a function of the
    population seed and the device range only, never of worker
    placement.
    """
    material = (f"{int(population_seed)}:{int(index)}:{int(start)}:"
                f"{int(stop)}").encode("ascii")
    return hashlib.sha256(material).hexdigest()[:16]


@dataclass(frozen=True)
class ShardSpec:
    """One contiguous device range of a sharded sweep."""

    index: int
    start: int
    stop: int
    #: :func:`shard_digest` of this range under the plan's seed.
    digest: str

    @property
    def devices(self) -> int:
        """Number of devices in the shard."""
        return self.stop - self.start

    @property
    def span(self) -> Tuple[int, int]:
        """The ``(start, stop)`` device range, fleet order."""
        return (self.start, self.stop)


@dataclass(frozen=True)
class ShardPlan:
    """Deterministic split of a seeded population into shards.

    ``plan(seed, devices, shards)`` is a pure function: the same
    arguments produce the same ranges and the same shard digests on
    every host, so a dispatcher and its workers (or two independent
    runs) always agree on what shard ``i`` means.
    """

    population_seed: int
    devices: int
    shards: Tuple[ShardSpec, ...]

    @classmethod
    def plan(cls, population_seed: int, devices: int,
             shards: int) -> "ShardPlan":
        """Split *devices* into at most *shards* contiguous ranges."""
        if devices < 1:
            raise ValueError("need at least one device")
        if shards < 1:
            raise ValueError("need at least one shard")
        blocks = chunk_indices(devices, min(shards, devices))
        specs = []
        for index, block in enumerate(blocks):
            start, stop = int(block[0]), int(block[-1]) + 1
            specs.append(ShardSpec(
                index, start, stop,
                shard_digest(population_seed, index, start, stop)))
        return cls(int(population_seed), int(devices), tuple(specs))

    def __len__(self) -> int:
        return len(self.shards)

    @property
    def spans(self) -> List[Tuple[int, int]]:
        """All shard device ranges, in shard order."""
        return [spec.span for spec in self.shards]

    def slice_jobs(self, jobs: Sequence[object]) -> List[List[object]]:
        """Partition a per-device job list along the shard ranges."""
        if len(jobs) != self.devices:
            raise ValueError(
                f"plan covers {self.devices} devices but got "
                f"{len(jobs)} jobs")
        return [list(jobs[spec.start:spec.stop])
                for spec in self.shards]


# ----------------------------------------------------------------------
# shard execution (runs inside a service worker, or in the dispatcher
# for the degraded quarantine pass)


def execute_shard(kind: str, jobs: Sequence[object],
                  tripwire=None) -> Dict[str, object]:
    """Run one shard's job list; returns the typed result payload.

    For :data:`KIND_FAILURE` *jobs* is the shard's slice of the
    per-device :meth:`~repro.fleet.Fleet.failure_rate_jobs` list; for
    the attack kinds it is a single-element list holding the shard's
    :meth:`~repro.fleet.Fleet.attack_chunk_jobs` chunk.  The payload
    carries the wall-clock seconds and the ECC kernel-stats delta of
    the execution.  *tripwire* (a fault-injection item tripwire) is
    stepped after each completed job.
    """
    if kind not in KINDS:
        raise ValueError(f"unknown sweep kind {kind!r}; expected one "
                         f"of {KINDS}")
    before = (kernel_stats.calls, kernel_stats.rows,
              kernel_stats.seconds)
    begin = time.perf_counter()
    if kind == KIND_FAILURE:
        rates = []
        for job in jobs:
            rates.append(_failure_rate_job(job)[0])
            if tripwire is not None:
                tripwire.step()
        data: Dict[str, object] = {
            "rates": np.array(rates, dtype=np.float64)}
    elif kind == KIND_ATTACK:
        (job,) = jobs
        report = _attack_chunk_job(job)
        if tripwire is not None:
            tripwire.step()
        data = {
            "recovered": np.array([entry[0] for entry in report],
                                  dtype=np.bool_),
            "queries": np.array([entry[1] for entry in report],
                                dtype=np.int64)}
    else:
        (job,) = jobs
        results = _attack_results_chunk_job(job)
        if tripwire is not None:
            tripwire.step()
        data = {"results": list(results)}
    return {
        "data": data,
        "seconds": time.perf_counter() - begin,
        "kernel": {
            "calls": kernel_stats.calls - before[0],
            "rows": kernel_stats.rows - before[1],
            "seconds": kernel_stats.seconds - before[2],
        },
    }


# ----------------------------------------------------------------------
# merging shard outputs back into the single-host result shapes


def merge_failure_rates(plan: ShardPlan,
                        datas: Sequence[object]) -> np.ndarray:
    """Concatenate per-shard rate vectors into the fleet-order vector.

    ``datas[i]`` is shard *i*'s result ``data`` dict (or ``None`` for
    a poisoned shard under ``allow_partial``, which contributes the
    supervised executor's zero fill).
    """
    parts = []
    for spec, data in zip(plan.shards, datas):
        if data is None:
            parts.append(np.zeros(spec.devices, dtype=np.float64))
        else:
            parts.append(np.asarray(data["rates"], dtype=np.float64))
    return np.concatenate(parts) if parts else np.zeros(0)


def merge_attack(plan: ShardPlan, datas: Sequence[object]
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate per-shard attack outcomes into fleet-order arrays.

    Returns the ``(recovered, queries)`` pair with the exact dtypes of
    :meth:`repro.fleet.Fleet.attack_success`.
    """
    recovered, queries = [], []
    for spec, data in zip(plan.shards, datas):
        if data is None:
            recovered.append(np.zeros(spec.devices, dtype=np.bool_))
            queries.append(np.zeros(spec.devices, dtype=np.int64))
        else:
            recovered.append(np.asarray(data["recovered"],
                                        dtype=np.bool_))
            queries.append(np.asarray(data["queries"],
                                      dtype=np.int64))
    if not recovered:
        return (np.zeros(0, dtype=np.bool_),
                np.zeros(0, dtype=np.int64))
    return np.concatenate(recovered), np.concatenate(queries)


def merge_attack_results(plan: ShardPlan,
                         datas: Sequence[object]) -> List[object]:
    """Concatenate per-shard raw attack results, fleet order."""
    merged: List[object] = []
    for spec, data in zip(plan.shards, datas):
        if data is None:
            merged.extend([None] * spec.devices)
        else:
            merged.extend(data["results"])
    return merged
