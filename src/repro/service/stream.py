"""Streaming sweep API: submit once, consume shard results as they land.

:func:`submit_sweep` seeds a population, resolves its enrollment
(fresh, or loaded from a persistent registry), shards the sweep with a
deterministic :class:`~repro.service.shard.ShardPlan` and drives the
shards over the :class:`~repro.service.dispatcher.Dispatcher`'s
long-lived workers.  The returned :class:`SweepHandle` is lazy: shards
only execute while the caller iterates (or calls :meth:`collect`), and
results are yielded in **completion order** — out-of-order by design.
:meth:`SweepHandle.in_order` replays them in shard order, and
:meth:`SweepHandle.collect` merges them into the exact single-host
result shapes: the contract (pinned by ``tests/service/``) is that
``collect()`` is bitwise-equal to the matching
:meth:`repro.fleet.Fleet.failure_rates` /
:meth:`~repro.fleet.Fleet.attack_success` /
:meth:`~repro.fleet.Fleet.attack_results` call on a same-seed fleet,
for every shard count, worker count and transport.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro._rng import spawn
from repro.fleet.fleet import (
    AttackFactory,
    Fleet,
    FleetEnrollment,
    KeyGenFactory,
)
from repro.fleet.resilience import ResilienceReport, RetryPolicy
from repro.keygen.base import OperatingPoint
from repro.puf.parameters import ROArrayParams
from repro.service.dispatcher import Dispatcher
from repro.service.shard import (
    KIND_ATTACK,
    KIND_FAILURE,
    KINDS,
    ShardPlan,
    ShardSpec,
    merge_attack,
    merge_attack_results,
    merge_failure_rates,
)


@dataclass(frozen=True)
class PopulationSpec:
    """A seeded device population, as pure data.

    The spec is the unit both the service and the registry key on:
    ``(params, devices, seed)`` fully determines the manufactured
    fleet *and* the enrollment streams (the seed is split exactly as
    the ``repro fleet`` CLI splits it — manufacturing children and
    enrollment children can never collide).
    """

    params: ROArrayParams
    devices: int
    seed: int

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise ValueError("need at least one device")

    def build(self) -> Tuple[Fleet, object]:
        """Manufacture the fleet; returns ``(fleet, enroll_rng)``."""
        manufacture_rng, enroll_rng = spawn(self.seed, 2)
        return (Fleet(self.params, size=self.devices,
                      seed=manufacture_rng), enroll_rng)


@dataclass(frozen=True)
class ShardResult:
    """One shard's completed contribution to a streamed sweep.

    ``data`` is the kind-typed payload (``rates`` /
    ``recovered``+``queries`` / ``results``), or ``None`` for a
    poisoned shard under an ``allow_partial`` policy.  ``kernel`` is
    the ECC kernel-stats delta measured around the shard's execution
    in whatever process ran it.
    """

    shard: ShardSpec
    kind: str
    data: Optional[Dict[str, object]]
    seconds: float
    kernel: Dict[str, object]
    attempt: int
    worker: Optional[int]
    degraded: bool
    poisoned: bool

    def to_json(self) -> Dict[str, object]:
        """JSON-serialisable chunk line (the ``--stream`` NDJSON)."""
        payload: Dict[str, object] = {
            "shard": int(self.shard.index),
            "start": int(self.shard.start),
            "stop": int(self.shard.stop),
            "digest": self.shard.digest,
            "kind": self.kind,
            "attempt": int(self.attempt),
            "worker": self.worker,
            "degraded": bool(self.degraded),
            "poisoned": bool(self.poisoned),
            "seconds": float(self.seconds),
            "kernel": {
                "calls": int(self.kernel["calls"]),
                "rows": int(self.kernel["rows"]),
                "seconds": float(self.kernel["seconds"]),
            },
        }
        if self.data is None:
            return payload
        if self.kind == KIND_FAILURE:
            payload["rates"] = [float(rate)
                                for rate in self.data["rates"]]
        elif self.kind == KIND_ATTACK:
            payload["recovered"] = [bool(hit) for hit
                                    in self.data["recovered"]]
            payload["queries"] = [int(bill) for bill
                                  in self.data["queries"]]
        else:
            payload["results"] = [type(result).__name__
                                  for result in self.data["results"]]
        return payload


class SweepHandle:
    """Iterator/callback surface over one streamed sharded sweep.

    Results arrive in completion order; every received
    :class:`ShardResult` is also retained on :attr:`results` so
    :meth:`in_order` and :meth:`collect` can replay/merge after the
    stream is drained.  The handle is single-use, like the sweep it
    fronts.
    """

    def __init__(self, plan: ShardPlan, kind: str,
                 dispatcher: Dispatcher, outcomes: Iterator[Dict],
                 fleet: Fleet, enrollment: FleetEnrollment,
                 enrollment_source: str):
        self.plan = plan
        self.kind = kind
        self.fleet = fleet
        self.enrollment = enrollment
        #: ``"enrolled"`` (fresh enrollment ran) or ``"registry"``
        #: (persisted enrollment loaded; zero enroll calls).
        self.enrollment_source = enrollment_source
        self.results: List[ShardResult] = []
        self._dispatcher = dispatcher
        self._outcomes = outcomes
        self._callbacks: List = []

    # ------------------------------------------------------------------

    @property
    def report(self) -> Optional[ResilienceReport]:
        """The run's resilience report (``None`` before any pump)."""
        return self._dispatcher.report

    def on_chunk(self, callback) -> "SweepHandle":
        """Register *callback(result)* for every arriving chunk.

        Callbacks fire in arrival order while the handle is pumped
        (by iteration or :meth:`collect`); chaining returns the
        handle.
        """
        self._callbacks.append(callback)
        return self

    def __iter__(self) -> Iterator[ShardResult]:
        return self

    def __next__(self) -> ShardResult:
        outcome = next(self._outcomes)
        result = ShardResult(
            shard=outcome["shard"], kind=outcome["kind"],
            data=outcome["data"], seconds=outcome["seconds"],
            kernel=outcome["kernel"], attempt=outcome["attempt"],
            worker=outcome["worker"], degraded=outcome["degraded"],
            poisoned=outcome["poisoned"])
        self.results.append(result)
        for callback in self._callbacks:
            callback(result)
        return result

    def close(self) -> None:
        """Abandon the sweep: stop the workers, release the sockets."""
        self._outcomes.close()

    def in_order(self) -> Iterator[ShardResult]:
        """Replay results in shard order, buffering early arrivals.

        Pumps the stream as needed: shard *i* is yielded as soon as
        every shard ``<= i`` has completed.
        """
        buffered: Dict[int, ShardResult] = {
            result.shard.index: result for result in self.results}
        emit = 0
        while emit < len(self.plan):
            if emit in buffered:
                yield buffered.pop(emit)
                emit += 1
                continue
            result = next(self)
            buffered[result.shard.index] = result

    def drain(self) -> List[ShardResult]:
        """Pump the stream to completion; returns all results."""
        for _ in self:
            pass
        return self.results

    def collect(self):
        """Drain and merge into the single-host result shape.

        * :data:`~repro.service.shard.KIND_FAILURE` → the
          ``(devices,)`` float64 vector of
          :meth:`repro.fleet.Fleet.failure_rates`;
        * :data:`~repro.service.shard.KIND_ATTACK` → the
          ``(recovered, queries)`` pair of
          :meth:`~repro.fleet.Fleet.attack_success`;
        * :data:`~repro.service.shard.KIND_ATTACK_RESULTS` → the raw
          result list of :meth:`~repro.fleet.Fleet.attack_results`.

        Bitwise-equal to the matching direct sweep on a same-seed
        fleet, whatever the shard count, worker count or transport.
        """
        self.drain()
        by_shard: List[Optional[Dict]] = [None] * len(self.plan)
        for result in self.results:
            if not result.poisoned:
                by_shard[result.shard.index] = result.data
        if self.kind == KIND_FAILURE:
            return merge_failure_rates(self.plan, by_shard)
        if self.kind == KIND_ATTACK:
            return merge_attack(self.plan, by_shard)
        return merge_attack_results(self.plan, by_shard)


def submit_sweep(population: PopulationSpec,
                 keygen_factory: KeyGenFactory,
                 kind: str = KIND_FAILURE, *,
                 trials: Optional[int] = None,
                 op: Optional[OperatingPoint] = None,
                 helpers: Optional[Sequence[object]] = None,
                 chunk: int = 1024,
                 attack_factory: Optional[AttackFactory] = None,
                 lockstep: Optional[bool] = None,
                 fused: Optional[bool] = None,
                 trajectory=None,
                 shards: int = 2,
                 workers: Optional[int] = None,
                 transport: str = "pipe",
                 policy: Optional[RetryPolicy] = None,
                 registry=None,
                 enroll_workers: Optional[int] = 1,
                 handshake_timeout: float = 30.0) -> SweepHandle:
    """Submit one sharded sweep; returns a lazy :class:`SweepHandle`.

    Builds the seeded population, resolves the enrollment — from
    *registry* (a :class:`repro.service.registry.EnrollmentRegistry`
    or a path to one; enrollment is **skipped entirely**, helpers and
    keys are digest-verified on load) or by enrolling fresh with the
    spec's enrollment stream — then derives every sweep substream in
    this process and hands per-shard payloads to the dispatcher.
    Nothing about worker placement can influence the outputs:
    :meth:`SweepHandle.collect` is bitwise-equal to the matching
    single-host ``Fleet`` sweep.

    *trials* is required for failure-rate sweeps; *attack_factory*
    (a picklable module-level callable) for the attack kinds.  The
    remaining knobs mirror the ``Fleet`` sweep methods; *shards*,
    *workers*, *transport*, *policy* and *handshake_timeout* mirror
    the :class:`~repro.service.dispatcher.Dispatcher`.
    """
    if kind not in KINDS:
        raise ValueError(f"unknown sweep kind {kind!r}; expected one "
                         f"of {KINDS}")
    fleet, enroll_rng = population.build()
    if registry is not None:
        from repro.service.registry import EnrollmentRegistry

        if not isinstance(registry, EnrollmentRegistry):
            registry = EnrollmentRegistry.open(registry)
        registry.verify_population(population)
        enrollment = registry.load_enrollment(keygen_factory)
        source = "registry"
    else:
        enrollment = fleet.enroll(keygen_factory, seed=enroll_rng,
                                  workers=enroll_workers)
        source = "enrolled"
    plan = ShardPlan.plan(population.seed, len(fleet), shards)
    if kind == KIND_FAILURE:
        if trials is None:
            raise ValueError("failure-rate sweeps need trials")
        jobs = fleet.failure_rate_jobs(enrollment, trials, op=op,
                                       helpers=helpers, chunk=chunk,
                                       trajectory=trajectory)
        shard_jobs = plan.slice_jobs(jobs)
    else:
        if attack_factory is None:
            raise ValueError("attack sweeps need an attack_factory")
        chunk_jobs = fleet.attack_chunk_jobs(
            enrollment, attack_factory, spans=plan.spans,
            op=op if op is not None else OperatingPoint(),
            lockstep=lockstep, fused=fused, trajectory=trajectory)
        shard_jobs = [[job] for job in chunk_jobs]
    dispatcher = Dispatcher(workers=workers, transport=transport,
                            policy=policy,
                            handshake_timeout=handshake_timeout)
    outcomes = dispatcher.run(plan, kind, shard_jobs)
    return SweepHandle(plan, kind, dispatcher, outcomes, fleet,
                       enrollment, source)
