"""``repro service`` subcommand handlers.

Wires the distributed campaign service into the top-level CLI::

    repro service enroll --scheme S --registry DIR [--devices N]
                         [--seed N] [--rows R --cols C]
                         [--sigma-noise HZ] [--workers W]
    repro service sweep (--registry DIR | --scheme S ...)
                        [--kind failure|attack|attack-results]
                        [--trials N] [--shards K] [--workers W]
                        [--transport pipe|tcp] [--stream]
                        [--check-single-host] [--max-retries N]
                        [--chunk-timeout S] [--allow-partial]

``enroll`` persists one population's enrollment into a registry
directory; ``sweep --registry`` then runs any number of sharded
sweeps against it without ever re-enrolling (the manifest supplies
scheme, geometry, seed and device count).  ``--stream`` prints one
NDJSON line per completed shard, in completion order;
``--check-single-host`` additionally runs the equivalent single-host
``Fleet`` sweep and fails unless the merged stream matches bitwise.

Kept separate from :mod:`repro.cli` so the argument surface and the
handlers live next to the subsystem they drive (same split as
:mod:`repro.warehouse.cli` and :mod:`repro.scenario.cli`).
"""

from __future__ import annotations

import argparse
import functools
import json
import sys
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.fleet import (
    DistillerAttackFactory,
    GroupAttackFactory,
    SequentialAttackFactory,
    TempAwareAttackFactory,
)
from repro.fleet.resilience import PoisonedSweepError, RetryPolicy
from repro.keygen import (
    DistillerPairingKeyGen,
    FuzzyExtractorKeyGen,
    GroupBasedKeyGen,
    SequentialPairingKeyGen,
    TempAwareKeyGen,
)
from repro.puf import ROArrayParams
from repro.service.dispatcher import WorkerHandshakeError
from repro.service.registry import (
    EnrollmentRegistry,
    RegistryError,
    enroll_population,
)
from repro.service.shard import (
    KIND_ATTACK,
    KIND_ATTACK_RESULTS,
    KIND_FAILURE,
)
from repro.service.stream import PopulationSpec, submit_sweep

#: Per-scheme service defaults: (rows, cols, sigma_noise).  Geometry
#: mirrors the conformance corpus so service populations exercise the
#: same regimes the pass-bands were tuned on.
SCHEME_DEFAULTS: Dict[str, Tuple[int, int, float]] = {
    "sequential": (8, 16, 150e3),
    "temp-aware": (8, 16, 90e3),
    "group-based": (4, 10, 64e3),
    "distiller": (4, 10, 80e3),
    "fuzzy": (4, 10, 120e3),
}

SCHEMES = tuple(SCHEME_DEFAULTS)

_KIND_BY_LABEL = {
    "failure": KIND_FAILURE,
    "attack": KIND_ATTACK,
    "attack-results": KIND_ATTACK_RESULTS,
}


def scheme_keygen_factory(scheme: str, rows: int,
                          cols: int) -> Callable[[], object]:
    """Picklable keygen factory for one service scheme."""
    if scheme == "sequential":
        return functools.partial(SequentialPairingKeyGen,
                                 threshold=300e3)
    if scheme == "temp-aware":
        return functools.partial(TempAwareKeyGen, t_min=-10, t_max=80,
                                 threshold=150e3)
    if scheme == "group-based":
        return functools.partial(GroupBasedKeyGen,
                                 group_threshold=120e3)
    if scheme == "distiller":
        return functools.partial(DistillerPairingKeyGen, rows, cols,
                                 pairing_mode="neighbor-disjoint",
                                 k=5)
    if scheme == "fuzzy":
        return functools.partial(FuzzyExtractorKeyGen, rows, cols,
                                 out_bits=16)
    raise ValueError(f"unknown service scheme {scheme!r}")


def scheme_attack_factory(scheme: str, rows: int, cols: int
                          ) -> Callable:
    """Picklable attack factory for one service scheme."""
    if scheme == "sequential":
        return SequentialAttackFactory("paired")
    if scheme == "temp-aware":
        return TempAwareAttackFactory()
    if scheme == "group-based":
        return GroupAttackFactory(rows, cols)
    if scheme == "distiller":
        return DistillerAttackFactory(rows, cols)
    raise ValueError(
        f"no attack campaign is defined for scheme {scheme!r}")


def add_service_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``service`` subcommand tree on *sub*."""
    service = sub.add_parser(
        "service",
        help="distributed campaign service (sharded sweeps + "
             "enrollment registry)")
    ssub = service.add_subparsers(dest="service_command",
                                  required=True)

    def _population_args(parser, require_scheme: bool) -> None:
        parser.add_argument("--scheme", required=require_scheme,
                            choices=SCHEMES, default=None)
        parser.add_argument("--devices", type=int, default=None,
                            help="population size (default 4)")
        parser.add_argument("--seed", type=int, default=None,
                            help="population seed (default 0)")
        parser.add_argument("--rows", type=int, default=None,
                            help="array rows (scheme default)")
        parser.add_argument("--cols", type=int, default=None,
                            help="array columns (scheme default)")
        parser.add_argument("--sigma-noise", type=float, default=None,
                            metavar="HZ",
                            help="measurement noise sigma "
                                 "(scheme default)")

    enroll = ssub.add_parser(
        "enroll",
        help="enroll a population once into a persistent registry")
    _population_args(enroll, require_scheme=True)
    enroll.add_argument("--registry", required=True, metavar="DIR",
                        help="registry directory to create")
    enroll.add_argument("--workers", type=int, default=1,
                        help="enrollment worker processes")

    sweep = ssub.add_parser(
        "sweep",
        help="run one sharded streaming sweep")
    _population_args(sweep, require_scheme=False)
    sweep.add_argument("--registry", default=None, metavar="DIR",
                       help="reuse this enrollment registry (skips "
                            "enrollment; supplies scheme, geometry, "
                            "seed and device count)")
    sweep.add_argument("--kind", default="failure",
                       choices=sorted(_KIND_BY_LABEL),
                       help="sweep kind")
    sweep.add_argument("--trials", type=int, default=256,
                       help="reconstruction attempts per device "
                            "(failure sweeps)")
    sweep.add_argument("--shards", type=int, default=2,
                       help="shard count")
    sweep.add_argument("--workers", type=int, default=None,
                       help="service worker processes (default: "
                            "CPU count, capped at the shard count)")
    sweep.add_argument("--transport", default="pipe",
                       choices=("pipe", "tcp"),
                       help="worker transport")
    sweep.add_argument("--stream", action="store_true",
                       help="print one NDJSON line per completed "
                            "shard (completion order)")
    sweep.add_argument("--check-single-host", action="store_true",
                       help="also run the single-host Fleet sweep "
                            "and fail unless results match bitwise")
    sweep.add_argument("--max-retries", type=int, default=2,
                       help="per-shard retry budget")
    sweep.add_argument("--chunk-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-shard watchdog timeout")
    sweep.add_argument("--allow-partial", action="store_true",
                       help="zero-fill shards that exhaust retries "
                            "instead of failing the sweep")


def run_service(args: argparse.Namespace) -> int:
    """Dispatch a parsed ``service`` invocation; exit code."""
    handler = {
        "enroll": _cmd_enroll,
        "sweep": _cmd_sweep,
    }[args.service_command]
    try:
        return handler(args)
    except (RegistryError, WorkerHandshakeError, ValueError) as error:
        print(f"service {args.service_command}: {error}")
        return 2


def _resolve_population(args: argparse.Namespace, scheme: str
                        ) -> PopulationSpec:
    """Population spec from CLI arguments and scheme defaults."""
    rows, cols, sigma = SCHEME_DEFAULTS[scheme]
    rows = args.rows if args.rows is not None else rows
    cols = args.cols if args.cols is not None else cols
    sigma = (args.sigma_noise if args.sigma_noise is not None
             else sigma)
    params = ROArrayParams(rows=rows, cols=cols, sigma_noise=sigma)
    devices = args.devices if args.devices is not None else 4
    seed = args.seed if args.seed is not None else 0
    return PopulationSpec(params=params, devices=devices, seed=seed)


def _cmd_enroll(args: argparse.Namespace) -> int:
    population = _resolve_population(args, args.scheme)
    factory = scheme_keygen_factory(
        args.scheme, population.params.rows, population.params.cols)
    print(f"service enroll: scheme={args.scheme} "
          f"devices={population.devices} seed={population.seed} "
          f"geometry={population.params.rows}x"
          f"{population.params.cols} -> {args.registry}")
    registry = enroll_population(args.registry, population, factory,
                                 args.scheme, workers=args.workers)
    print(f"  enrolled {registry.enrolled} device(s); manifest + "
          f"helper/key stores written")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    registry: Optional[EnrollmentRegistry] = None
    if args.registry is not None:
        registry = EnrollmentRegistry.open(args.registry)
        scheme = registry.scheme
        for name, value in (("scheme", args.scheme),
                            ("rows", args.rows), ("cols", args.cols),
                            ("sigma-noise", args.sigma_noise),
                            ("devices", args.devices),
                            ("seed", args.seed)):
            if value is not None:
                print(f"service sweep: --{name} conflicts with "
                      f"--registry (the manifest supplies it)")
                return 2
        population = PopulationSpec(params=registry.params,
                                    devices=registry.devices,
                                    seed=registry.population_seed)
    else:
        if args.scheme is None:
            print("service sweep: need --scheme (or --registry)")
            return 2
        scheme = args.scheme
        population = _resolve_population(args, scheme)

    rows, cols = population.params.rows, population.params.cols
    factory = scheme_keygen_factory(scheme, rows, cols)
    kind = _KIND_BY_LABEL[args.kind]
    attack_factory = None
    if kind != KIND_FAILURE:
        attack_factory = scheme_attack_factory(scheme, rows, cols)
    policy = RetryPolicy(max_retries=args.max_retries,
                         chunk_timeout=args.chunk_timeout,
                         allow_partial=args.allow_partial)

    print(f"service sweep: kind={args.kind} scheme={scheme} "
          f"devices={population.devices} seed={population.seed} "
          f"shards={args.shards} transport={args.transport}")
    handle = submit_sweep(
        population, factory, kind, trials=args.trials,
        attack_factory=attack_factory, shards=args.shards,
        workers=args.workers, transport=args.transport,
        policy=policy, registry=registry)
    print(f"  enrollment source: {handle.enrollment_source}")

    try:
        if args.stream:
            for result in handle:
                sys.stdout.write(json.dumps(result.to_json(),
                                            sort_keys=True) + "\n")
                sys.stdout.flush()
        merged = handle.collect()
    except PoisonedSweepError as error:
        print(f"service sweep: poisoned - {error}")
        return 1

    report = handle.report
    if report is not None:
        print(f"  resilience: {report.summary()}")
    _print_merged(kind, merged)

    if args.check_single_host:
        fleet, enroll_rng = population.build()
        enrollment = fleet.enroll(factory, seed=enroll_rng)
        if kind == KIND_FAILURE:
            expect = fleet.failure_rates(enrollment, args.trials)
            matches = np.array_equal(merged, expect)
        elif kind == KIND_ATTACK:
            expect = fleet.attack_success(enrollment, attack_factory)
            matches = (np.array_equal(merged[0], expect[0])
                       and np.array_equal(merged[1], expect[1]))
        else:
            expect = fleet.attack_results(enrollment, attack_factory)
            matches = len(merged) == len(expect) and all(
                type(a) is type(b) for a, b in zip(merged, expect))
        if not matches:
            print("  single-host check: MISMATCH")
            return 1
        print("  single-host check: bitwise-identical")
    return 0


def _print_merged(kind: str, merged) -> None:
    """Human-readable summary of the merged sweep result."""
    if kind == KIND_FAILURE:
        rates = np.asarray(merged)
        print(f"  failure rates: mean={rates.mean():.6g} "
              f"max={rates.max():.6g} over {rates.size} device(s)")
    elif kind == KIND_ATTACK:
        recovered, queries = merged
        print(f"  attack: {int(recovered.sum())}/{recovered.size} "
              f"keys recovered, {int(queries.sum())} oracle queries")
    else:
        print(f"  attack results: {len(merged)} device record(s)")
