"""Persistent enrollment registry: enroll once, sweep many times.

An :class:`EnrollmentRegistry` is an append-only on-disk store of one
population's enrollment, built on the **specified** helper-data
formats of :mod:`repro.serialization` (§VII-C: storage formats are
security-relevant, so the registry never pickles helpers — every
blob round-trips through the strict tagged container parsers).

Layout of a registry directory::

    manifest.json   population identity + per-device entry table
    helpers.bin     concatenated ROHD helper containers, append-only
    keys.bin        concatenated ROHD key-bit containers, append-only

The manifest keys the store by ``(population seed, scheme label,
device index)`` and records, per device, the byte offset, length and
SHA-256 content digest of its helper and key blobs.  Loading verifies
every digest before parsing — a flipped bit in a helper file is a
:class:`RegistryError` naming the device, never a silently different
sweep.

Because the fleet enrollment stream is split from the population seed
*independently* of the sweep substreams (the ``spawn(seed, 2)``
discipline of :class:`repro.service.stream.PopulationSpec`), a sweep
that loads this registry instead of enrolling consumes exactly the
same sweep substreams as one that enrolled fresh — registry-backed
sweeps are therefore bitwise-identical to enroll-every-time sweeps,
while running zero enrollment measurements.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.fleet.fleet import FleetEnrollment, KeyGenFactory
from repro.puf.parameters import ROArrayParams
from repro.serialization import (
    dump_helper,
    dump_key_bits,
    load_helper,
    load_key_bits,
)

#: Manifest schema version; bumped on layout changes.
SCHEMA_VERSION = 1

_MANIFEST = "manifest.json"
_HELPERS = "helpers.bin"
_KEYS = "keys.bin"


class RegistryError(ValueError):
    """The registry is malformed, tampered with, or mismatched."""


def _sha256(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


class EnrollmentRegistry:
    """Append-only on-disk enrollment store for one population.

    Create with :meth:`create`, reopen with :meth:`open`.  Devices
    are appended in fleet order; the manifest is rewritten atomically
    (write-new + rename) after each append, so a torn process leaves
    either the old or the new manifest, never half of one.
    """

    def __init__(self, path: Path, manifest: Dict[str, object]):
        self.path = Path(path)
        self._manifest = manifest

    # ------------------------------------------------------------------
    # lifecycle

    @classmethod
    def create(cls, path, population_seed: int, scheme: str,
               params: ROArrayParams,
               devices: int) -> "EnrollmentRegistry":
        """Initialise an empty registry directory.

        *devices* is the expected population size; appends beyond it
        (or loads before it is reached) are refused.
        """
        target = Path(path)
        target.mkdir(parents=True, exist_ok=True)
        if (target / _MANIFEST).exists():
            raise RegistryError(
                f"registry already exists at {target}")
        manifest: Dict[str, object] = {
            "schema_version": SCHEMA_VERSION,
            "population_seed": int(population_seed),
            "scheme": str(scheme),
            "params": asdict(params),
            "devices": int(devices),
            "entries": [],
        }
        registry = cls(target, manifest)
        (target / _HELPERS).write_bytes(b"")
        (target / _KEYS).write_bytes(b"")
        registry._write_manifest()
        return registry

    @classmethod
    def open(cls, path) -> "EnrollmentRegistry":
        """Open an existing registry; validates the manifest shape."""
        target = Path(path)
        manifest_path = target / _MANIFEST
        if not manifest_path.exists():
            raise RegistryError(
                f"no registry manifest at {manifest_path}")
        try:
            manifest = json.loads(
                manifest_path.read_text(encoding="ascii"))
        except (ValueError, UnicodeDecodeError) as error:
            raise RegistryError(
                f"malformed registry manifest: {error}") from None
        if manifest.get("schema_version") != SCHEMA_VERSION:
            raise RegistryError(
                f"registry schema version "
                f"{manifest.get('schema_version')} is not the "
                f"supported {SCHEMA_VERSION}")
        for key in ("population_seed", "scheme", "params", "devices",
                    "entries"):
            if key not in manifest:
                raise RegistryError(
                    f"registry manifest misses the {key!r} field")
        return cls(target, manifest)

    def _write_manifest(self) -> None:
        text = json.dumps(self._manifest, indent=2, sort_keys=True)
        tmp = self.path / (_MANIFEST + ".tmp")
        tmp.write_text(text + "\n", encoding="ascii")
        os.replace(tmp, self.path / _MANIFEST)

    # ------------------------------------------------------------------
    # identity

    @property
    def population_seed(self) -> int:
        """Seed of the population this enrollment belongs to."""
        return int(self._manifest["population_seed"])

    @property
    def scheme(self) -> str:
        """Scheme label the population was enrolled under."""
        return str(self._manifest["scheme"])

    @property
    def devices(self) -> int:
        """Expected population size."""
        return int(self._manifest["devices"])

    @property
    def params(self) -> ROArrayParams:
        """The population's physical parameter set."""
        return ROArrayParams(**self._manifest["params"])

    @property
    def enrolled(self) -> int:
        """Devices appended so far."""
        return len(self._manifest["entries"])

    def verify_population(self, population) -> None:
        """Check a :class:`PopulationSpec` matches this registry.

        A registry holds *one* population's enrollment; sweeping a
        different seed, size or parameter set against it would
        silently decouple helpers from devices, so every mismatch is
        a :class:`RegistryError`.
        """
        if population.seed != self.population_seed:
            raise RegistryError(
                f"registry was enrolled for population seed "
                f"{self.population_seed}, sweep requested seed "
                f"{population.seed}")
        if population.devices != self.devices:
            raise RegistryError(
                f"registry covers {self.devices} devices, sweep "
                f"requested {population.devices}")
        if asdict(population.params) != self._manifest["params"]:
            raise RegistryError(
                "registry population parameters do not match the "
                "sweep's")

    # ------------------------------------------------------------------
    # append

    def append(self, helper: object, key: np.ndarray) -> int:
        """Persist one device's enrollment; returns its index.

        Devices append in fleet order.  Blobs go through the strict
        :mod:`repro.serialization` formats, so only helper types with
        a registered codec can be persisted (all five scheme families
        have one).
        """
        index = self.enrolled
        if index >= self.devices:
            raise RegistryError(
                f"registry already holds all {self.devices} devices")
        helper_blob = dump_helper(helper)
        key_blob = dump_key_bits(np.asarray(key))
        entry = {"device": index}
        for name, filename, blob in (
                ("helper", _HELPERS, helper_blob),
                ("key", _KEYS, key_blob)):
            target = self.path / filename
            offset = target.stat().st_size
            with open(target, "ab") as handle:
                handle.write(blob)
            entry[f"{name}_offset"] = offset
            entry[f"{name}_length"] = len(blob)
            entry[f"{name}_sha256"] = _sha256(blob)
        self._manifest["entries"].append(entry)
        self._write_manifest()
        return index

    # ------------------------------------------------------------------
    # load

    def _read_blob(self, entry: Dict, name: str,
                   filename: str) -> bytes:
        with open(self.path / filename, "rb") as handle:
            handle.seek(int(entry[f"{name}_offset"]))
            blob = handle.read(int(entry[f"{name}_length"]))
        if len(blob) != int(entry[f"{name}_length"]):
            raise RegistryError(
                f"device {entry['device']} {name} blob is truncated")
        if _sha256(blob) != entry[f"{name}_sha256"]:
            raise RegistryError(
                f"device {entry['device']} {name} digest mismatch: "
                f"the registry was tampered with or corrupted")
        return blob

    def load(self, device: int) -> Tuple[object, np.ndarray]:
        """Load one device's verified ``(helper, key)``."""
        entries: List[Dict] = self._manifest["entries"]
        if not 0 <= device < len(entries):
            raise RegistryError(
                f"device {device} is not in the registry "
                f"({len(entries)} enrolled)")
        entry = entries[device]
        helper = load_helper(self._read_blob(entry, "helper",
                                             _HELPERS))
        key = load_key_bits(self._read_blob(entry, "key", _KEYS))
        return helper, key

    def load_enrollment(self, keygen_factory: KeyGenFactory
                        ) -> FleetEnrollment:
        """Rebuild the full :class:`FleetEnrollment` from disk.

        Key generators are constructed fresh from the factory (they
        are deterministic device models, not stored state); helpers
        and keys come verified from the store.  No enrollment
        measurement runs — ``keygen.enroll`` is never called.
        """
        if self.enrolled != self.devices:
            raise RegistryError(
                f"registry holds {self.enrolled} of {self.devices} "
                f"devices; finish enrollment first")
        helpers, keys = [], []
        for device in range(self.devices):
            helper, key = self.load(device)
            helpers.append(helper)
            keys.append(key)
        return FleetEnrollment(
            tuple(keygen_factory() for _ in range(self.devices)),
            tuple(helpers), tuple(keys))


def enroll_population(path, population, keygen_factory: KeyGenFactory,
                      scheme: str,
                      workers: Optional[int] = 1
                      ) -> EnrollmentRegistry:
    """Enroll a population and persist it; returns the registry.

    *population* is a :class:`repro.service.stream.PopulationSpec`;
    the fleet is manufactured and enrolled exactly as
    :func:`repro.service.stream.submit_sweep` would (same seed
    split), then every device's helper/key lands in the registry at
    *path* in fleet order.
    """
    fleet, enroll_rng = population.build()
    enrollment = fleet.enroll(keygen_factory, seed=enroll_rng,
                              workers=workers)
    registry = EnrollmentRegistry.create(
        path, population.seed, scheme, population.params,
        population.devices)
    for helper, key in zip(enrollment.helpers, enrollment.keys):
        registry.append(helper, key)
    return registry
