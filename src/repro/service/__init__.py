"""Distributed campaign service: sharded, streaming, enroll-once.

The service layers three pieces over the fleet engine:

* :mod:`repro.service.shard` / :mod:`repro.service.dispatcher` — a
  deterministic :class:`ShardPlan` over a seeded population, executed
  by long-lived worker processes over a length-prefixed pipe/TCP
  protocol, with the PR-8 retry/quarantine taxonomy
  (:class:`~repro.fleet.resilience.RetryPolicy`) for crashes,
  timeouts and poison shards;
* :mod:`repro.service.stream` — :func:`submit_sweep` returning a
  lazy :class:`SweepHandle` that yields typed :class:`ShardResult`
  chunks in completion order, replays them in order, and merges them
  **bitwise-identically** to the single-host ``Fleet`` sweeps;
* :mod:`repro.service.registry` — a persistent, digest-verified
  enrollment store so a population is enrolled once and swept many
  times (``repro service enroll`` / ``repro service sweep
  --registry``).

The invariant underneath all of it: shard identity and every
per-device random substream derive from the population seed and the
sweep call order — never from worker count, shard count, transport or
completion order.
"""

from repro.service.dispatcher import (
    Dispatcher,
    ServiceProtocolError,
    WorkerHandshakeError,
)
from repro.service.registry import (
    EnrollmentRegistry,
    RegistryError,
    enroll_population,
)
from repro.service.shard import (
    KIND_ATTACK,
    KIND_ATTACK_RESULTS,
    KIND_FAILURE,
    KINDS,
    ShardPlan,
    ShardSpec,
    execute_shard,
    merge_attack,
    merge_attack_results,
    merge_failure_rates,
    shard_digest,
)
from repro.service.stream import (
    PopulationSpec,
    ShardResult,
    SweepHandle,
    submit_sweep,
)

__all__ = [
    "Dispatcher",
    "EnrollmentRegistry",
    "KIND_ATTACK",
    "KIND_ATTACK_RESULTS",
    "KIND_FAILURE",
    "KINDS",
    "PopulationSpec",
    "RegistryError",
    "ServiceProtocolError",
    "ShardPlan",
    "ShardResult",
    "ShardSpec",
    "SweepHandle",
    "WorkerHandshakeError",
    "enroll_population",
    "execute_shard",
    "merge_attack",
    "merge_attack_results",
    "merge_failure_rates",
    "shard_digest",
    "submit_sweep",
]
