"""Defence walkthrough: validation, authenticated helper data, formats.

The constructive counterpart of the attacks: what a defender can do.

1. **Device-side validation** (§VII-C sanity checks) — a hardened
   group-based device rejects the steep polynomial payload of the
   §VI-C attack, collapsing the hypothesis channel.
2. **Robust fuzzy extractor** (reference [1]) — helper data carries an
   authentication tag bound to the PUF response; any rewrite is
   detected before key release, and reprogramming requires knowing the
   response.
3. **Specified storage formats** — helper bundles serialise to a
   versioned, strictly parsed binary format; malformed blobs are
   rejected loudly, never mis-parsed.

Run:  python examples/hardened_device.py
"""

import numpy as np

from repro.core import GroupBasedAttack, HelperDataOracle
from repro.ecc import CodeOffsetSketch, design_bch
from repro.fuzzy import ManipulationDetected, RobustFuzzyExtractor
from repro.keygen import GroupBasedKeyGen, HardenedGroupBasedKeyGen
from repro.puf import FIG6_PARAMS, ROArray
from repro.serialization import (
    FormatError,
    dump_group_based,
    load_group_based,
)


def main() -> None:
    array = ROArray(FIG6_PARAMS, rng=7)

    # -- 1. device-side validation ---------------------------------------
    print("=== device-side validation (paper §VII-C) ===")
    for hardened in (False, True):
        if hardened:
            keygen = HardenedGroupBasedKeyGen(
                rows=4, cols=10, max_polynomial_span=20e6,
                group_threshold=120e3)
        else:
            keygen = GroupBasedKeyGen(group_threshold=120e3)
        helper, key = keygen.enroll(array, rng=1)
        oracle = HelperDataOracle(array, keygen)
        attack = GroupBasedAttack(oracle, keygen, helper, 4, 10)
        helper0, helper1 = attack._attack_helpers(0, 1)
        rate0 = oracle.failure_rate(helper0, 6)
        rate1 = oracle.failure_rate(helper1, 6)
        label = "hardened" if hardened else "baseline"
        verdict = ("channel dead" if abs(rate0 - rate1) < 0.2
                   else "attacker learns the bit")
        print(f"  {label:<9} device: hypothesis failure rates "
              f"{rate0:.2f} / {rate1:.2f}  -> {verdict}")

    # -- 2. robust fuzzy extractor ----------------------------------------
    print("\n=== robust fuzzy extractor (reference [1]) ===")
    rng = np.random.default_rng(3)
    response = rng.integers(0, 2, 48).astype(np.uint8)
    code = design_bch(48, 4)
    extractor = RobustFuzzyExtractor(CodeOffsetSketch(code, 48),
                                     out_bits=32)
    key, helper = extractor.generate(response, rng)
    noisy = response.copy()
    noisy[[2, 17]] ^= 1
    assert np.array_equal(extractor.reproduce(noisy, helper), key)
    print("  honest reconstruction with 2 noisy bits: OK")
    payload = helper.sketch.payload.copy()
    payload[5] ^= 1
    manipulated = helper.with_sketch(
        helper.sketch.with_payload(payload))
    try:
        extractor.reproduce(response, manipulated)
        print("  manipulated helper: NOT detected (!)")
    except ManipulationDetected:
        print("  manipulated helper: detected, no key released")

    # -- 3. strict storage formats -----------------------------------------
    print("\n=== specified helper-data storage format ===")
    keygen = GroupBasedKeyGen(group_threshold=120e3)
    helper, _ = keygen.enroll(array, rng=1)
    blob = dump_group_based(helper)
    restored = load_group_based(blob)
    print(f"  serialised bundle: {len(blob)} bytes; roundtrip "
          f"equal: {restored.grouping.groups == helper.grouping.groups}")
    try:
        load_group_based(blob[:-3])
        print("  truncated blob: accepted (!)")
    except FormatError as error:
        print(f"  truncated blob: rejected ({error})")


if __name__ == "__main__":
    main()
