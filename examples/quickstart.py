"""Quickstart: enroll an RO PUF key generator, reconstruct, and attack.

Walks the full lifecycle on one simulated device:

1. manufacture an 8x16 RO array (process variation = the secret);
2. enroll the sequential-pairing construction (Algorithm 1 + BCH);
3. reconstruct the key across the operating envelope;
4. mount the paper's §VI-A helper-data manipulation attack and recover
   the key through nothing but reconstruction success/failure bits.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import HelperDataOracle, SequentialPairingAttack
from repro.keygen import (
    OperatingPoint,
    ReconstructionFailure,
    SequentialPairingKeyGen,
)
from repro.puf import ROArray, ROArrayParams


def main() -> None:
    # -- 1. manufacture ------------------------------------------------
    params = ROArrayParams(rows=8, cols=16)
    array = ROArray(params, rng=2024)
    print(f"device: {array} ({array.n} oscillators)")

    # -- 2. enroll -----------------------------------------------------
    keygen = SequentialPairingKeyGen(threshold=300e3)
    helper, key = keygen.enroll(array, rng=1)
    print(f"enrolled a {key.size}-bit key: "
          f"{''.join(map(str, key[:32]))}...")
    print(f"helper data: {helper.pairing.bits} stored pairs, "
          f"{helper.sketch.payload.size} ECC redundancy bits")

    # -- 3. reconstruct ------------------------------------------------
    for temperature in (0.0, 25.0, 60.0):
        op = OperatingPoint(temperature=temperature)
        successes = 0
        for _ in range(10):
            try:
                successes += int(np.array_equal(
                    keygen.reconstruct(array, helper, op), key))
            except ReconstructionFailure:
                pass
        print(f"reconstruction at {temperature:5.1f} °C: "
              f"{successes}/10 successes")

    # -- 4. attack -----------------------------------------------------
    oracle = HelperDataOracle(array, keygen)
    attack = SequentialPairingAttack(oracle, keygen, helper)
    result = attack.run()
    assert result.key is not None
    print(f"\nattack finished: {result.queries} oracle queries "
          f"({result.queries / key.size:.1f} per key bit)")
    print(f"recovered key == enrolled key: "
          f"{np.array_equal(result.key, key)}")


if __name__ == "__main__":
    main()
