"""§VI-B walkthrough: attacking the temperature-aware cooperative PUF.

Shows the Fig. 3 pair classification, the cooperation helper records,
the zero-query leakage of a deterministic assistant-selection policy,
and the full assistant-substitution attack that recovers the relations
among every cooperating pair's bit (plus the masking good pairs' bits
absolutely).

Run:  python examples/temp_aware_relations.py
"""

from collections import Counter

import numpy as np

from repro.core import HelperDataOracle, TempAwareAttack
from repro.keygen import TempAwareKeyGen
from repro.pairing import (
    TempAwareCooperative,
    deterministic_selection_leakage,
)
from repro.puf import ROArray, ROArrayParams


def main() -> None:
    params = ROArrayParams(rows=8, cols=16, temp_slope_sigma=8e3)
    array = ROArray(params, rng=42)

    # -- Fig. 3 classification -----------------------------------------
    scheme = TempAwareCooperative(t_min=-10, t_max=80, threshold=150e3)
    profiles = scheme.profile_pairs(array, rng=1)
    counts = Counter(p.kind.value for p in profiles)
    print("=== pair classification over [-10, 80] °C "
          "(threshold 150 kHz) ===")
    for kind, count in sorted(counts.items()):
        print(f"  {kind:<12} {count}")

    # -- enrollment ------------------------------------------------------
    keygen = TempAwareKeyGen(t_min=-10, t_max=80, threshold=150e3)
    helper, key = keygen.enroll(array, rng=1)
    coop = helper.scheme.cooperation
    print(f"\nenrolled key: {key.size} bits "
          f"({len(helper.scheme.good_indices)} good pairs + "
          f"{len(coop)} cooperating pairs)")
    entry = coop[0]
    print(f"example cooperation record: pair {entry.pair_index} "
          f"unstable in [{entry.t_low:.1f}, {entry.t_high:.1f}] °C, "
          f"masked by good pair {entry.good_index}, "
          f"assisted by pair {entry.assist_index}")

    # -- zero-query leakage of the deterministic policy -------------------
    det_scheme = TempAwareCooperative(t_min=-10, t_max=80,
                                      threshold=150e3,
                                      selection="deterministic")
    det_helper, _ = det_scheme.enroll(array, rng=1)
    det_profiles = det_scheme.profile_pairs(array, rng=1)
    leaks = deterministic_selection_leakage(det_helper, det_profiles)
    print(f"\ndeterministic assistant selection leaks "
          f"{len(leaks)} bit relations before any device query "
          f"(paper §IV-D)")

    # -- the active attack -------------------------------------------------
    oracle = HelperDataOracle(array, keygen)
    result = TempAwareAttack(oracle, keygen, helper).run()
    n_good = len(helper.scheme.good_indices)
    coop_truth = key[n_good:]
    correct = np.mean(result.coop_relations == (coop_truth
                                                ^ coop_truth[0]))
    print(f"\n=== assistant-substitution attack ===")
    print(f"oracle queries: {result.queries}")
    print(f"cooperating-pair relations resolved: "
          f"{100 * result.resolved_fraction:.0f}% "
          f"(correct: {100 * correct:.0f}%)")
    good_positions = {p: i for i, p
                      in enumerate(helper.scheme.good_indices)}
    good_ok = sum(bit == key[good_positions[p]]
                  for p, bit in result.good_bits.items())
    print(f"masking good-pair bits recovered absolutely: "
          f"{good_ok}/{len(result.good_bits)} correct "
          f"(free, from the public constraint "
          f"r_coop = r_good XOR r_assist)")


if __name__ == "__main__":
    main()
