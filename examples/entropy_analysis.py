"""Entropy and reliability analysis of the simulated RO PUF population.

Reproduces the paper's §II-III background quantitatively: the
``log2(N!)`` entropy budget, the Fig. 2 decomposition of the frequency
map into systematic trend and random roughness, population uniqueness
(inter-device distance) and reliability (intra-device distance), and
the §V-E entropy-packing residue.

Run:  python examples/entropy_analysis.py
"""

import numpy as np

from repro.analysis import (
    bit_bias,
    inter_device_distances,
    intra_device_distances,
    pairwise_comparisons,
    permutation_entropy,
)
from repro.distiller import EntropyDistiller
from repro.grouping import packing_loss_bits
from repro.keygen import DistillerPairingKeyGen, ReconstructionFailure
from repro.puf import DAC13_PARAMS, ROArray, ROArrayParams
from repro._rng import spawn


def main() -> None:
    # -- entropy budget ---------------------------------------------------
    print("=== entropy budget (paper §II) ===")
    for n in (40, 128, 512):
        print(f"  N={n:4d}: {pairwise_comparisons(n):7d} raw pairwise "
              f"bits, but only {permutation_entropy(n):8.1f} bits of "
              f"true entropy")

    # -- Fig. 2 decomposition ----------------------------------------------
    print("\n=== frequency-map decomposition (paper Fig. 2) ===")
    array = ROArray(DAC13_PARAMS, rng=3)
    freqs = array.true_frequencies()
    for degree in (1, 2, 3):
        distiller = EntropyDistiller(degree)
        explained = distiller.variance_explained(array.x, array.y,
                                                 freqs)
        print(f"  degree {degree}: systematic trend explains "
              f"{100 * explained:.1f}% of frequency variance")

    # -- population statistics ----------------------------------------------
    print("\n=== population statistics (12 devices, 4x10 arrays) ===")
    params = ROArrayParams(rows=4, cols=10)
    keygen = DistillerPairingKeyGen(4, 10,
                                    pairing_mode="neighbor-disjoint")
    keys = []
    intra = []
    for child in spawn(99, 12):
        device = ROArray(params, rng=child)
        helper, key = keygen.enroll(device, rng=child)
        keys.append(key)
        reads = []
        for _ in range(5):
            try:
                reads.append(keygen.reconstruct(device, helper))
            except ReconstructionFailure:
                pass
        if reads:
            intra.extend(intra_device_distances(key, np.stack(reads)))
    keys = np.stack(keys)
    inter = inter_device_distances(keys)
    print(f"  inter-device fractional HD: {inter.mean():.3f} "
          f"(ideal 0.5)")
    print(f"  intra-device fractional HD: {np.mean(intra):.4f} "
          f"(ideal 0)")
    print(f"  mean bit bias: {bit_bias(keys).mean():.3f} (ideal 0.5)")

    # -- packing residue ----------------------------------------------------
    print("\n=== entropy-packing residue (paper §V-E) ===")
    for sizes in ([2] * 10, [4] * 5, [8, 8, 4]):
        loss = packing_loss_bits(sizes)
        print(f"  group sizes {sizes}: {loss:.2f} bits of residual "
              f"non-uniformity after packing")


if __name__ == "__main__":
    main()
