"""§VII-C walkthrough: helper-data formats decide between safe and broken.

Demonstrates, with zero device queries, the paper's two storage-format
pitfalls — sorted pair order for sequential pairing and construction
order for grouping helper data — and contrasts the fuzzy-extractor
reference solution whose helper manipulation carries no secret-dependent
signal.

Run:  python examples/helper_data_formats.py
"""

import numpy as np

from repro.core import HelperDataOracle
from repro.grouping import (
    GroupingScheme,
    kendall_encode,
    order_from_frequencies,
)
from repro.keygen import FuzzyExtractorKeyGen, SequentialPairingKeyGen
from repro.puf import ROArray, ROArrayParams
from repro.puf.measurement import enroll_frequencies


def main() -> None:
    array = ROArray(ROArrayParams(rows=8, cols=16), rng=5)

    # -- pitfall 1: sorted pair storage ---------------------------------
    print("=== sequential pairing: pair-index storage order ===")
    for order in ("sorted", "randomized"):
        keygen = SequentialPairingKeyGen(threshold=300e3,
                                         storage_order=order)
        _, key = keygen.enroll(array, rng=1)
        ones = key.mean()
        print(f"  {order:<11} storage: fraction of 1-bits = {ones:.2f}"
              + ("  <- full key public, zero queries!"
                 if ones == 1.0 else ""))

    # -- pitfall 2: construction-order group storage ---------------------
    print("\n=== grouping helper: member storage order ===")
    freqs = enroll_frequencies(array, 9, rng=2)
    for order in ("construction", "sorted"):
        helper = GroupingScheme(120e3, storage_order=order).enroll(freqs)
        stream = np.concatenate([
            kendall_encode(order_from_frequencies(freqs[list(group)]))
            for group in helper.groups])
        # Read-only attacker predicts the all-zeros Kendall stream
        # (stored order == frequency order <=> no discordant pairs).
        predicted = float(np.mean(stream == 0))
        print(f"  {order:<13} storage: {100 * predicted:.0f}% of "
              f"Kendall bits predictable from the group map alone"
              + ("  <- the whole ranking is public!"
                 if predicted == 1.0 else ""))

    # -- the reference solution ------------------------------------------
    print("\n=== fuzzy extractor (paper Fig. 7): no per-bit channel ===")
    keygen = FuzzyExtractorKeyGen(8, 16, out_bits=64)
    helper, _ = keygen.enroll(array, rng=3)
    oracle = HelperDataOracle(array, keygen)
    rates = []
    for position in (0, 20, 40, 60):
        payload = helper.extractor.sketch.payload.copy()
        payload[position] ^= 1
        manipulated = helper.with_extractor(
            helper.extractor.with_sketch(
                helper.extractor.sketch.with_payload(payload)))
        rates.append(oracle.failure_rate(manipulated, 12))
    print(f"  failure rate after flipping helper bit 0/20/40/60: "
          f"{[f'{r:.2f}' for r in rates]}")
    print("  -> identical failures regardless of secret bit values: "
          "the §VI statistical channel does not exist here.")


if __name__ == "__main__":
    main()
