"""Fig. 6a walkthrough: full key recovery on the group-based RO PUF.

Reproduces the paper's §VI-C illustration on the 4x10 array: steep
quadratic polynomial injection into the entropy distiller, group
repartitioning into attacker-determined pairs, and per-hypothesis
reprogramming of ECC redundancy + key commitment.  Shows intermediate
artifacts (injected surface, forced pairing, per-group comparison sort)
before running the complete attack.

Run:  python examples/attack_group_based.py
"""

import numpy as np

from repro.core import (
    GroupBasedAttack,
    HelperDataOracle,
    symmetric_quadratic,
)
from repro.keygen import GroupBasedKeyGen
from repro.puf import FIG6_PARAMS, ROArray


def main() -> None:
    array = ROArray(FIG6_PARAMS, rng=77)
    keygen = GroupBasedKeyGen(distiller_degree=2, group_threshold=120e3)
    helper, key = keygen.enroll(array, rng=7)

    print("=== the device under attack ===")
    print(f"array: 4 x 10; groups (sizes): {helper.grouping.sizes}")
    print(f"key: {key.size} bits (entropy-packed Kendall codes)")
    print(f"public helper data: {helper.distiller.coefficients.size} "
          f"polynomial coefficients, group map, "
          f"{helper.sketch.payload.size} ECC bits, key commitment")

    # -- the injection payload, as in Fig. 6a ---------------------------
    group = helper.grouping.groups[0]
    u, v = group[0], group[1]
    payload = symmetric_quadratic(
        (u % 10, u // 10), (v % 10, v // 10), rows=4, steepness=1e12)
    print(f"\n=== isolating oscillators {u} and {v} "
          f"(group 0 members) ===")
    print(f"injected Q(u) = {payload(float(u % 10), float(u // 10)):.3e}"
          f" == Q(v) = {payload(float(v % 10), float(v // 10)):.3e}")
    xs = np.arange(40) % 10
    ys = np.arange(40) // 10
    values = payload(xs.astype(float), ys.astype(float))
    print(f"injected range across the array: "
          f"[{values.min():.2e}, {values.max():.2e}] Hz "
          f"(random variation sigma: "
          f"{FIG6_PARAMS.sigma_process:.1e} Hz)")

    # -- one oracle-driven comparison ------------------------------------
    oracle = HelperDataOracle(array, keygen)
    attack = GroupBasedAttack(oracle, keygen, helper, rows=4, cols=10)
    faster = attack.compare_ros(u, v)
    print(f"\nhypothesis test says residual({u}) > residual({v}): "
          f"{faster}  [{oracle.queries} queries so far]")

    # -- the full attack -------------------------------------------------
    result = attack.run()
    print("\n=== full attack ===")
    print(f"comparisons: {result.comparisons} "
          f"(binary insertion sort per group)")
    print(f"oracle queries: {result.queries} "
          f"({result.queries / key.size:.1f} per key bit)")
    print(f"recovered group orders: {result.orders[:3]} ...")
    print(f"key recovered exactly: {np.array_equal(result.key, key)}")
    print(f"public commitment confirms: {result.confirmed}")


if __name__ == "__main__":
    main()
