#!/usr/bin/env python
"""Diff pytest-benchmark reports and flag regressions or drift.

Pairwise mode (default)::

    python tools/bench_compare.py BASELINE.json CURRENT.json
        [--threshold 0.20] [--fail-on-regression] [--fail-over PCT]

Benchmarks are matched by ``fullname`` and compared on ``stats.mean``.
A benchmark whose mean grew by more than ``--threshold`` (fractional,
default 20%) is flagged as a regression; new and vanished benchmarks
are listed informationally.  The exit code stays 0 — CI treats the
report as a non-blocking warning — unless ``--fail-on-regression`` is
passed, or ``--fail-over PCT`` is given and some mean regressed by
more than *PCT* percent.  ``--fail-over`` additionally emits GitHub
workflow ``::warning::`` commands for the offending benchmarks, so a
gross regression annotates the job even when the CI step itself is
non-blocking (``continue-on-error``).

Trajectory mode::

    python tools/bench_compare.py --trajectory [BENCH_*.json ...]
        [--bench-report REPORT.json ...]
        [--threshold 0.20] [--fail-over PCT]

Consumes the repo-root ``BENCH_*.json`` longitudinal summaries written
by ``repro warehouse run --summary`` (an append-only ``history`` array,
one entry per landed commit) and prints the commit-over-commit
trajectory of every benchmark and security outcome.  Drift on the
newest entry — a mean moving past the threshold, or *any* change in a
deterministic security outcome — is annotated with ``::warning::``
commands; ``--fail-over`` turns perf drift beyond PCT percent into a
non-zero exit.  With no files given, ``BENCH_*.json`` in the current
directory is globbed.

``--bench-report`` (repeatable) folds pairwise pytest-benchmark
artifacts into the same longitudinal view: the given reports become
one synthetic history — one entry per report, in argument order —
rendered and drift-checked alongside the committed summaries.  Passing
a CI baseline artifact followed by the current run's report therefore
reuses the trajectory drift machinery (annotations, ``--fail-over``)
for the pairwise comparison, without touching any ``BENCH_*.json``.

Malformed input is a loud, distinct failure: unreadable or non-JSON
report files exit 2 with a clear message, and benchmarks lacking a
usable ``stats.mean`` are warned about and counted instead of being
dropped silently.

Bench timings on shared CI runners are noisy; the threshold is
deliberately generous and the tool is a tripwire for order-of-magnitude
mistakes (a vectorized path silently falling back to a scalar loop),
not a precision measurement.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple


def load_report(path: Path) -> Tuple[Dict[str, float], int]:
    """Load one pytest-benchmark report.

    Returns ``(means, dropped)``: benchmark fullname → mean seconds,
    plus the count of benchmark entries that had to be skipped for a
    missing, non-numeric or non-positive ``stats.mean`` (each skip is
    warned about individually).  Raises :class:`ValueError` when the
    file is unreadable, not JSON, or not shaped like a report.
    """
    try:
        with path.open(encoding="utf-8") as handle:
            report = json.load(handle)
    except OSError as error:
        raise ValueError(f"cannot read {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise ValueError(f"{path} is not valid JSON: {error}") \
            from error
    if not isinstance(report, dict):
        raise ValueError(f"{path} is not a benchmark report "
                         f"(top level is {type(report).__name__}, "
                         f"expected object)")
    benchmarks = report.get("benchmarks", [])
    if not isinstance(benchmarks, list):
        raise ValueError(f"{path}: 'benchmarks' is not a list")
    means: Dict[str, float] = {}
    dropped = 0
    for index, bench in enumerate(benchmarks):
        if not isinstance(bench, dict):
            dropped += 1
            print(f"bench-compare: WARNING {path} benchmarks[{index}] "
                  f"is not an object; skipped", file=sys.stderr)
            continue
        name = bench.get("fullname") or bench.get("name")
        stats = bench.get("stats")
        mean = stats.get("mean") if isinstance(stats, dict) else None
        if not name:
            dropped += 1
            print(f"bench-compare: WARNING {path} benchmarks[{index}] "
                  f"has no name; skipped", file=sys.stderr)
            continue
        if not isinstance(mean, (int, float)) \
                or isinstance(mean, bool) or mean <= 0:
            dropped += 1
            print(f"bench-compare: WARNING {path} benchmark "
                  f"{name!r} has no usable stats.mean "
                  f"(got {mean!r}); skipped", file=sys.stderr)
            continue
        means[str(name)] = float(mean)
    if dropped:
        print(f"bench-compare: WARNING {path}: skipped {dropped} "
              f"benchmark(s) with missing or zero stats.mean",
              file=sys.stderr)
    return means, dropped


def load_means(path: Path) -> Dict[str, float]:
    """Map benchmark fullname → mean seconds for one report file."""
    return load_report(path)[0]


def compare(baseline: Dict[str, float], current: Dict[str, float],
            threshold: float
            ) -> Tuple[List[str], List[Tuple[str, float, float, float]]]:
    """Return ``(report_lines, regressions)`` for two runs.

    Each regression is ``(name, old_mean, new_mean, change_pct)``.
    """
    lines: List[str] = []
    regressions: List[Tuple[str, float, float, float]] = []
    for name in sorted(set(baseline) | set(current)):
        old = baseline.get(name)
        new = current.get(name)
        if old is None:
            lines.append(f"  NEW       {name}: {new:.3f}s")
            continue
        if new is None:
            lines.append(f"  VANISHED  {name} (was {old:.3f}s)")
            continue
        ratio = new / old
        change = (ratio - 1.0) * 100.0
        label = "ok"
        if ratio > 1.0 + threshold:
            label = "REGRESSION"
            regressions.append((name, old, new, change))
        elif ratio < 1.0 - threshold:
            label = "improved"
        lines.append(f"  {label:<11}{name}: {old:.3f}s -> {new:.3f}s "
                     f"({change:+.0f}%)")
    return lines, regressions


def _build_trajectory_report(paths: List[Path], threshold: float):
    """Import the warehouse trajectory engine and build the report.

    The tool runs both installed (``pip install -e .``) and straight
    from a checkout; the fallback puts ``src/`` on ``sys.path`` so CI
    does not need the package installed to render the trajectory.
    """
    try:
        from repro.warehouse.trajectory import build_report
    except ImportError:
        src = Path(__file__).resolve().parent.parent / "src"
        if not (src / "repro").is_dir():
            raise
        sys.path.insert(0, str(src))
        from repro.warehouse.trajectory import build_report
    return build_report(paths, threshold=threshold)


def fold_bench_reports(paths: List[Path]) -> Dict[str, object]:
    """Synthesize one summary payload from pairwise bench reports.

    Each pytest-benchmark artifact becomes one history entry (in
    argument order, tagged by file stem), so the trajectory renderer
    applies its usual newest-vs-previous drift detection across the
    given reports.  Raises :class:`ValueError` on malformed reports.
    """
    history = []
    for sequence, path in enumerate(paths, start=1):
        means, _ = load_report(path)
        history.append({
            "sequence": sequence,
            "commit": path.stem,
            "benchmarks": {name: {"mean": mean}
                           for name, mean in sorted(means.items())},
            "security": {},
        })
    return {"schema_version": 1, "label": "bench-reports",
            "history": history}


def run_trajectory(paths: List[Path], threshold: float,
                   fail_over: float = None,
                   bench_reports: List[Path] = None) -> int:
    """Trajectory mode body: render histories, annotate drift."""
    bench_reports = bench_reports or []
    if not paths and not bench_reports:
        paths = sorted(Path.cwd().glob("BENCH_*.json"))
    if not paths and not bench_reports:
        print("bench-compare: no BENCH_*.json summaries found; "
              "nothing to render")
        return 0
    missing = [path for path in [*paths, *bench_reports]
               if not path.exists()]
    if missing:
        for path in missing:
            print(f"bench-compare: no such file: {path}",
                  file=sys.stderr)
        return 2
    sources: List[object] = list(paths)
    try:
        if bench_reports:
            sources.append(fold_bench_reports(bench_reports))
        report = _build_trajectory_report(sources, threshold)
    except Exception as error:
        print(f"bench-compare: malformed summary: {error}",
              file=sys.stderr)
        return 2
    shown = [str(p) for p in paths]
    if bench_reports:
        folded_names = ", ".join(str(p) for p in bench_reports)
        shown.append(f"bench-reports({folded_names})")
    print(f"bench-compare: trajectory over "
          f"{', '.join(shown)} "
          f"(threshold {threshold:.0%})")
    for line in report.lines:
        print(line)
    if not report.drifts:
        print("\nno drift on the newest entry")
        return 0
    print(f"\n{len(report.perf_drifts)} perf drift(s), "
          f"{len(report.security_drifts)} security drift(s) on the "
          f"newest entry:")
    for drift in report.drifts:
        print(f"  {drift.describe()}")
        kind = ("Security drift" if drift in report.security_drifts
                else "Benchmark drift")
        print(f"::warning title={kind}::{drift.describe()}")
    if fail_over is not None:
        gross = [drift for drift in report.perf_drifts
                 if drift.change_pct > fail_over]
        if gross:
            return 1
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("reports", type=Path, nargs="*",
                        help="pairwise mode: BASELINE.json "
                             "CURRENT.json; trajectory mode: "
                             "BENCH_*.json summaries (default: glob)")
    parser.add_argument("--trajectory", action="store_true",
                        help="render longitudinal BENCH_*.json "
                             "histories instead of a pairwise diff")
    parser.add_argument("--bench-report", type=Path,
                        action="append", default=None,
                        metavar="REPORT.json",
                        help="trajectory mode: fold this pairwise "
                             "pytest-benchmark artifact into the "
                             "longitudinal view as one synthetic "
                             "history entry (repeatable, rendered "
                             "in argument order)")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="fractional slowdown that counts as a "
                             "regression (default 0.20 = 20%%)")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit non-zero when regressions are found "
                             "(default: warn only)")
    parser.add_argument("--fail-over", type=float, default=None,
                        metavar="PCT",
                        help="exit non-zero and emit GitHub ::warning:: "
                             "annotations when some mean regressed by "
                             "more than PCT percent (e.g. 50)")
    args = parser.parse_args(argv)
    if args.threshold <= 0:
        parser.error("--threshold must be positive")
    if args.fail_over is not None and args.fail_over <= 0:
        parser.error("--fail-over must be positive")

    if args.bench_report and not args.trajectory:
        parser.error("--bench-report is only meaningful with "
                     "--trajectory")
    if args.trajectory:
        return run_trajectory(list(args.reports), args.threshold,
                              args.fail_over,
                              bench_reports=args.bench_report)

    if len(args.reports) != 2:
        parser.error("pairwise mode takes exactly two report files "
                     "(BASELINE.json CURRENT.json)")
    try:
        baseline, dropped_base = load_report(args.reports[0])
        current, dropped_cur = load_report(args.reports[1])
    except ValueError as error:
        print(f"bench-compare: {error}", file=sys.stderr)
        return 2
    if not baseline:
        print(f"bench-compare: no usable benchmarks in "
              f"{args.reports[0]} ({dropped_base} skipped); "
              f"nothing to compare")
        return 0
    lines, regressions = compare(baseline, current, args.threshold)
    print(f"bench-compare: {args.reports[0]} -> {args.reports[1]} "
          f"(threshold {args.threshold:.0%})")
    for line in lines:
        print(line)
    if dropped_base or dropped_cur:
        print(f"\n{dropped_base + dropped_cur} benchmark(s) skipped "
              f"for missing or zero stats.mean "
              f"({dropped_base} baseline, {dropped_cur} current)")
    if not regressions:
        print("\nno regressions above threshold")
        return 0
    print(f"\n{len(regressions)} regression(s) above "
          f"{args.threshold:.0%}:")
    for name, old, new, change in regressions:
        print(f"  {name}: {old:.3f}s -> {new:.3f}s ({change:+.0f}%)")
    failed = bool(args.fail_on_regression)
    if args.fail_over is not None:
        gross = [entry for entry in regressions
                 if entry[3] > args.fail_over]
        for name, old, new, change in gross:
            # GitHub workflow command: annotates the job even when the
            # step itself is non-blocking (continue-on-error).
            print(f"::warning title=Benchmark regression::{name} mean "
                  f"{old:.3f}s -> {new:.3f}s ({change:+.0f}%, over "
                  f"the {args.fail_over:.0f}% tripwire)")
        failed = failed or bool(gross)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
