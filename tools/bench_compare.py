#!/usr/bin/env python
"""Diff two pytest-benchmark JSON reports and flag regressions.

Usage::

    python tools/bench_compare.py BASELINE.json CURRENT.json
        [--threshold 0.20] [--fail-on-regression] [--fail-over PCT]

Benchmarks are matched by ``fullname`` and compared on ``stats.mean``.
A benchmark whose mean grew by more than ``--threshold`` (fractional,
default 20%) is flagged as a regression; new and vanished benchmarks
are listed informationally.  The exit code stays 0 — CI treats the
report as a non-blocking warning — unless ``--fail-on-regression`` is
passed, or ``--fail-over PCT`` is given and some mean regressed by
more than *PCT* percent.  ``--fail-over`` additionally emits GitHub
workflow ``::warning::`` commands for the offending benchmarks, so a
gross regression annotates the job even when the CI step itself is
non-blocking (``continue-on-error``).

Bench timings on shared CI runners are noisy; the threshold is
deliberately generous and the tool is a tripwire for order-of-magnitude
mistakes (a vectorized path silently falling back to a scalar loop),
not a precision measurement.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple


def load_means(path: Path) -> Dict[str, float]:
    """Map benchmark fullname → mean seconds for one report file."""
    with path.open(encoding="utf-8") as handle:
        report = json.load(handle)
    means: Dict[str, float] = {}
    for bench in report.get("benchmarks", []):
        name = bench.get("fullname") or bench.get("name")
        stats = bench.get("stats") or {}
        mean = stats.get("mean")
        if name and isinstance(mean, (int, float)) and mean > 0:
            means[str(name)] = float(mean)
    return means


def compare(baseline: Dict[str, float], current: Dict[str, float],
            threshold: float
            ) -> Tuple[List[str], List[Tuple[str, float, float, float]]]:
    """Return ``(report_lines, regressions)`` for two runs.

    Each regression is ``(name, old_mean, new_mean, change_pct)``.
    """
    lines: List[str] = []
    regressions: List[Tuple[str, float, float, float]] = []
    for name in sorted(set(baseline) | set(current)):
        old = baseline.get(name)
        new = current.get(name)
        if old is None:
            lines.append(f"  NEW       {name}: {new:.3f}s")
            continue
        if new is None:
            lines.append(f"  VANISHED  {name} (was {old:.3f}s)")
            continue
        ratio = new / old
        change = (ratio - 1.0) * 100.0
        label = "ok"
        if ratio > 1.0 + threshold:
            label = "REGRESSION"
            regressions.append((name, old, new, change))
        elif ratio < 1.0 - threshold:
            label = "improved"
        lines.append(f"  {label:<11}{name}: {old:.3f}s -> {new:.3f}s "
                     f"({change:+.0f}%)")
    return lines, regressions


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path,
                        help="bench-report JSON of the reference run")
    parser.add_argument("current", type=Path,
                        help="bench-report JSON of this run")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="fractional slowdown that counts as a "
                             "regression (default 0.20 = 20%%)")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit non-zero when regressions are found "
                             "(default: warn only)")
    parser.add_argument("--fail-over", type=float, default=None,
                        metavar="PCT",
                        help="exit non-zero and emit GitHub ::warning:: "
                             "annotations when some mean regressed by "
                             "more than PCT percent (e.g. 50)")
    args = parser.parse_args(argv)
    if args.threshold <= 0:
        parser.error("--threshold must be positive")
    if args.fail_over is not None and args.fail_over <= 0:
        parser.error("--fail-over must be positive")

    baseline = load_means(args.baseline)
    current = load_means(args.current)
    if not baseline:
        print(f"bench-compare: no benchmarks in {args.baseline}; "
              "nothing to compare")
        return 0
    lines, regressions = compare(baseline, current, args.threshold)
    print(f"bench-compare: {args.baseline} -> {args.current} "
          f"(threshold {args.threshold:.0%})")
    for line in lines:
        print(line)
    if not regressions:
        print("\nno regressions above threshold")
        return 0
    print(f"\n{len(regressions)} regression(s) above "
          f"{args.threshold:.0%}:")
    for name, old, new, change in regressions:
        print(f"  {name}: {old:.3f}s -> {new:.3f}s ({change:+.0f}%)")
    failed = bool(args.fail_on_regression)
    if args.fail_over is not None:
        gross = [entry for entry in regressions
                 if entry[3] > args.fail_over]
        for name, old, new, change in gross:
            # GitHub workflow command: annotates the job even when the
            # step itself is non-blocking (continue-on-error).
            print(f"::warning title=Benchmark regression::{name} mean "
                  f"{old:.3f}s -> {new:.3f}s ({change:+.0f}%, over "
                  f"the {args.fail_over:.0f}% tripwire)")
        failed = failed or bool(gross)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
