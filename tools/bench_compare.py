#!/usr/bin/env python
"""Diff two pytest-benchmark JSON reports and flag regressions.

Usage::

    python tools/bench_compare.py BASELINE.json CURRENT.json
        [--threshold 0.20] [--fail-on-regression]

Benchmarks are matched by ``fullname`` and compared on ``stats.mean``.
A benchmark whose mean grew by more than ``--threshold`` (fractional,
default 20%) is flagged as a regression; new and vanished benchmarks
are listed informationally.  The exit code stays 0 — CI treats the
report as a non-blocking warning — unless ``--fail-on-regression`` is
passed.

Bench timings on shared CI runners are noisy; the threshold is
deliberately generous and the tool is a tripwire for order-of-magnitude
mistakes (a vectorized path silently falling back to a scalar loop),
not a precision measurement.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple


def load_means(path: Path) -> Dict[str, float]:
    """Map benchmark fullname → mean seconds for one report file."""
    with path.open(encoding="utf-8") as handle:
        report = json.load(handle)
    means: Dict[str, float] = {}
    for bench in report.get("benchmarks", []):
        name = bench.get("fullname") or bench.get("name")
        stats = bench.get("stats") or {}
        mean = stats.get("mean")
        if name and isinstance(mean, (int, float)) and mean > 0:
            means[str(name)] = float(mean)
    return means


def compare(baseline: Dict[str, float], current: Dict[str, float],
            threshold: float) -> Tuple[List[str], List[str]]:
    """Return ``(report_lines, regression_lines)`` for two runs."""
    lines: List[str] = []
    regressions: List[str] = []
    for name in sorted(set(baseline) | set(current)):
        old = baseline.get(name)
        new = current.get(name)
        if old is None:
            lines.append(f"  NEW       {name}: {new:.3f}s")
            continue
        if new is None:
            lines.append(f"  VANISHED  {name} (was {old:.3f}s)")
            continue
        ratio = new / old
        change = (ratio - 1.0) * 100.0
        label = "ok"
        if ratio > 1.0 + threshold:
            label = "REGRESSION"
            regressions.append(
                f"{name}: {old:.3f}s -> {new:.3f}s ({change:+.0f}%)")
        elif ratio < 1.0 - threshold:
            label = "improved"
        lines.append(f"  {label:<11}{name}: {old:.3f}s -> {new:.3f}s "
                     f"({change:+.0f}%)")
    return lines, regressions


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path,
                        help="bench-report JSON of the reference run")
    parser.add_argument("current", type=Path,
                        help="bench-report JSON of this run")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="fractional slowdown that counts as a "
                             "regression (default 0.20 = 20%%)")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit non-zero when regressions are found "
                             "(default: warn only)")
    args = parser.parse_args(argv)
    if args.threshold <= 0:
        parser.error("--threshold must be positive")

    baseline = load_means(args.baseline)
    current = load_means(args.current)
    if not baseline:
        print(f"bench-compare: no benchmarks in {args.baseline}; "
              "nothing to compare")
        return 0
    lines, regressions = compare(baseline, current, args.threshold)
    print(f"bench-compare: {args.baseline} -> {args.current} "
          f"(threshold {args.threshold:.0%})")
    for line in lines:
        print(line)
    if regressions:
        print(f"\n{len(regressions)} regression(s) above "
              f"{args.threshold:.0%}:")
        for line in regressions:
            print(f"  {line}")
        return 1 if args.fail_on_regression else 0
    print("\nno regressions above threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
