#!/usr/bin/env python
"""Documentation gates for CI (stdlib only).

Two checks, both fatal on failure:

1. **Intra-repo links** — every relative markdown link in the repo's
   ``*.md`` files must resolve to an existing file (anchors are
   stripped; ``http(s)``/``mailto`` links are ignored).
2. **Export docstrings** — every name exported through an ``__all__``
   list under ``src/repro`` must resolve to an object carrying a
   docstring, and every public module must have one.

Run from the repository root: ``python tools/check_docs.py``.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SOURCE_ROOT = ROOT / "src" / "repro"
SKIP_DIRS = {".git", ".hypothesis", ".benchmarks", "__pycache__",
             ".pytest_cache"}
#: Scraped external reference material, not authored documentation.
SKIP_FILES = {"PAPERS.md", "SNIPPETS.md"}

#: Inline markdown links: [text](target).  Images share the syntax.
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def iter_markdown_files(root: Path = ROOT):
    """All tracked markdown files under *root* (default: the repo)."""
    for path in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.parts):
            continue
        if path.name in SKIP_FILES:
            continue
        yield path


def check_links(root: Path = ROOT) -> list:
    """Return one error string per broken relative link under *root*."""
    errors = []
    for path in iter_markdown_files(root):
        for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), 1):
            for target in LINK_PATTERN.findall(line):
                if target.startswith(("http://", "https://",
                                      "mailto:", "#")):
                    continue
                resolved = (path.parent
                            / target.split("#", 1)[0]).resolve()
                if not resolved.is_relative_to(root):
                    # Escapes the repository: a forge-relative URL
                    # (e.g. the CI badge), not a repo file reference.
                    continue
                if not resolved.exists():
                    errors.append(
                        f"{path.relative_to(root)}:{lineno}: broken "
                        f"link -> {target}")
    return errors


def _docstring_index(tree: ast.Module) -> dict:
    """Map top-level names of a module to ``has_docstring`` booleans.

    Imported names map to ``None`` (resolved in their home module, not
    here); assignments count as documented, matching pydocstyle, which
    has no rule for attribute docstrings.
    """
    index = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            index[node.name] = ast.get_docstring(node) is not None
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                index[alias.asname or alias.name.split(".")[0]] = None
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    index[target.id] = True
        elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name):
            index[node.target.id] = True
    return index


def _exported_names(tree: ast.Module):
    """The literal ``__all__`` entries of a module, if any."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) \
                        and target.id == "__all__":
                    try:
                        return [str(name) for name
                                in ast.literal_eval(node.value)]
                    except ValueError:
                        return []
    return []


def check_export_docstrings(root: Path = ROOT,
                            source_root: Path = SOURCE_ROOT) -> list:
    """Return one error per undocumented module or ``__all__`` export.

    Exports are resolved through the import graph: a name re-exported
    by a package ``__init__`` is looked up in the module that defines
    it.  *root* anchors the reported relative paths; *source_root* is
    the package tree to scan (both default to this repository).
    """
    errors = []
    trees = {}
    for path in sorted(source_root.rglob("*.py")):
        trees[path] = ast.parse(path.read_text(encoding="utf-8"))
    # Definition sites across the package, for re-export resolution.
    defined = {}
    for path, tree in trees.items():
        for name, documented in _docstring_index(tree).items():
            if documented is not None:
                defined.setdefault(name, documented)
    for path, tree in trees.items():
        relative = path.relative_to(root)
        if not path.name.startswith("_") or path.name == "__init__.py":
            if ast.get_docstring(tree) is None:
                errors.append(f"{relative}: missing module docstring")
        local = _docstring_index(tree)
        for name in _exported_names(tree):
            documented = local.get(name)
            if documented is None:
                documented = defined.get(name)
            if documented is None:
                # Not a def/class anywhere (e.g. a constant): fine.
                continue
            if not documented:
                errors.append(f"{relative}: export '{name}' has no "
                              f"docstring")
    return errors


def main() -> int:
    """Run both gates; print findings and return a process exit code."""
    errors = check_links() + check_export_docstrings()
    for error in errors:
        print(error)
    if errors:
        print(f"\n{len(errors)} documentation problem(s) found.")
        return 1
    print("docs ok: links resolve, exports documented.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
