"""Equivalence tests: the batched oracle against sequential simulation.

Every test manufactures *twin devices* — two ``ROArray`` instances from
the same seed, hence identical static randomness and identical noise
streams — drives one through the scalar ``HelperDataOracle`` and the
other through ``BatchOracle``, and asserts the outcomes match
query-for-query, not merely in distribution.
"""

import numpy as np
import pytest

from repro.core import BatchOracle, HelperDataOracle
from repro.core.injection import flip_orientations
from repro.keygen import (
    DistillerPairingKeyGen,
    FuzzyExtractorKeyGen,
    GroupBasedKeyGen,
    HardenedGroupBasedKeyGen,
    OperatingPoint,
    SequentialPairingKeyGen,
    TempAwareKeyGen,
)
from repro.keygen.sequential import SequentialKeyHelper
from repro.pairing import SequentialPairingHelper
from repro.puf import ROArray, ROArrayParams

NOISY = ROArrayParams(rows=8, cols=16, sigma_noise=300e3)
SMALL = ROArrayParams(rows=4, cols=10)


def twins(params, seed):
    return ROArray(params, rng=seed), ROArray(params, rng=seed)


def enroll_twins(make_keygen, params, device_seed, enroll_seed):
    seq_array, batch_array = twins(params, device_seed)
    keygen = make_keygen()
    helper_seq, key = keygen.enroll(seq_array, rng=enroll_seed)
    helper_batch, key_batch = keygen.enroll(batch_array, rng=enroll_seed)
    np.testing.assert_array_equal(key, key_batch)
    return seq_array, batch_array, keygen, helper_seq, helper_batch, key


class TestQueryForQueryEquivalence:
    def check(self, make_keygen, params=NOISY, manipulate=None,
              queries=200):
        seq_array, batch_array, keygen, h_seq, h_batch, _ = \
            enroll_twins(make_keygen, params, device_seed=77,
                         enroll_seed=5)
        if manipulate is not None:
            h_seq, h_batch = manipulate(h_seq), manipulate(h_batch)
        sequential = HelperDataOracle(seq_array, keygen)
        batched = BatchOracle(batch_array, keygen)
        expected = np.array([sequential.query(h_seq)
                             for _ in range(queries)])
        observed = batched.query_block(h_batch, queries)
        np.testing.assert_array_equal(expected, observed)
        assert sequential.queries == batched.queries == queries

    def test_sequential_scheme_nominal(self):
        self.check(lambda: SequentialPairingKeyGen(threshold=250e3))

    def test_sequential_scheme_boundary_regimes(self):
        # At, below and above the correction radius the failure rate
        # moves from ~0 to ~1; equivalence must hold in every regime.
        for flips in (2, 3, 4):
            self.check(
                lambda: SequentialPairingKeyGen(threshold=250e3),
                manipulate=lambda h, flips=flips: h.with_pairing(
                    flip_orientations(h.pairing,
                                      list(range(1, 1 + flips)))))

    def test_group_based_scheme(self):
        self.check(lambda: GroupBasedKeyGen(distiller_degree=2,
                                            group_threshold=120e3),
                   params=SMALL)

    def test_distiller_masking_scheme(self):
        self.check(lambda: DistillerPairingKeyGen(
            4, 10, pairing_mode="masking", k=5), params=SMALL)

    def test_distiller_neighbor_scheme(self):
        self.check(lambda: DistillerPairingKeyGen(
            4, 10, pairing_mode="neighbor-overlap"), params=SMALL)

    def test_fuzzy_extractor_scheme(self):
        self.check(lambda: FuzzyExtractorKeyGen(8, 16, out_bits=48))

    def test_hardened_scheme_falls_back_row_wise(self):
        # No vectorized evaluator: the generic fallback must still be
        # stream-exact (single measurement per query).
        keygen = HardenedGroupBasedKeyGen(
            rows=4, cols=10, max_polynomial_span=20e6,
            group_threshold=120e3)
        assert keygen.batch_evaluator(
            ROArray(SMALL, rng=1),
            keygen.enroll(ROArray(SMALL, rng=1), rng=2)[0]) is None

    def test_scalar_and_block_queries_interleave(self):
        seq_array, batch_array, keygen, h_seq, h_batch, _ = \
            enroll_twins(lambda: SequentialPairingKeyGen(
                threshold=250e3), NOISY, device_seed=3, enroll_seed=9)
        corrupted_seq = h_seq.with_pairing(
            flip_orientations(h_seq.pairing, [1, 2, 3, 4]))
        corrupted_batch = h_batch.with_pairing(
            flip_orientations(h_batch.pairing, [1, 2, 3, 4]))
        sequential = HelperDataOracle(seq_array, keygen)
        batched = BatchOracle(batch_array, keygen)
        expected = [sequential.query(h_seq) for _ in range(5)]
        expected += [sequential.query(corrupted_seq)
                     for _ in range(40)]
        expected += [sequential.query(h_seq) for _ in range(5)]
        observed = [batched.query(h_batch) for _ in range(5)]
        observed += list(batched.query_block(corrupted_batch, 40))
        observed += [batched.query(h_batch) for _ in range(5)]
        assert expected == [bool(o) for o in observed]

    def test_operating_point_batches(self):
        seq_array, batch_array, keygen, h_seq, h_batch, _ = \
            enroll_twins(lambda: SequentialPairingKeyGen(
                threshold=250e3), NOISY, device_seed=13,
                enroll_seed=2)
        op = OperatingPoint(temperature=60.0)
        sequential = HelperDataOracle(seq_array, keygen)
        batched = BatchOracle(batch_array, keygen)
        expected = np.array([sequential.query(h_seq, op)
                             for _ in range(60)])
        observed = batched.query_block(h_batch, 60, op)
        np.testing.assert_array_equal(expected, observed)


class TestBatchOracleBehaviour:
    @pytest.fixture
    def device(self):
        array = ROArray(NOISY, rng=21)
        keygen = SequentialPairingKeyGen(threshold=250e3)
        helper, key = keygen.enroll(array, rng=1)
        return array, keygen, helper

    def test_failure_rate_counts_queries(self, device):
        array, keygen, helper = device
        oracle = BatchOracle(array, keygen)
        rate = oracle.failure_rate(helper, 50)
        assert 0.0 <= rate <= 1.0
        assert oracle.queries == 50
        oracle.reset_query_count()
        assert oracle.queries == 0

    def test_invalid_counts_rejected(self, device):
        array, keygen, helper = device
        oracle = BatchOracle(array, keygen)
        with pytest.raises(ValueError):
            oracle.query_block(helper, 0)
        with pytest.raises(ValueError):
            oracle.failure_rate(helper, 0)

    def test_unwind_restores_stream_and_counter(self, device):
        array, keygen, helper = device
        oracle = BatchOracle(array, keygen)
        rows = oracle.take_rows(6)
        oracle.untake_rows(rows[2:])
        assert oracle.queries == 2
        # The returned rows must be consumed again, in order.
        again = oracle.take_rows(4)
        np.testing.assert_array_equal(rows[2:], again)

    def test_invalid_pair_list_fails_every_query(self, device):
        array, keygen, helper = device
        reused = helper.pairing.pairs[0]
        corrupt = SequentialKeyHelper(
            SequentialPairingHelper((reused, reused)),
            helper.sketch, helper.key_check)
        oracle = BatchOracle(array, keygen)
        assert not oracle.query_block(corrupt, 10).any()

    def test_stream_position_independent_of_blocking(self, device):
        # Fully-consumed oracles must leave the device stream exactly
        # where sequential queries would, so a *second* oracle (or any
        # later consumer of the device) sees identical noise whatever
        # the earlier blocking pattern was.
        results = []
        for first_blocks in ([40], [7, 13, 20], [1] * 40):
            array = ROArray(NOISY, rng=77)
            keygen = SequentialPairingKeyGen(threshold=250e3)
            helper, _ = keygen.enroll(array, rng=1)
            first = BatchOracle(array, keygen)
            for block in first_blocks:
                first.query_block(helper, block)
            follow_up = BatchOracle(array, keygen)
            results.append(follow_up.query_block(helper, 25))
        for observed in results[1:]:
            np.testing.assert_array_equal(results[0], observed)

    def test_query_blocking_does_not_change_outcomes(self):
        outcomes = []
        for blocks in ([120], [1] * 120, [7, 13, 100], [64, 56]):
            array = ROArray(NOISY, rng=55)
            keygen = SequentialPairingKeyGen(threshold=250e3)
            helper, _ = keygen.enroll(array, rng=4)
            corrupted = helper.with_pairing(
                flip_orientations(helper.pairing, [1, 2, 3]))
            oracle = BatchOracle(array, keygen)
            outcomes.append(np.concatenate(
                [oracle.query_block(corrupted, block)
                 for block in blocks]))
        for observed in outcomes[1:]:
            np.testing.assert_array_equal(outcomes[0], observed)


class TestTempAwareBatch:
    def test_statistical_agreement(self):
        # The sensor read is inherently non-reproducible (fresh
        # entropy per query, as on the scalar path), so temp-aware
        # equivalence is statistical rather than bitwise.
        params = ROArrayParams(rows=8, cols=16, temp_slope_sigma=8e3)
        seq_array, batch_array = twins(params, 7)
        keygen = TempAwareKeyGen(t_min=15, t_max=95, threshold=150e3)
        helper, key = keygen.enroll(seq_array, rng=0)
        helper_b, _ = keygen.enroll(batch_array, rng=0)
        sequential = HelperDataOracle(seq_array, keygen)
        batched = BatchOracle(batch_array, keygen)
        rate_seq = sequential.failure_rate(helper, 80)
        rate_batch = batched.failure_rate(helper_b, 80)
        assert abs(rate_seq - rate_batch) < 0.25


class TestTwoPhaseProtocol:
    """plan → kernel → finalize vs the one-shot reference path."""

    def drive_paths(self, make_keygen, params=NOISY, manipulate=None,
                    queries=120):
        """Twin devices: one-shot reference vs the two-phase driver."""
        seq_array, batch_array, keygen, h_seq, h_batch, _ = \
            enroll_twins(make_keygen, params, device_seed=91,
                         enroll_seed=3)
        if manipulate is not None:
            h_seq, h_batch = manipulate(h_seq), manipulate(h_batch)
        reference = BatchOracle(seq_array, keygen)
        two_phase = BatchOracle(batch_array, keygen)
        expected = reference.evaluate_rows_oneshot(
            h_seq, reference.take_rows(queries))
        observed = two_phase.evaluate_rows(
            h_batch, two_phase.take_rows(queries))
        np.testing.assert_array_equal(expected, observed)
        return expected

    def test_sequential_scheme(self):
        def manipulate(helper):
            return helper.with_pairing(
                flip_orientations(helper.pairing, [1, 2, 3, 4]))

        self.drive_paths(
            lambda: SequentialPairingKeyGen(threshold=250e3),
            manipulate=manipulate)

    def test_group_based_scheme(self):
        self.drive_paths(
            lambda: GroupBasedKeyGen(group_threshold=60e3),
            params=SMALL)

    def test_fuzzy_extractor_scheme(self):
        self.drive_paths(lambda: FuzzyExtractorKeyGen(8, 16, 64))

    def test_plan_declares_kernel_workload(self):
        array = ROArray(NOISY, rng=13)
        keygen = SequentialPairingKeyGen(threshold=250e3)
        helper, _ = keygen.enroll(array, rng=2)
        corrupted = helper.with_pairing(
            flip_orientations(helper.pairing, [1, 2, 3, 4]))
        oracle = BatchOracle(array, keygen)
        plan = oracle.plan_rows(corrupted, oracle.take_rows(60))
        assert plan.pending, "fresh patterns expected on first block"
        assert plan.workload is not None
        assert plan.kernel_key is not None
        outcomes = plan.execute()
        assert outcomes.shape == (60,)
        # Finalize is idempotent and the memo now resolves everything.
        np.testing.assert_array_equal(plan.finalize(None), outcomes)
        follow_up = oracle.plan_rows(corrupted, oracle.take_rows(1))
        assert follow_up.workload is None or not follow_up.pending \
            or follow_up.workload.rows <= 1

    def test_fused_cross_device_matches_per_device(self):
        # Two devices sharing one code geometry: fusing both kernel
        # workloads into one call must match each device's own
        # evaluate_rows bitwise.
        from repro.ecc import design_bch, run_kernels
        from repro.keygen import fixed_code

        provider = fixed_code(design_bch(64, 3))

        def build(seed):
            solo_array, fused_array = twins(NOISY, seed)
            keygen = SequentialPairingKeyGen(threshold=250e3,
                                             code_provider=provider)
            helper, _ = keygen.enroll(solo_array, rng=seed)
            corrupted = helper.with_pairing(
                flip_orientations(helper.pairing, [1, 2, 3, 4]))
            return (BatchOracle(solo_array, keygen),
                    BatchOracle(fused_array, keygen), corrupted)

        devices = [build(seed) for seed in (31, 32, 33)]
        expected = [solo.evaluate_rows(helper, solo.take_rows(40))
                    for solo, _, helper in devices]
        plans = [fused.plan_rows(helper, fused.take_rows(40))
                 for _, fused, helper in devices]
        keys = {plan.kernel_key for plan in plans
                if plan.kernel_key is not None}
        assert len(keys) == 1, "shared code must share the kernel key"
        outputs = run_kernels([plan.workload for plan in plans])
        for plan, output, want in zip(plans, outputs, expected):
            np.testing.assert_array_equal(plan.finalize(output), want)
