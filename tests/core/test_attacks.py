"""End-to-end tests of the four §VI attacks — the paper's main claims."""

import numpy as np
import pytest

from repro.core import (
    DistillerPairingAttack,
    GroupBasedAttack,
    HelperDataOracle,
    SequentialPairingAttack,
    TempAwareAttack,
)
from repro.keygen import (
    DistillerPairingKeyGen,
    GroupBasedKeyGen,
    SequentialPairingKeyGen,
    TempAwareKeyGen,
)


class TestSequentialAttack:
    """Paper §VI-A: full key recovery on sequential pairing."""

    @pytest.fixture
    def setup(self, medium_array):
        keygen = SequentialPairingKeyGen(threshold=300e3)
        helper, key = keygen.enroll(medium_array, rng=1)
        oracle = HelperDataOracle(medium_array, keygen)
        return oracle, keygen, helper, key

    def test_full_key_recovery(self, setup):
        oracle, keygen, helper, key = setup
        result = SequentialPairingAttack(oracle, keygen, helper).run()
        assert result.key is not None
        np.testing.assert_array_equal(result.key, key)

    def test_relations_match_ground_truth(self, setup):
        oracle, keygen, helper, key = setup
        attack = SequentialPairingAttack(oracle, keygen, helper)
        relations, _ = attack.recover_relations()
        np.testing.assert_array_equal(relations, key ^ key[0])

    def test_single_relation_test(self, setup):
        oracle, keygen, helper, key = setup
        attack = SequentialPairingAttack(oracle, keygen, helper)
        relation, outcome = attack.test_relation(5)
        assert relation == int(key[0] ^ key[5])
        assert outcome.queries >= 2

    def test_query_cost_scales_linearly(self, setup):
        oracle, keygen, helper, key = setup
        result = SequentialPairingAttack(oracle, keygen, helper).run()
        # A handful of queries per bit relation, not hundreds.
        assert result.queries < 40 * key.size

    def test_candidates_are_complements(self, setup):
        oracle, keygen, helper, _ = setup
        result = SequentialPairingAttack(oracle, keygen, helper).run()
        first, second = result.candidates
        np.testing.assert_array_equal(first ^ second,
                                      np.ones_like(first))

    def test_attack_without_ecc(self, medium_array):
        # Degenerate t = 0 case: no injection needed, errors observable
        # directly through the key check.
        from repro.keygen import bch_provider

        keygen = SequentialPairingKeyGen(threshold=300e3,
                                         code_provider=bch_provider(0))
        helper, key = keygen.enroll(medium_array, rng=2)
        oracle = HelperDataOracle(medium_array, keygen)
        result = SequentialPairingAttack(oracle, keygen, helper,
                                         injected_errors=0).run()
        assert result.key is not None
        np.testing.assert_array_equal(result.key, key)

    def test_too_few_pairs_rejected(self, medium_array):
        keygen = SequentialPairingKeyGen(threshold=300e3)
        helper, _ = keygen.enroll(medium_array, rng=1)
        single = type(helper)(helper.pairing.__class__(
            helper.pairing.pairs[:1]), helper.sketch, helper.key_check)
        oracle = HelperDataOracle(medium_array, keygen)
        with pytest.raises(ValueError):
            SequentialPairingAttack(oracle, keygen, single)


class TestTempAwareAttack:
    """Paper §VI-B: relations among all cooperating pairs."""

    @pytest.fixture
    def setup(self, thermal_array):
        keygen = TempAwareKeyGen(t_min=-10, t_max=80, threshold=150e3)
        helper, key = keygen.enroll(thermal_array, rng=6)
        oracle = HelperDataOracle(thermal_array, keygen)
        return oracle, keygen, helper, key

    def test_all_cooperating_relations_recovered(self, setup):
        oracle, keygen, helper, key = setup
        result = TempAwareAttack(oracle, keygen, helper).run()
        n_good = len(helper.scheme.good_indices)
        coop_truth = key[n_good:]
        assert result.resolved_fraction == 1.0
        np.testing.assert_array_equal(
            result.coop_relations, coop_truth ^ coop_truth[0])

    def test_good_pair_bits_recovered_absolutely(self, setup):
        oracle, keygen, helper, key = setup
        result = TempAwareAttack(oracle, keygen, helper).run()
        assert result.good_bits, "no free good-pair bits"
        good_positions = {pair: idx for idx, pair
                          in enumerate(helper.scheme.good_indices)}
        for pair_index, bit in result.good_bits.items():
            # The masking constraint r_good = r_coop XOR r_assist hands
            # the attacker the good pair's bit outright — no global
            # unknown survives the XOR of same-component variables.
            assert bit == key[good_positions[pair_index]]

    def test_single_candidate_test(self, setup):
        oracle, keygen, helper, key = setup
        attack = TempAwareAttack(oracle, keygen, helper)
        scheme = helper.scheme
        pair_to_pos = {e.pair_index: i
                       for i, e in enumerate(scheme.cooperation)}
        target = 0
        assist_pos = pair_to_pos[scheme.cooperation[0].assist_index]
        candidate = next(
            i for i in range(len(scheme.cooperation))
            if i not in (target, assist_pos)
            and attack._attack_temperature(target, i) is not None)
        relation, outcome = attack.test_candidate(target, candidate)
        n_good = len(scheme.good_indices)
        coop_truth = key[n_good:]
        assert relation == int(coop_truth[candidate]
                               ^ coop_truth[assist_pos])
        assert outcome.queries >= 2

    def test_unstable_candidate_rejected(self, setup):
        oracle, keygen, helper, _ = setup
        attack = TempAwareAttack(oracle, keygen, helper)
        scheme = helper.scheme
        entry = scheme.cooperation[0]
        inside = (entry.t_low + entry.t_high) / 2
        unstable = next(
            (i for i in range(1, len(scheme.cooperation))
             if not attack._stable_at(i, inside)), None)
        if unstable is None:
            pytest.skip("fixture has no overlapping intervals")
        with pytest.raises(ValueError):
            attack.test_candidate(0, unstable, temperature=inside)


class TestGroupBasedAttack:
    """Paper §VI-C / Fig. 6a: full key recovery on the 4 x 10 array."""

    @pytest.fixture
    def setup(self, small_array):
        keygen = GroupBasedKeyGen(distiller_degree=2,
                                  group_threshold=120e3)
        helper, key = keygen.enroll(small_array, rng=2)
        oracle = HelperDataOracle(small_array, keygen)
        return oracle, keygen, helper, key

    def test_full_key_recovery(self, setup):
        oracle, keygen, helper, key = setup
        attack = GroupBasedAttack(oracle, keygen, helper, 4, 10)
        result = attack.run()
        np.testing.assert_array_equal(result.key, key)
        assert result.confirmed

    def test_single_comparison_matches_residual_order(self, setup,
                                                      small_array):
        oracle, keygen, helper, _ = setup
        attack = GroupBasedAttack(oracle, keygen, helper, 4, 10)
        freqs = small_array.true_frequencies()
        residuals = keygen.distiller.residuals(
            small_array.x, small_array.y, freqs, helper.distiller)
        group = helper.grouping.groups[0]
        u, v = group[0], group[1]
        assert attack.compare_ros(u, v) == (residuals[u] > residuals[v])
        assert attack.compare_ros(v, u) == (residuals[v] > residuals[u])

    def test_comparison_cost_near_g_log_g(self, setup):
        oracle, keygen, helper, _ = setup
        attack = GroupBasedAttack(oracle, keygen, helper, 4, 10)
        result = attack.run()
        import math

        bound = sum(max(1, int(np.ceil(
            sum(math.log2(i + 1) for i in range(1, len(g))))))
            for g in helper.grouping.groups) + len(
                helper.grouping.groups) * 2
        assert result.comparisons <= bound + 10

    def test_recovered_orders_are_permutations(self, setup):
        oracle, keygen, helper, _ = setup
        result = GroupBasedAttack(oracle, keygen, helper, 4, 10).run()
        for order, group in zip(result.orders, helper.grouping.groups):
            assert sorted(order) == list(range(len(group)))


class TestDistillerPairingAttack:
    """Paper §VI-D / Fig. 6b-6c: distiller + pairing schemes."""

    @pytest.mark.parametrize("mode", ["masking", "neighbor-disjoint",
                                      "neighbor-overlap"])
    def test_full_key_recovery(self, small_array, mode):
        keygen = DistillerPairingKeyGen(4, 10, pairing_mode=mode, k=5)
        helper, key = keygen.enroll(small_array, rng=3)
        oracle = HelperDataOracle(small_array, keygen)
        attack = DistillerPairingAttack(oracle, keygen, helper, 4, 10)
        result = attack.run()
        np.testing.assert_array_equal(result.key, key)
        assert result.confirmed

    def test_overlap_mode_needs_joint_hypotheses(self, small_array):
        # Fig. 6c: overlapping chains can leave several bits isolated at
        # once; at least one placement must enumerate > 2 hypotheses.
        keygen = DistillerPairingKeyGen(4, 10,
                                        pairing_mode="neighbor-overlap")
        helper, _ = keygen.enroll(small_array, rng=4)
        oracle = HelperDataOracle(small_array, keygen)
        result = DistillerPairingAttack(oracle, keygen, helper, 4,
                                        10).run()
        assert max(result.hypothesis_rounds) >= 2

    def test_isolation_learns_target(self, small_array):
        keygen = DistillerPairingKeyGen(4, 10, pairing_mode="masking",
                                        k=5)
        helper, key = keygen.enroll(small_array, rng=3)
        oracle = HelperDataOracle(small_array, keygen)
        attack = DistillerPairingAttack(oracle, keygen, helper, 4, 10)
        learned, hypotheses = attack.isolate(0)
        assert 0 in learned
        assert learned[0] == key[0]
        assert hypotheses >= 2

    def test_bad_target_rejected(self, small_array):
        keygen = DistillerPairingKeyGen(4, 10, pairing_mode="masking",
                                        k=5)
        helper, _ = keygen.enroll(small_array, rng=3)
        oracle = HelperDataOracle(small_array, keygen)
        attack = DistillerPairingAttack(oracle, keygen, helper, 4, 10)
        with pytest.raises(ValueError):
            attack.isolate(99)
