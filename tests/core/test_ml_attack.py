"""Attack against maximum-likelihood-decoded reliability layers.

First-order Reed–Muller decoding never *fails* — words at half the
minimum distance resolve deterministically but codeword-dependently —
so the bounded-distance injection calculus of the basic §VI-A attack
does not apply.  These tests cover the online-calibration variant: the
attacker flips candidate injection sets until the failure signature
visibly moves when one guaranteed extra error (an orientation flip of
the anchor itself) is added, then reads each relation against that
calibrated signature.
"""

import numpy as np
import pytest

from repro.core import HelperDataOracle, SequentialPairingAttack
from repro.ecc import BlockwiseCode, ReedMullerCode
from repro.keygen import SequentialPairingKeyGen


def rm_provider(bits):
    inner = ReedMullerCode(5)  # [32, 6], t = 7, ML decoding
    blocks = -(-bits // inner.k)
    return BlockwiseCode(inner, blocks)


@pytest.fixture
def setup(medium_array):
    keygen = SequentialPairingKeyGen(threshold=300e3,
                                     code_provider=rm_provider)
    helper, key = keygen.enroll(medium_array, rng=1)
    oracle = HelperDataOracle(medium_array, keygen)
    return oracle, keygen, helper, key


class TestMLDecoderMetadata:
    def test_rm_is_not_bounded_distance(self):
        assert not ReedMullerCode(5).bounded_distance
        assert not BlockwiseCode(ReedMullerCode(5), 3).bounded_distance

    def test_bch_is_bounded_distance(self):
        from repro.ecc import design_bch

        assert design_bch(40, 3).bounded_distance


class TestCalibration:
    def test_anchor_calibration_separates(self, setup):
        oracle, keygen, helper, _ = setup
        attack = SequentialPairingAttack(oracle, keygen, helper)
        positions, signature = attack._ml_calibrate_anchor(0)
        assert signature in (0, 1)
        # All flips inside the anchor's block.
        assert all(p < 32 for p in positions)
        assert 0 not in positions


class TestMLKeyRecovery:
    def test_full_key_recovery(self, setup):
        oracle, keygen, helper, key = setup
        result = SequentialPairingAttack(oracle, keygen, helper).run()
        assert result.key is not None
        np.testing.assert_array_equal(result.key, key)

    def test_relations_match_truth(self, setup):
        oracle, keygen, helper, key = setup
        attack = SequentialPairingAttack(oracle, keygen, helper)
        relations, _ = attack.recover_relations()
        np.testing.assert_array_equal(relations, key ^ key[0])

    def test_reconstruction_reliability_preserved(self, setup,
                                                  medium_array):
        # Sanity: the RM-backed device is itself reliable — the attack
        # is not exploiting a broken reliability layer.
        oracle, keygen, helper, key = setup
        assert oracle.failure_rate(helper, 10) <= 0.1
