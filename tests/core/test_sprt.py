"""Tests for the SPRT distinguisher and its attack integration."""

import numpy as np
import pytest

from repro.core import (
    HelperDataOracle,
    SequentialPairingAttack,
    SPRTDistinguisher,
)
from repro.keygen import SequentialPairingKeyGen


class FakeOracle:
    def __init__(self, seed=0):
        self._rng = np.random.default_rng(seed)
        self.queries = 0

    def query(self, helper, op=None):
        self.queries += 1
        return self._rng.random() >= float(helper)


class TestSPRTDistinguisher:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SPRTDistinguisher(0.5, 0.5)
        with pytest.raises(ValueError):
            SPRTDistinguisher(0.9, 0.1)
        with pytest.raises(ValueError):
            SPRTDistinguisher(0.1, 0.9, alpha=0.7)

    def test_decides_low_rate_as_eq(self):
        sprt = SPRTDistinguisher(0.05, 0.95)
        oracle = FakeOracle(1)
        outcome = sprt.test(oracle, 0.05)
        assert outcome.decision == "eq"

    def test_decides_high_rate_as_neq(self):
        sprt = SPRTDistinguisher(0.05, 0.95)
        oracle = FakeOracle(2)
        outcome = sprt.test(oracle, 0.95)
        assert outcome.decision == "neq"

    def test_near_deterministic_regime_is_cheap(self):
        sprt = SPRTDistinguisher(0.02, 0.98)
        oracle = FakeOracle(3)
        total = 0
        for _ in range(20):
            total += sprt.test(oracle, 0.02).queries
        assert total / 20 <= 5

    def test_expected_queries_approximation(self):
        sprt = SPRTDistinguisher(0.02, 0.98)
        assert sprt.expected_queries(0.02) < 10
        assert sprt.expected_queries(0.98) < 10
        # At the indifference point the drift vanishes.
        assert sprt.expected_queries(0.5) >= \
            sprt.expected_queries(0.02)

    def test_error_rates_bounded(self):
        # Empirical error probability stays near the designed alpha.
        sprt = SPRTDistinguisher(0.1, 0.9, alpha=0.01, beta=0.01)
        wrong = 0
        trials = 200
        for seed in range(trials):
            oracle = FakeOracle(seed)
            if sprt.test(oracle, 0.1).decision != "eq":
                wrong += 1
        assert wrong / trials < 0.05

    def test_calibration_from_helpers(self):
        oracle = FakeOracle(5)
        sprt = SPRTDistinguisher.calibrate(oracle, 0.05, 0.9,
                                           queries=40)
        assert sprt.p_low < sprt.p_high

    def test_calibration_rejects_unseparated(self):
        oracle = FakeOracle(6)
        with pytest.raises(ValueError):
            SPRTDistinguisher.calibrate(oracle, 0.5, 0.5, queries=40)


class TestSPRTAttackIntegration:
    @pytest.fixture
    def setup(self, medium_array):
        keygen = SequentialPairingKeyGen(threshold=300e3)
        helper, key = keygen.enroll(medium_array, rng=1)
        oracle = HelperDataOracle(medium_array, keygen)
        return oracle, keygen, helper, key

    def test_sprt_run_recovers_key(self, setup):
        oracle, keygen, helper, key = setup
        result = SequentialPairingAttack(oracle, keygen,
                                         helper).run(method="sprt")
        assert result.key is not None
        np.testing.assert_array_equal(result.key, key)

    def test_sprt_cheaper_than_paired(self, setup):
        oracle, keygen, helper, key = setup
        paired = SequentialPairingAttack(oracle, keygen,
                                         helper).run(method="paired")
        sprt = SequentialPairingAttack(oracle, keygen,
                                       helper).run(method="sprt")
        assert sprt.queries < paired.queries

    def test_unknown_method_rejected(self, setup):
        oracle, keygen, helper, _ = setup
        with pytest.raises(ValueError):
            SequentialPairingAttack(oracle, keygen,
                                    helper).run(method="magic")
