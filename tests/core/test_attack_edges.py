"""Edge-case coverage for the attack drivers."""

import numpy as np
import pytest

from repro.core import (
    DistillerPairingAttack,
    GroupBasedAttack,
    HelperDataOracle,
)
from repro.keygen import (
    DistillerPairingKeyGen,
    GroupBasedKeyGen,
    bch_provider,
)


class TestDistillerAttackEdges:
    @pytest.fixture
    def setup(self, small_array):
        keygen = DistillerPairingKeyGen(4, 10, pairing_mode="masking",
                                        k=5)
        helper, key = keygen.enroll(small_array, rng=3)
        oracle = HelperDataOracle(small_array, keygen)
        return oracle, keygen, helper, key

    def test_joint_hypothesis_cap_enforced(self, setup):
        oracle, keygen, helper, _ = setup
        attack = DistillerPairingAttack(oracle, keygen, helper, 4, 10,
                                        max_joint_bits=0)
        with pytest.raises(ValueError):
            attack.isolate(0)

    def test_excessive_injection_rejected(self, setup):
        oracle, keygen, helper, _ = setup
        attack = DistillerPairingAttack(oracle, keygen, helper, 4, 10,
                                        injected_errors=99)
        with pytest.raises(ValueError):
            attack.isolate(0)

    def test_zero_injection_with_trivial_code(self, small_array):
        # t = 0 device: every error is observable; the attack needs no
        # injection at all.
        keygen = DistillerPairingKeyGen(4, 10, pairing_mode="masking",
                                        k=5,
                                        code_provider=bch_provider(0))
        helper, key = keygen.enroll(small_array, rng=3)
        oracle = HelperDataOracle(small_array, keygen)
        attack = DistillerPairingAttack(oracle, keygen, helper, 4, 10,
                                        injected_errors=0)
        result = attack.run()
        np.testing.assert_array_equal(result.key, key)


class TestGroupAttackEdges:
    @pytest.fixture
    def setup(self, small_array):
        keygen = GroupBasedKeyGen(group_threshold=120e3)
        helper, key = keygen.enroll(small_array, rng=2)
        oracle = HelperDataOracle(small_array, keygen)
        return oracle, keygen, helper, key

    def test_explicit_injection_count(self, setup):
        # The boundary value (t of the repartitioned code) must be
        # injected for the +1 error of a wrong hypothesis to overflow;
        # passing it explicitly follows the same path as the default.
        oracle, keygen, helper, key = setup
        t = keygen.sketch_for(20).code.t
        attack = GroupBasedAttack(oracle, keygen, helper, 4, 10,
                                  injected_errors=t)
        result = attack.run()
        np.testing.assert_array_equal(result.key, key)

    def test_insufficient_injection_yields_no_signal(self, setup):
        # An attacker who under-injects (t - 1) leaves both hypotheses
        # inside the correction radius: the channel carries nothing.
        oracle, keygen, helper, _ = setup
        t = keygen.sketch_for(20).code.t
        attack = GroupBasedAttack(oracle, keygen, helper, 4, 10,
                                  injected_errors=t - 1)
        helper0, helper1 = attack._attack_helpers(
            helper.grouping.groups[0][0], helper.grouping.groups[0][1])
        assert oracle.failure_rate(helper0, 5) == 0.0
        assert oracle.failure_rate(helper1, 5) == 0.0

    def test_single_group_order_recovery(self, setup, small_array):
        oracle, keygen, helper, _ = setup
        from repro.grouping import order_from_frequencies

        attack = GroupBasedAttack(oracle, keygen, helper, 4, 10)
        group = helper.grouping.groups[1]
        recovered = attack.recover_group_order(group)
        residuals = keygen.distiller.residuals(
            small_array.x, small_array.y,
            small_array.true_frequencies(), helper.distiller)
        truth = order_from_frequencies(residuals[list(group)])
        assert recovered == truth

    def test_comparisons_counted(self, setup):
        oracle, keygen, helper, _ = setup
        attack = GroupBasedAttack(oracle, keygen, helper, 4, 10)
        attack.compare_ros(0, 1)
        attack.compare_ros(2, 3)
        assert attack._comparisons == 2
