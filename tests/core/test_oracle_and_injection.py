"""Tests for the failure oracle and the error-injection primitives."""

import numpy as np
import pytest

from repro.core import (
    HelperDataOracle,
    break_inversions,
    flip_orientations,
    pair_cells_by_value,
    predicted_pair_bits,
    swap_positions,
    symmetric_quadratic,
)
from repro.keygen import OperatingPoint, SequentialPairingKeyGen, \
    TempAwareKeyGen
from repro.pairing import SequentialPairingHelper


class TestHelperDataOracle:
    @pytest.fixture
    def device(self, medium_array):
        keygen = SequentialPairingKeyGen(threshold=300e3)
        helper, key = keygen.enroll(medium_array, rng=1)
        return medium_array, keygen, helper, key

    def test_query_counts(self, device):
        array, keygen, helper, _ = device
        oracle = HelperDataOracle(array, keygen)
        for _ in range(7):
            oracle.query(helper)
        assert oracle.queries == 7
        oracle.reset_query_count()
        assert oracle.queries == 0

    def test_nominal_helper_succeeds(self, device):
        array, keygen, helper, _ = device
        oracle = HelperDataOracle(array, keygen)
        assert oracle.failure_rate(helper, 10) <= 0.1

    def test_heavily_corrupted_helper_fails(self, device):
        array, keygen, helper, _ = device
        oracle = HelperDataOracle(array, keygen)
        corrupted = helper.with_pairing(flip_orientations(
            helper.pairing, range(10)))
        assert oracle.failure_rate(corrupted, 10) >= 0.9

    def test_operating_point_override(self, device):
        array, keygen, helper, _ = device
        oracle = HelperDataOracle(array, keygen)
        assert oracle.query(helper,
                            OperatingPoint(temperature=30.0)) in (True,
                                                                  False)

    def test_invalid_query_count_rejected(self, device):
        array, keygen, helper, _ = device
        oracle = HelperDataOracle(array, keygen)
        with pytest.raises(ValueError):
            oracle.failure_rate(helper, 0)


class TestSequentialInjection:
    @pytest.fixture
    def helper(self):
        return SequentialPairingHelper(tuple((2 * i, 2 * i + 1)
                                             for i in range(8)))

    def test_flips_reverse_orientation(self, helper):
        flipped = flip_orientations(helper, [0, 3])
        assert flipped.pairs[0] == (1, 0)
        assert flipped.pairs[3] == (7, 6)
        assert flipped.pairs[1] == helper.pairs[1]

    def test_swaps_exchange_positions(self, helper):
        swapped = swap_positions(helper, [(0, 7), (1, 2)])
        assert swapped.pairs[0] == helper.pairs[7]
        assert swapped.pairs[7] == helper.pairs[0]
        assert swapped.pairs[1] == helper.pairs[2]

    def test_original_untouched(self, helper):
        flip_orientations(helper, [0])
        swap_positions(helper, [(0, 1)])
        assert helper.pairs[0] == (0, 1)


class TestBreakInversions:
    @pytest.fixture
    def enrolled(self, thermal_array):
        keygen = TempAwareKeyGen(t_min=-10, t_max=80, threshold=150e3)
        helper, key = keygen.enroll(thermal_array, rng=6)
        return thermal_array, keygen, helper, key

    def test_injects_exact_error_count(self, enrolled):
        array, keygen, helper, key = enrolled
        temperature = 45.0
        scheme = break_inversions(helper.scheme, temperature, 2)
        freqs = array.true_frequencies(temperature=temperature)
        original = keygen.scheme.evaluate(freqs, helper.scheme,
                                          temperature)
        modified = keygen.scheme.evaluate(freqs, scheme, temperature)
        assert int(np.sum(original != modified)) == 2

    def test_respects_exclusions(self, enrolled):
        array, keygen, helper, _ = enrolled
        entry = helper.scheme.cooperation[0]
        scheme = break_inversions(helper.scheme, 45.0, 1,
                                  exclude=[entry.pair_index])
        assert scheme.cooperation[0] == entry

    def test_insufficient_capacity_rejected(self, enrolled):
        _, _, helper, _ = enrolled
        with pytest.raises(ValueError):
            break_inversions(helper.scheme, 45.0, 10_000)


class TestSymmetricQuadratic:
    def test_equal_at_targets(self):
        payload = symmetric_quadratic((2.0, 1.0), (7.0, 3.0), rows=4)
        assert payload(2.0, 1.0) == pytest.approx(payload(7.0, 3.0))

    def test_steepness_scales_values(self):
        weak = symmetric_quadratic((0.0, 0.0), (3.0, 0.0), 4,
                                   steepness=1.0)
        strong = symmetric_quadratic((0.0, 0.0), (3.0, 0.0), 4,
                                     steepness=100.0)
        assert strong(9.0, 2.0) == pytest.approx(100.0 * weak(9.0, 2.0))

    def test_identical_targets_rejected(self):
        with pytest.raises(ValueError):
            symmetric_quadratic((1.0, 1.0), (1.0, 1.0), 4)

    def test_collisions_only_on_mirror_cells(self):
        payload = symmetric_quadratic((2.0, 0.0), (5.0, 2.0), rows=4,
                                      steepness=1e6)
        xs, ys = np.meshgrid(np.arange(10.0), np.arange(4.0))
        values = np.round(payload(xs, ys).ravel(), 3)
        cells = [(i % 10, i // 10) for i in range(40)]
        mx, my = 3.5, 1.0
        for i in range(40):
            for j in range(i + 1, 40):
                if values[i] == values[j]:
                    # Colliding cells must be exactly symmetric about
                    # the midpoint of the two targets.
                    xi, yi = cells[i]
                    xj, yj = cells[j]
                    assert (xi + xj) / 2 == mx and (yi + yj) / 2 == my

    def test_collision_classes_have_size_two(self):
        payload = symmetric_quadratic((2.0, 0.0), (5.0, 2.0), rows=4,
                                      steepness=1e6)
        xs, ys = np.meshgrid(np.arange(10.0), np.arange(4.0))
        values = np.round(payload(xs, ys).ravel(), 3)
        _, counts = np.unique(values, return_counts=True)
        assert counts.max() == 2


class TestPredictionAndPairing:
    def test_predicted_bits_follow_margins(self):
        values = np.array([100.0, 0.0, 50.0, 49.0])
        bits = predicted_pair_bits(values, [(0, 1), (1, 0), (2, 3)],
                                   margin=10.0)
        assert bits == [1, 0, -1]

    def test_pair_cells_respect_min_gap_and_exclusion(self):
        values = np.array([0.0, 0.0, 10.0, 20.0, 30.0, 40.0])
        pairs = pair_cells_by_value(values, exclude=[0], min_gap=5.0)
        flat = [c for pair in pairs for c in pair]
        assert 0 not in flat
        for a, b in pairs:
            assert abs(values[a] - values[b]) >= 5.0

    def test_full_grid_pairing_covers_almost_all(self):
        payload = symmetric_quadratic((2.0, 1.0), (5.0, 1.0), rows=4,
                                      steepness=1e12)
        xs = np.arange(40) % 10
        ys = np.arange(40) // 10
        values = -payload(xs.astype(float), ys.astype(float))
        margin = 1e12 / (2.0 * 25)
        pairs = pair_cells_by_value(values, exclude=[12, 15],
                                    min_gap=margin)
        covered = {c for pair in pairs for c in pair}
        assert len(covered) >= 34
        assert covered.isdisjoint({12, 15})
