"""Tests for the failure-rate distinguishing framework (paper Fig. 5)."""

import numpy as np
import pytest

from repro.core.framework import (
    FailureRateComparer,
    repair_with_commitment,
    select_hypothesis,
)
from repro.keygen.base import key_check_digest


class FakeOracle:
    """Deterministic-rate oracle: helpers are failure probabilities."""

    def __init__(self, seed=0):
        self._rng = np.random.default_rng(seed)
        self.queries = 0

    def query(self, helper, op=None):
        self.queries += 1
        return self._rng.random() >= float(helper)


class TestFailureRateComparer:
    def test_separated_rates_decided_correctly(self):
        oracle = FakeOracle(1)
        comparer = FailureRateComparer(max_queries_per_side=60)
        outcome = comparer.compare(oracle, 0.05, 0.95)
        assert outcome.decision == "a"
        outcome = comparer.compare(oracle, 0.95, 0.05)
        assert outcome.decision == "b"

    def test_deterministic_fast_path_is_cheap(self):
        oracle = FakeOracle(2)
        comparer = FailureRateComparer(min_queries_per_side=3)
        outcome = comparer.compare(oracle, 0.0, 1.0)
        assert outcome.decision == "a"
        assert outcome.queries <= 8

    def test_identical_zero_rates_stop_early(self):
        oracle = FakeOracle(3)
        comparer = FailureRateComparer(identical_stop=5,
                                       max_queries_per_side=100)
        outcome = comparer.compare(oracle, 0.0, 0.0)
        assert outcome.decision == "tie"
        assert outcome.samples <= 6

    def test_identical_stop_disabled_runs_budget(self):
        oracle = FakeOracle(4)
        comparer = FailureRateComparer(identical_stop=None,
                                       max_queries_per_side=15)
        outcome = comparer.compare(oracle, 0.0, 0.0)
        assert outcome.samples == 15

    def test_rates_reported(self):
        oracle = FakeOracle(5)
        comparer = FailureRateComparer(max_queries_per_side=50,
                                       identical_stop=None)
        outcome = comparer.compare(oracle, 0.0, 1.0)
        assert outcome.rate_a == pytest.approx(0.0)
        assert outcome.rate_b == pytest.approx(1.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FailureRateComparer(confidence=0.4)
        with pytest.raises(ValueError):
            FailureRateComparer(min_queries_per_side=0)
        with pytest.raises(ValueError):
            FailureRateComparer(max_queries_per_side=2,
                                min_queries_per_side=5)


class TestSelectHypothesis:
    def test_argmin_over_labels(self):
        oracle = FakeOracle(6)
        outcome = select_hypothesis(
            oracle, {"h0": 0.9, "h1": 0.05, "h2": 0.9},
            queries_per_hypothesis=20, early_stop=False)
        assert outcome.label == "h1"
        assert set(outcome.rates) == {"h0", "h1", "h2"}

    def test_early_stop_skips_remaining(self):
        oracle = FakeOracle(7)
        outcome = select_hypothesis(
            oracle, {"h0": 0.0, "h1": 0.9},
            queries_per_hypothesis=5)
        assert outcome.label == "h0"
        assert outcome.queries == 5

    def test_empty_hypotheses_rejected(self):
        with pytest.raises(ValueError):
            select_hypothesis(FakeOracle(), {})


class TestRepairWithCommitment:
    def test_exact_match_returned_unchanged(self, rng):
        key = rng.integers(0, 2, 24).astype(np.uint8)
        repaired = repair_with_commitment(key, key_check_digest(key))
        np.testing.assert_array_equal(repaired, key)

    @pytest.mark.parametrize("flips", [1, 2])
    def test_repairs_within_radius(self, rng, flips):
        key = rng.integers(0, 2, 24).astype(np.uint8)
        commitment = key_check_digest(key)
        damaged = key.copy()
        damaged[rng.choice(24, flips, replace=False)] ^= 1
        repaired = repair_with_commitment(damaged, commitment,
                                          max_flips=2)
        np.testing.assert_array_equal(repaired, key)

    def test_beyond_radius_returns_none(self, rng):
        key = rng.integers(0, 2, 24).astype(np.uint8)
        commitment = key_check_digest(key)
        damaged = key.copy()
        damaged[[0, 5, 9]] ^= 1
        assert repair_with_commitment(damaged, commitment,
                                      max_flips=2) is None

    def test_input_not_mutated(self, rng):
        key = rng.integers(0, 2, 16).astype(np.uint8)
        commitment = key_check_digest(key)
        damaged = key.copy()
        damaged[3] ^= 1
        snapshot = damaged.copy()
        repair_with_commitment(damaged, commitment)
        np.testing.assert_array_equal(damaged, snapshot)
