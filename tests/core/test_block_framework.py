"""Block-mode distinguishers must reproduce sequential decisions.

The comparer, the arg-min selector and the SPRT all dispatch to
vectorized block paths when handed a ``BatchOracle``; these tests drive
twin devices through both paths and assert identical decisions, query
counts and post-decision oracle state.
"""

import numpy as np

from repro.core import (
    BatchOracle,
    HelperDataOracle,
    SequentialPairingAttack,
    SPRTDistinguisher,
)
from repro.core.framework import FailureRateComparer, select_hypothesis
from repro.core.injection import flip_orientations
from repro.keygen import SequentialPairingKeyGen
from repro.puf import ROArray, ROArrayParams

PARAMS = ROArrayParams(rows=8, cols=16, sigma_noise=300e3)


def build(seed, enroll_seed=1, threshold=250e3):
    seq_array = ROArray(PARAMS, rng=seed)
    batch_array = ROArray(PARAMS, rng=seed)
    keygen = SequentialPairingKeyGen(threshold=threshold)
    helper_seq, key = keygen.enroll(seq_array, rng=enroll_seed)
    helper_batch, _ = keygen.enroll(batch_array, rng=enroll_seed)
    return (HelperDataOracle(seq_array, keygen),
            BatchOracle(batch_array, keygen), keygen, helper_seq,
            helper_batch, key)


def manipulations(keygen, helper, key):
    """Reference/test helper pairs spanning the decision regimes."""
    t = keygen.sketch_for(key.size).code.t
    injected = flip_orientations(helper.pairing,
                                 list(range(2, 2 + t - 1)))
    unequal = next(j for j in range(1, key.size)
                   if key[j] != key[0]
                   and j not in range(2, 2 + t - 1))
    equal = next(j for j in range(1, key.size)
                 if key[j] == key[0] and j not in range(2, 2 + t - 1))
    reference = helper.with_pairing(injected)
    wrong = helper.with_pairing(
        injected.with_swapped_positions(0, unequal))
    same = helper.with_pairing(
        injected.with_swapped_positions(0, equal))
    return reference, wrong, same


class TestBlockedComparer:
    def test_decisions_and_counts_match(self):
        for seed in range(4):
            seq_oracle, batch_oracle, keygen, h_seq, h_batch, key = \
                build(100 + seed)
            ref_s, wrong_s, same_s = manipulations(keygen, h_seq, key)
            ref_b, wrong_b, same_b = manipulations(keygen, h_batch,
                                                   key)
            comparer = FailureRateComparer(max_queries_per_side=40)
            for seq_pair, batch_pair in (
                    ((ref_s, wrong_s), (ref_b, wrong_b)),
                    ((ref_s, same_s), (ref_b, same_b)),
                    ((wrong_s, ref_s), (wrong_b, ref_b))):
                expected = comparer.compare(seq_oracle, *seq_pair)
                observed = comparer.compare(batch_oracle, *batch_pair)
                assert expected == observed
            assert seq_oracle.queries == batch_oracle.queries

    def test_budget_exhaustion_matches(self):
        seq_oracle, batch_oracle, keygen, h_seq, h_batch, key = \
            build(300)
        # Identical helpers on both sides: no separation, the budget
        # runs out and the z-test resolves to a tie on both paths.
        comparer = FailureRateComparer(max_queries_per_side=17,
                                       identical_stop=None)
        expected = comparer.compare(seq_oracle, h_seq, h_seq)
        observed = comparer.compare(batch_oracle, h_batch, h_batch)
        assert expected == observed
        assert expected.decision == "tie"
        assert expected.samples == 17


class TestBlockedSelectHypothesis:
    def test_selection_matches(self):
        seq_oracle, batch_oracle, keygen, h_seq, h_batch, key = \
            build(200)
        ref_s, wrong_s, _ = manipulations(keygen, h_seq, key)
        ref_b, wrong_b, _ = manipulations(keygen, h_batch, key)
        for early_stop in (True, False):
            expected = select_hypothesis(
                seq_oracle, {"eq": ref_s, "neq": wrong_s},
                queries_per_hypothesis=8, early_stop=early_stop)
            observed = select_hypothesis(
                batch_oracle, {"eq": ref_b, "neq": wrong_b},
                queries_per_hypothesis=8, early_stop=early_stop)
            assert expected.label == observed.label
            assert expected.queries == observed.queries
            assert expected.rates == observed.rates


class TestBlockedSPRT:
    def test_walk_matches_bitwise(self):
        seq_oracle, batch_oracle, keygen, h_seq, h_batch, key = \
            build(400)
        ref_s, wrong_s, same_s = manipulations(keygen, h_seq, key)
        ref_b, wrong_b, same_b = manipulations(keygen, h_batch, key)
        sprt = SPRTDistinguisher(0.05, 0.95, max_queries=60)
        for helper_s, helper_b in ((wrong_s, wrong_b),
                                   (same_s, same_b),
                                   (ref_s, ref_b)):
            expected = sprt.test(seq_oracle, helper_s)
            observed = sprt.test(batch_oracle, helper_b)
            assert expected == observed
        assert seq_oracle.queries == batch_oracle.queries

    def test_calibration_matches(self):
        seq_oracle, batch_oracle, keygen, h_seq, h_batch, key = \
            build(500)
        ref_s, wrong_s, _ = manipulations(keygen, h_seq, key)
        ref_b, wrong_b, _ = manipulations(keygen, h_batch, key)
        expected = SPRTDistinguisher.calibrate(seq_oracle, ref_s,
                                               wrong_s, queries=30)
        observed = SPRTDistinguisher.calibrate(batch_oracle, ref_b,
                                               wrong_b, queries=30)
        assert expected.p_low == observed.p_low
        assert expected.p_high == observed.p_high
        assert seq_oracle.queries == batch_oracle.queries == 60


class TestFullAttackEquivalence:
    def test_attack_matches_end_to_end(self):
        for method in ("paired", "sprt"):
            seq_oracle, batch_oracle, keygen, h_seq, h_batch, key = \
                build(600, threshold=300e3)
            t = keygen.sketch_for(key.size).code.t
            expected = SequentialPairingAttack(
                seq_oracle, keygen, h_seq,
                injected_errors=t - 1).run(method=method)
            observed = SequentialPairingAttack(
                batch_oracle, keygen, h_batch,
                injected_errors=t - 1).run(method=method)
            np.testing.assert_array_equal(expected.relations,
                                          observed.relations)
            assert expected.queries == observed.queries
            assert expected.key is not None
            np.testing.assert_array_equal(expected.key, observed.key)
            np.testing.assert_array_equal(expected.key, key)
