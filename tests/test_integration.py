"""Cross-module integration tests: the paper's storyline end to end."""

import numpy as np

from repro.analysis import (
    bit_bias,
    inter_device_distances,
    permutation_entropy,
)
from repro.core import (
    DistillerPairingAttack,
    GroupBasedAttack,
    HelperDataOracle,
    SequentialPairingAttack,
)
from repro.keygen import (
    DistillerPairingKeyGen,
    FuzzyExtractorKeyGen,
    GroupBasedKeyGen,
    OperatingPoint,
    ReconstructionFailure,
    SequentialPairingKeyGen,
)
from repro.puf import ROArray, ROArrayParams
from repro._rng import spawn


class TestPopulationStatistics:
    """§II-III: uniqueness and reliability of the simulated PUF."""

    def test_population_uniqueness(self):
        params = ROArrayParams(rows=4, cols=10)
        keygen = DistillerPairingKeyGen(4, 10,
                                        pairing_mode="neighbor-disjoint")
        keys = []
        for child in spawn(99, 12):
            array = ROArray(params, rng=child)
            _, key = keygen.enroll(array, rng=child)
            keys.append(key)
        keys = np.stack(keys)
        distances = inter_device_distances(keys)
        assert 0.3 < distances.mean() < 0.7
        bias = bit_bias(keys)
        assert 0.15 < bias.mean() < 0.85

    def test_entropy_budget_respected(self):
        # No construction can emit more bits than log2(N!) on N ROs.
        array = ROArray(ROArrayParams(rows=4, cols=10), rng=1)
        budget = permutation_entropy(40)
        group_kg = GroupBasedKeyGen(group_threshold=120e3)
        _, key = group_kg.enroll(array, rng=1)
        assert key.size >= 1
        # The packed key length never exceeds the theoretical budget
        # rounded up per group (ceil introduces < 1 bit per group).
        helper, key = group_kg.enroll(array, rng=2)
        assert key.size <= budget + len(helper.grouping.groups)


class TestAttacksArePrecise:
    """§VI: attacks succeed while honest reconstruction still works."""

    def test_sequential_attack_leaves_device_functional(self,
                                                        medium_array):
        keygen = SequentialPairingKeyGen(threshold=300e3)
        helper, key = keygen.enroll(medium_array, rng=1)
        oracle = HelperDataOracle(medium_array, keygen)
        result = SequentialPairingAttack(oracle, keygen, helper).run()
        np.testing.assert_array_equal(result.key, key)
        # Original helper data untouched: the device still reconstructs.
        np.testing.assert_array_equal(
            keygen.reconstruct(medium_array, helper), key)

    def test_group_attack_key_reprogramming(self, small_array):
        # §VI-C side effect: the attacker can also *install* a key of
        # their choice, not only read the enrolled one.
        keygen = GroupBasedKeyGen(group_threshold=120e3)
        helper, _ = keygen.enroll(small_array, rng=2)
        oracle = HelperDataOracle(small_array, keygen)
        attack = GroupBasedAttack(oracle, keygen, helper, 4, 10)
        helper0, helper1 = attack._attack_helpers(0, 1)
        # One of the two hypothesis helpers reconstructs consistently —
        # the device now runs on an attacker-chosen key.
        successes0 = sum(oracle.query(helper0) for _ in range(6))
        successes1 = sum(oracle.query(helper1) for _ in range(6))
        assert max(successes0, successes1) >= 5
        assert min(successes0, successes1) <= 1


class TestFuzzyExtractorBaseline:
    """§VII-A: the reference solution resists the §VI channel."""

    def test_payload_flips_fail_independent_of_secret_bits(
            self, medium_array):
        keygen = FuzzyExtractorKeyGen(8, 16, out_bits=32)
        helper, key = keygen.enroll(medium_array, rng=5)
        oracle = HelperDataOracle(medium_array, keygen)
        baseline = oracle.failure_rate(helper, 8)
        assert baseline <= 0.15
        # Flipping a code-offset payload bit shifts the recovered
        # response deterministically, so the hashed key changes and the
        # application check fails — ALWAYS, for every position, whatever
        # the secret bit there is.  Contrast with the §VI constructions,
        # where the failure rate depends on a hypothesis about secret
        # bits: here the observable carries no secret-dependent signal.
        single_rates = []
        for position in (0, 7, 31, 50):
            payload = helper.extractor.sketch.payload.copy()
            payload[position] ^= 1
            manipulated = helper.with_extractor(
                helper.extractor.with_sketch(
                    helper.extractor.sketch.with_payload(payload)))
            single_rates.append(oracle.failure_rate(manipulated, 8))
        assert all(rate >= 0.85 for rate in single_rates)
        spread = max(single_rates) - min(single_rates)
        assert spread <= 0.2

    def test_massive_manipulation_fails_closed(self, medium_array):
        keygen = FuzzyExtractorKeyGen(8, 16, out_bits=32)
        helper, _ = keygen.enroll(medium_array, rng=5)
        payload = helper.extractor.sketch.payload.copy()
        payload[:20] ^= 1
        manipulated = helper.with_extractor(
            helper.extractor.with_sketch(
                helper.extractor.sketch.with_payload(payload)))
        oracle = HelperDataOracle(medium_array, keygen)
        assert oracle.failure_rate(manipulated, 8) >= 0.9


class TestFormatPitfalls:
    """§VII-C: helper-data format decides between safe and broken."""

    def test_sorted_vs_randomized_storage(self, medium_array):
        sorted_kg = SequentialPairingKeyGen(threshold=300e3,
                                            storage_order="sorted")
        _, sorted_key = sorted_kg.enroll(medium_array, rng=1)
        random_kg = SequentialPairingKeyGen(threshold=300e3,
                                            storage_order="randomized")
        _, random_key = random_kg.enroll(medium_array, rng=1)
        # Sorted: zero-query read-only leak (all ones).  Randomized:
        # balanced secret bits.
        assert sorted_key.all()
        assert 0.2 < random_key.mean() < 0.8

    def test_distiller_attack_defeats_every_pairing_mode(self,
                                                         small_array):
        for mode in ("masking", "neighbor-disjoint"):
            keygen = DistillerPairingKeyGen(4, 10, pairing_mode=mode,
                                            k=5)
            helper, key = keygen.enroll(small_array, rng=3)
            oracle = HelperDataOracle(small_array, keygen)
            result = DistillerPairingAttack(oracle, keygen, helper, 4,
                                            10).run()
            np.testing.assert_array_equal(result.key, key)


class TestOperatingConditions:
    def test_reconstruction_under_voltage_variation(self, medium_array):
        keygen = SequentialPairingKeyGen(threshold=300e3)
        helper, key = keygen.enroll(medium_array, rng=1)
        for voltage in (1.14, 1.20, 1.26):
            op = OperatingPoint(voltage=voltage)
            successes = 0
            for _ in range(5):
                try:
                    successes += int(np.array_equal(
                        keygen.reconstruct(medium_array, helper, op),
                        key))
                except ReconstructionFailure:
                    pass
            assert successes >= 4
