"""Coverage for the RNG helpers and smaller utility surfaces."""

import numpy as np
import pytest

from repro._rng import ensure_rng, spawn
from repro.analysis import empirical_bit_error_rate
from repro.core.injection import injected_values, symmetric_quadratic
from repro.keygen import GroupBasedKeyGen


class TestEnsureRng:
    def test_none_gives_fresh_generator(self):
        a = ensure_rng(None)
        b = ensure_rng(None)
        assert isinstance(a, np.random.Generator)
        assert a is not b

    def test_int_seed_is_deterministic(self):
        assert ensure_rng(7).integers(0, 1000) == \
            ensure_rng(7).integers(0, 1000)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_invalid_input_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawn:
    def test_children_are_independent(self):
        children = spawn(3, 4)
        assert len(children) == 4
        draws = [child.integers(0, 10**9) for child in children]
        assert len(set(draws)) == 4

    def test_deterministic_per_seed(self):
        a = [c.integers(0, 10**9) for c in spawn(5, 3)]
        b = [c.integers(0, 10**9) for c in spawn(5, 3)]
        assert a == b

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn(1, -1)


class TestEmpiricalBitErrorRate:
    def test_matches_known_rates(self, rng):
        reference = np.zeros(3, dtype=np.uint8)
        probabilities = np.array([0.0, 0.5, 1.0])

        def sample():
            return (rng.random(3) < probabilities).astype(np.uint8)

        rates = empirical_bit_error_rate(sample, reference, trials=400)
        assert rates[0] == pytest.approx(0.0)
        assert rates[1] == pytest.approx(0.5, abs=0.08)
        assert rates[2] == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            empirical_bit_error_rate(
                lambda: np.zeros(2, dtype=np.uint8),
                np.zeros(3, dtype=np.uint8), trials=1)

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError):
            empirical_bit_error_rate(lambda: np.zeros(1),
                                     np.zeros(1), trials=0)


class TestInjectedValues:
    def test_is_negated_payload(self):
        payload = symmetric_quadratic((0.0, 0.0), (2.0, 0.0), rows=4,
                                      steepness=10.0)
        xs = np.arange(8.0)
        ys = np.zeros(8)
        np.testing.assert_allclose(injected_values(payload, xs, ys),
                                   -payload(xs, ys))


class TestConstructionOrderKeyGen:
    def test_leaky_storage_yields_zero_kendall_key(self, small_array):
        # With construction-order storage the measured order equals the
        # stored order, so every Kendall bit enrolls as 0: the key is
        # structurally all-zeros after packing of identity orders.
        keygen = GroupBasedKeyGen(group_threshold=120e3,
                                  storage_order="construction")
        helper, key = keygen.enroll(small_array, rng=2)
        assert key.sum() == 0

    def test_secure_storage_yields_mixed_key(self, small_array):
        keygen = GroupBasedKeyGen(group_threshold=120e3,
                                  storage_order="sorted")
        _, key = keygen.enroll(small_array, rng=2)
        assert 0 < key.sum() < key.size
