"""Equivalence tests: the vectorized temperature-aware batch path.

Mirrors ``tests/core/test_batch_oracle.py``: twin devices — identical
static randomness and noise streams — plus twin key generators sharing
a *sensor_seed*, so scalar and batched simulation consume identical
measurement and sensor noise.  The batched outcomes must then match the
scalar evaluator query for query at every temperature sweep point,
under nominal and manipulated helper data alike.
"""

import numpy as np
import pytest

from repro.core import BatchOracle, HelperDataOracle
from repro.core.injection import break_inversions
from repro.keygen import OperatingPoint, TempAwareKeyGen
from repro.puf import ROArray, ROArrayParams

PARAMS = ROArrayParams(rows=8, cols=16, temp_slope_sigma=8e3)
SWEEP_POINTS = (-10.0, 0.0, 20.0, 35.0, 50.0, 65.0, 80.0)


def twin_setup(device_seed=7, enroll_seed=0, sensor_seed=11):
    seq_array = ROArray(PARAMS, rng=device_seed)
    batch_array = ROArray(PARAMS, rng=device_seed)
    seq_keygen = TempAwareKeyGen(t_min=-10, t_max=80, threshold=150e3,
                                 sensor_seed=sensor_seed)
    batch_keygen = TempAwareKeyGen(t_min=-10, t_max=80,
                                   threshold=150e3,
                                   sensor_seed=sensor_seed)
    helper_seq, key = seq_keygen.enroll(seq_array, rng=enroll_seed)
    helper_batch, key_batch = batch_keygen.enroll(batch_array,
                                                  rng=enroll_seed)
    np.testing.assert_array_equal(key, key_batch)
    return (seq_array, batch_array, seq_keygen, batch_keygen,
            helper_seq, helper_batch)


def assert_twin_equivalence(seq_array, batch_array, seq_keygen,
                            batch_keygen, helper_seq, helper_batch,
                            op, queries=120):
    sequential = HelperDataOracle(seq_array, seq_keygen)
    batched = BatchOracle(batch_array, batch_keygen)
    expected = np.array([sequential.query(helper_seq, op)
                         for _ in range(queries)])
    observed = batched.query_block(helper_batch, queries, op)
    np.testing.assert_array_equal(expected, observed)
    assert sequential.queries == batched.queries == queries
    return expected


class TestTemperatureSweepEquivalence:
    def test_query_for_query_across_sweep_points(self):
        setup = twin_setup()
        for temperature in SWEEP_POINTS:
            assert_twin_equivalence(
                *setup, OperatingPoint(temperature=temperature),
                queries=60)

    def test_nominal_operating_point(self):
        assert_twin_equivalence(*twin_setup(), OperatingPoint())

    def test_interval_boundary_sensor_noise(self):
        # Right at a crossover-interval boundary the ±0.25 °C sensor
        # noise flips the interval interpretation query by query; the
        # batch path must track the scalar sensor stream exactly.
        setup = twin_setup()
        entry = setup[4].scheme.cooperation[0]
        for temperature in (entry.t_low, entry.t_high):
            assert_twin_equivalence(
                *setup, OperatingPoint(temperature=temperature),
                queries=150)


class TestManipulatedHelperEquivalence:
    def check_injection(self, errors):
        (seq_array, batch_array, seq_keygen, batch_keygen,
         helper_seq, helper_batch) = twin_setup()
        temperature = 25.0
        manipulated_seq = helper_seq.with_scheme(
            break_inversions(helper_seq.scheme, temperature, errors))
        manipulated_batch = helper_batch.with_scheme(
            break_inversions(helper_batch.scheme, temperature, errors))
        outcomes = assert_twin_equivalence(
            seq_array, batch_array, seq_keygen, batch_keygen,
            manipulated_seq, manipulated_batch,
            OperatingPoint(temperature=temperature))
        return outcomes

    def test_injection_below_boundary(self):
        # BCH t=3: three injected errors stay correctable.
        assert self.check_injection(3).all()

    def test_injection_past_boundary(self):
        assert not self.check_injection(4).any()

    def test_assistant_rewrite(self):
        # The §VI-B manipulation itself: rewrite an assistant index and
        # bake the device inside the target's crossover interval.
        (seq_array, batch_array, seq_keygen, batch_keygen,
         helper_seq, helper_batch) = twin_setup()
        entries = helper_seq.scheme.cooperation
        target, candidate = 0, 1
        rewritten_seq = helper_seq.with_scheme(
            helper_seq.scheme.replace_entry(
                target, entries[target].with_assist(
                    entries[candidate].pair_index)))
        entries_b = helper_batch.scheme.cooperation
        rewritten_batch = helper_batch.with_scheme(
            helper_batch.scheme.replace_entry(
                target, entries_b[target].with_assist(
                    entries_b[candidate].pair_index)))
        temperature = 0.5 * (entries[target].t_low
                             + entries[target].t_high)
        assert_twin_equivalence(
            seq_array, batch_array, seq_keygen, batch_keygen,
            rewritten_seq, rewritten_batch,
            OperatingPoint(temperature=temperature))

    def test_assistance_cycle_refusal(self):
        # Pointing the assistant at a pair whose interval intersects
        # the target's forms an assistance cycle: rows sensed inside
        # both intervals must fail observably on both paths.
        (seq_array, batch_array, seq_keygen, batch_keygen,
         helper_seq, helper_batch) = twin_setup()
        entries = helper_seq.scheme.cooperation
        intersecting = None
        for i, first in enumerate(entries):
            for j, second in enumerate(entries):
                if i != j and not (first.t_high < second.t_low
                                   or second.t_high < first.t_low):
                    intersecting = (i, j)
                    break
            if intersecting:
                break
        if intersecting is None:
            pytest.skip("device has no intersecting intervals")
        i, j = intersecting
        looped_seq = helper_seq.with_scheme(
            helper_seq.scheme.replace_entry(
                i, entries[i].with_assist(entries[j].pair_index)))
        entries_b = helper_batch.scheme.cooperation
        looped_batch = helper_batch.with_scheme(
            helper_batch.scheme.replace_entry(
                i, entries_b[i].with_assist(entries_b[j].pair_index)))
        temperature = 0.5 * (entries[i].t_low + entries[i].t_high)
        outcomes = assert_twin_equivalence(
            seq_array, batch_array, seq_keygen, batch_keygen,
            looped_seq, looped_batch,
            OperatingPoint(temperature=temperature))
        assert not outcomes.all()

    def test_non_cooperating_assistant_refusal(self):
        (seq_array, batch_array, seq_keygen, batch_keygen,
         helper_seq, helper_batch) = twin_setup()
        good_pair = helper_seq.scheme.good_indices[0]
        entry = helper_seq.scheme.cooperation[0]
        broken_seq = helper_seq.with_scheme(
            helper_seq.scheme.replace_entry(
                0, entry.with_assist(good_pair)))
        broken_batch = helper_batch.with_scheme(
            helper_batch.scheme.replace_entry(
                0, helper_batch.scheme.cooperation[0].with_assist(
                    good_pair)))
        temperature = 0.5 * (entry.t_low + entry.t_high)
        outcomes = assert_twin_equivalence(
            seq_array, batch_array, seq_keygen, batch_keygen,
            broken_seq, broken_batch,
            OperatingPoint(temperature=temperature))
        assert not outcomes.any()


class TestDuplicatePairIndexEquivalence:
    def test_duplicate_entries_resolve_like_the_scalar_path(self):
        # Cooperation records are attacker-writable, including
        # duplicated pair indices; the scalar path resolves every
        # record through a last-wins dict, and the batch path must
        # replicate that resolution bit for bit.
        from repro.pairing.temp_aware import CooperationEntry

        array = ROArray(PARAMS, rng=7)
        keygen = TempAwareKeyGen(t_min=-10, t_max=80, threshold=150e3)
        helper, _ = keygen.enroll(array, rng=0)
        scheme = keygen.scheme
        first, second = helper.scheme.cooperation[:2]
        duplicate = CooperationEntry(
            first.pair_index, second.t_low, second.t_high,
            second.good_index, second.assist_index)
        manipulated = helper.scheme.replace_entry(1, duplicate)

        rng = np.random.default_rng(5)
        freqs = array.measure_frequencies_batch(60, rng=rng)
        temps = rng.uniform(-10, 80, size=60)
        bits, valid = scheme.evaluate_batch(freqs, manipulated, temps)
        for row in range(60):
            try:
                expected = scheme.evaluate(freqs[row], manipulated,
                                           temps[row])
            except ValueError:
                assert not valid[row]
                continue
            assert valid[row]
            np.testing.assert_array_equal(bits[row], expected)


class TestEvaluateBatchDirect:
    def test_matches_scalar_evaluate_rowwise(self):
        array = ROArray(PARAMS, rng=3)
        keygen = TempAwareKeyGen(t_min=-10, t_max=80, threshold=150e3)
        helper, _ = keygen.enroll(array, rng=1)
        scheme = keygen.scheme
        rng = np.random.default_rng(42)
        freqs = array.measure_frequencies_batch(40, rng=rng)
        temps = rng.uniform(-10, 80, size=40)
        bits, valid = scheme.evaluate_batch(freqs, helper.scheme, temps)
        assert valid.all()
        for row in range(40):
            np.testing.assert_array_equal(
                bits[row],
                scheme.evaluate(freqs[row], helper.scheme,
                                temps[row]))

    def test_shape_validation(self):
        array = ROArray(PARAMS, rng=3)
        keygen = TempAwareKeyGen(t_min=-10, t_max=80, threshold=150e3)
        helper, _ = keygen.enroll(array, rng=1)
        scheme = keygen.scheme
        with pytest.raises(ValueError):
            scheme.evaluate_batch(np.zeros(PARAMS.n), helper.scheme,
                                  np.zeros(1))
        with pytest.raises(ValueError):
            scheme.evaluate_batch(np.zeros((4, PARAMS.n)),
                                  helper.scheme, np.zeros(3))
