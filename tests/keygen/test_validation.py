"""Tests for device-side helper-data validation (hardening)."""

import numpy as np
import pytest

from repro.core import HelperDataOracle, symmetric_quadratic
from repro.core.group_attack import GroupBasedAttack
from repro.keygen import (
    GroupBasedKeyGen,
    HardenedGroupBasedKeyGen,
    HardenedTempAwareKeyGen,
    HelperDataRejected,
    ReconstructionFailure,
    TempAwareKeyGen,
    validate_cooperation_records,
    validate_distiller_amplitude,
    validate_group_membership,
    validate_group_thresholds,
)
from repro.grouping import GroupingHelper


class TestDistillerAmplitudeCheck:
    def test_honest_helper_accepted(self, small_array):
        keygen = GroupBasedKeyGen(group_threshold=120e3)
        helper, _ = keygen.enroll(small_array, rng=2)
        validate_distiller_amplitude(helper.distiller, 4, 10,
                                     max_span=20e6)

    def test_steep_injection_rejected(self, small_array):
        keygen = GroupBasedKeyGen(group_threshold=120e3)
        helper, _ = keygen.enroll(small_array, rng=2)
        payload = symmetric_quadratic((2.0, 1.0), (5.0, 1.0), 4,
                                      steepness=1e12)
        with pytest.raises(HelperDataRejected):
            validate_distiller_amplitude(
                helper.distiller.with_added(payload), 4, 10,
                max_span=20e6)


class TestGroupChecks:
    def test_membership_rejects_reuse_and_range(self):
        grouping = GroupingHelper(((0, 1), (1, 2)), threshold=1.0)
        with pytest.raises(HelperDataRejected):
            validate_group_membership(grouping, 10)
        grouping = GroupingHelper(((0, 99),), threshold=1.0)
        with pytest.raises(HelperDataRejected):
            validate_group_membership(grouping, 10)

    def test_threshold_check_on_measurements(self):
        residuals = np.array([0.0, 1e6, 1.05e6])
        good = GroupingHelper(((0, 1),), threshold=120e3)
        validate_group_thresholds(residuals, good, 120e3)
        bad = GroupingHelper(((1, 2),), threshold=120e3)
        with pytest.raises(HelperDataRejected):
            validate_group_thresholds(residuals, bad, 120e3)


class TestCooperationChecks:
    @pytest.fixture
    def helper(self, thermal_array):
        keygen = TempAwareKeyGen(t_min=-10, t_max=80, threshold=150e3)
        helper, _ = keygen.enroll(thermal_array, rng=6)
        return helper

    def test_honest_records_accepted(self, helper):
        validate_cooperation_records(helper.scheme)

    def test_out_of_range_interval_rejected(self, helper):
        entry = helper.scheme.cooperation[0]
        broken = helper.scheme.replace_entry(
            0, entry.with_interval(200.0, 300.0))
        with pytest.raises(HelperDataRejected):
            validate_cooperation_records(broken)

    def test_intersecting_assistant_rejected(self, helper):
        scheme = helper.scheme
        entry = scheme.cooperation[0]
        # Point the assistant at a pair whose interval overlaps ours by
        # rewriting our own interval around the assistant's.
        assistant = next(e for e in scheme.cooperation
                         if e.pair_index == entry.assist_index)
        overlapping = scheme.replace_entry(0, entry.with_interval(
            assistant.t_low - 1.0, assistant.t_high + 1.0))
        with pytest.raises(HelperDataRejected):
            validate_cooperation_records(overlapping)

    def test_dangling_assistant_rejected(self, helper):
        entry = helper.scheme.cooperation[0]
        broken = helper.scheme.replace_entry(
            0, entry.with_assist(helper.scheme.good_indices[0]))
        with pytest.raises(HelperDataRejected):
            validate_cooperation_records(broken)


class TestHardenedDevices:
    def test_hardened_group_device_still_works(self, small_array):
        keygen = HardenedGroupBasedKeyGen(
            rows=4, cols=10, max_polynomial_span=20e6,
            group_threshold=120e3)
        helper, key = keygen.enroll(small_array, rng=2)
        successes = 0
        for _ in range(10):
            try:
                successes += int(np.array_equal(
                    keygen.reconstruct(small_array, helper), key))
            except ReconstructionFailure:
                pass
        assert successes >= 9

    def test_hardened_group_device_defeats_injection(self, small_array):
        keygen = HardenedGroupBasedKeyGen(
            rows=4, cols=10, max_polynomial_span=20e6,
            group_threshold=120e3)
        helper, key = keygen.enroll(small_array, rng=2)
        oracle = HelperDataOracle(small_array, keygen)
        attack = GroupBasedAttack(oracle, keygen, helper, 4, 10)
        # Every attack helper is rejected, so both hypotheses fail
        # identically: the comparison carries no information.
        helper0, helper1 = attack._attack_helpers(0, 1)
        assert oracle.failure_rate(helper0, 5) == 1.0
        assert oracle.failure_rate(helper1, 5) == 1.0

    def test_hardened_temp_aware_blocks_interval_injection(
            self, thermal_array):
        from repro.core.injection import break_inversions

        keygen = HardenedTempAwareKeyGen(t_min=-10, t_max=80,
                                         threshold=150e3)
        helper, key = keygen.enroll(thermal_array, rng=6)
        # Honest helper still reconstructs.
        recovered = keygen.reconstruct(thermal_array, helper)
        np.testing.assert_array_equal(recovered, key)
        # The §VI-B error injection rewrites intervals out of range and
        # is rejected wholesale.
        injected = break_inversions(helper.scheme, 45.0, 2)
        with pytest.raises(HelperDataRejected):
            keygen.reconstruct(thermal_array,
                               helper.with_scheme(injected))
