"""Tests for the multi-block ECC extension (paper §VI: "extension to
multiple blocks is fairly straightforward")."""

import numpy as np
import pytest

from repro.core import HelperDataOracle, SequentialPairingAttack
from repro.ecc.simple import BlockwiseCode
from repro.keygen import (
    GroupBasedKeyGen,
    ReconstructionFailure,
    SequentialPairingKeyGen,
    blockwise_provider,
)


class TestBlockwiseProvider:
    def test_builds_blockwise_code(self):
        code = blockwise_provider(2, 16)(64)
        assert isinstance(code, BlockwiseCode)
        assert code.k >= 64
        assert code.t == 2

    def test_single_block_collapses_to_inner(self):
        code = blockwise_provider(3, 64)(40)
        assert not isinstance(code, BlockwiseCode)
        assert code.k == 64

    def test_invalid_block_size_rejected(self):
        with pytest.raises(ValueError):
            blockwise_provider(2, 0)


class TestBlockwiseKeyGen:
    @pytest.fixture
    def setup(self, medium_array):
        keygen = SequentialPairingKeyGen(
            threshold=300e3, code_provider=blockwise_provider(2, 16))
        helper, key = keygen.enroll(medium_array, rng=1)
        return keygen, helper, key

    def test_roundtrip(self, setup, medium_array):
        keygen, helper, key = setup
        successes = 0
        for _ in range(10):
            try:
                successes += int(np.array_equal(
                    keygen.reconstruct(medium_array, helper), key))
            except ReconstructionFailure:
                pass
        assert successes >= 9

    def test_per_block_correction(self, setup, medium_array):
        # One error per block is tolerated even though four errors in a
        # single block would not be.
        keygen, helper, key = setup
        code = keygen.sketch_for(key.size).code
        assert isinstance(code, BlockwiseCode)
        assert code.blocks >= 2

    def test_group_based_with_blocks(self, small_array):
        keygen = GroupBasedKeyGen(
            group_threshold=120e3,
            code_provider=blockwise_provider(2, 32))
        helper, key = keygen.enroll(small_array, rng=2)
        successes = sum(
            int(np.array_equal(keygen.reconstruct(small_array, helper),
                               key)) for _ in range(5))
        assert successes >= 4


class TestBlockAwareAttack:
    def test_attack_defeats_blockwise_ecc(self, medium_array):
        keygen = SequentialPairingKeyGen(
            threshold=300e3, code_provider=blockwise_provider(2, 16))
        helper, key = keygen.enroll(medium_array, rng=1)
        oracle = HelperDataOracle(medium_array, keygen)
        attack = SequentialPairingAttack(oracle, keygen, helper)
        # Injection confined to block(0), count = the inner code's t.
        assert attack.injected_errors == 2
        positions = attack._injection_positions(target=40)
        code = keygen.sketch_for(key.size).code
        assert all(p < code.inner.n for p in positions)
        result = attack.run()
        assert result.key is not None
        np.testing.assert_array_equal(result.key, key)
