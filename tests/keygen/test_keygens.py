"""End-to-end tests for all five key-generator device models."""

import numpy as np
import pytest

from repro.ecc import TrivialCode
from repro.keygen import (
    DistillerPairingKeyGen,
    FuzzyExtractorKeyGen,
    GroupBasedKeyGen,
    OperatingPoint,
    ReconstructionFailure,
    SequentialPairingKeyGen,
    TempAwareKeyGen,
    bch_provider,
    fixed_code,
    key_check_digest,
)
from repro.puf import ROArray, ROArrayParams


def reconstruction_successes(keygen, array, helper, key, trials=15,
                             op=OperatingPoint()):
    successes = 0
    for _ in range(trials):
        try:
            successes += int(np.array_equal(
                keygen.reconstruct(array, helper, op), key))
        except ReconstructionFailure:
            pass
    return successes


class TestKeyCheck:
    def test_digest_is_length_aware(self):
        a = np.array([1, 0], dtype=np.uint8)
        b = np.array([1, 0, 0], dtype=np.uint8)
        assert key_check_digest(a) != key_check_digest(b)

    def test_digest_deterministic(self):
        bits = np.array([1, 0, 1, 1], dtype=np.uint8)
        assert key_check_digest(bits) == key_check_digest(bits.copy())


class TestProviders:
    def test_bch_provider_builds_exact_k(self):
        code = bch_provider(3)(40)
        assert (code.k, code.t) == (40, 3)

    def test_t_zero_provider_is_trivial(self):
        code = bch_provider(0)(17)
        assert (code.n, code.k, code.t) == (17, 17, 0)

    def test_fixed_code_rejects_oversized_response(self):
        provider = fixed_code(TrivialCode(8))
        with pytest.raises(ValueError):
            provider(9)


class TestSequentialKeyGen:
    def test_enroll_reconstruct_roundtrip(self, medium_array):
        keygen = SequentialPairingKeyGen(threshold=300e3)
        helper, key = keygen.enroll(medium_array, rng=1)
        assert key.size >= 32
        assert reconstruction_successes(keygen, medium_array, helper,
                                        key) >= 14

    def test_sorted_storage_key_is_all_ones(self, medium_array):
        keygen = SequentialPairingKeyGen(threshold=300e3,
                                         storage_order="sorted")
        _, key = keygen.enroll(medium_array, rng=1)
        assert key.all()

    def test_impossible_threshold_raises(self, medium_array):
        keygen = SequentialPairingKeyGen(threshold=1e12)
        with pytest.raises(ValueError):
            keygen.enroll(medium_array, rng=1)

    def test_without_ecc_noise_sometimes_fails(self):
        noisy = ROArray(ROArrayParams(rows=8, cols=16,
                                      sigma_noise=600e3), rng=9)
        keygen = SequentialPairingKeyGen(threshold=10e3,
                                         code_provider=bch_provider(0))
        helper, key = keygen.enroll(noisy, rng=1)
        # t = 0 plus heavy measurement noise: reconstruction is flaky,
        # the degenerate case the paper folds into its ECC model.
        successes = reconstruction_successes(keygen, noisy, helper, key,
                                             trials=30)
        assert successes < 30

    def test_malformed_pairing_helper_fails_observably(self,
                                                       medium_array):
        keygen = SequentialPairingKeyGen(threshold=300e3)
        helper, key = keygen.enroll(medium_array, rng=1)
        pairs = list(helper.pairing.pairs)
        pairs[1] = (pairs[0][0], pairs[1][1])  # re-use oscillator
        bad = helper.with_pairing(
            type(helper.pairing)(tuple(pairs)))
        with pytest.raises(ReconstructionFailure):
            keygen.reconstruct(medium_array, bad)


class TestTempAwareKeyGen:
    @pytest.fixture
    def enrolled(self, thermal_array):
        keygen = TempAwareKeyGen(t_min=-10, t_max=80, threshold=150e3)
        helper, key = keygen.enroll(thermal_array, rng=6)
        return keygen, helper, key

    @pytest.mark.parametrize("temperature", [-5.0, 25.0, 60.0, 75.0])
    def test_reconstructs_across_range(self, enrolled, thermal_array,
                                       temperature):
        keygen, helper, key = enrolled
        op = OperatingPoint(temperature=temperature)
        assert reconstruction_successes(keygen, thermal_array, helper,
                                        key, trials=10, op=op) >= 9

    def test_key_length_accounts_good_and_coop(self, enrolled):
        _, helper, key = enrolled
        assert key.size == (len(helper.scheme.good_indices)
                            + len(helper.scheme.cooperation))


class TestGroupBasedKeyGen:
    @pytest.fixture
    def enrolled(self, small_array):
        keygen = GroupBasedKeyGen(distiller_degree=2,
                                  group_threshold=120e3)
        helper, key = keygen.enroll(small_array, rng=2)
        return keygen, helper, key

    def test_roundtrip(self, enrolled, small_array):
        keygen, helper, key = enrolled
        assert reconstruction_successes(keygen, small_array, helper,
                                        key) >= 14

    def test_key_length_matches_packing(self, enrolled):
        from repro.grouping import packed_length

        _, helper, key = enrolled
        assert key.size == packed_length(helper.grouping.sizes)

    def test_malformed_sketch_fails_observably(self, enrolled,
                                               small_array):
        keygen, helper, key = enrolled
        from repro.ecc import SketchData

        bad = helper.with_sketch(SketchData(np.zeros(3, dtype=np.uint8)))
        with pytest.raises(ReconstructionFailure):
            keygen.reconstruct(small_array, bad)

    def test_helperless_groups_rejected_at_enroll(self, small_array):
        keygen = GroupBasedKeyGen(group_threshold=1e12)
        with pytest.raises(ValueError):
            keygen.enroll(small_array, rng=1)


class TestDistillerPairingKeyGen:
    @pytest.mark.parametrize("mode,expected_bits", [
        ("neighbor-disjoint", 20),
        ("neighbor-overlap", 39),
        ("masking", 4),
    ])
    def test_roundtrip_all_modes(self, small_array, mode, expected_bits):
        keygen = DistillerPairingKeyGen(4, 10, pairing_mode=mode, k=5)
        helper, key = keygen.enroll(small_array, rng=3)
        assert key.size == expected_bits
        assert reconstruction_successes(keygen, small_array, helper,
                                        key) >= 13

    def test_geometry_mismatch_rejected(self, medium_array):
        keygen = DistillerPairingKeyGen(4, 10)
        with pytest.raises(ValueError):
            keygen.enroll(medium_array, rng=1)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            DistillerPairingKeyGen(4, 10, pairing_mode="diagonal")


class TestFuzzyExtractorKeyGen:
    def test_roundtrip(self, medium_array):
        keygen = FuzzyExtractorKeyGen(8, 16, out_bits=32)
        helper, key = keygen.enroll(medium_array, rng=5)
        assert key.size == 32
        assert reconstruction_successes(keygen, medium_array, helper,
                                        key) >= 14

    def test_oversized_output_rejected(self):
        with pytest.raises(ValueError):
            FuzzyExtractorKeyGen(2, 2, out_bits=8)

    def test_distinct_devices_distinct_keys(self, medium_params):
        keygen = FuzzyExtractorKeyGen(8, 16, out_bits=32)
        keys = []
        for seed in range(5):
            array = ROArray(medium_params, rng=seed)
            _, key = keygen.enroll(array, rng=seed)
            keys.append(tuple(key))
        assert len(set(keys)) == 5
