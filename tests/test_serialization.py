"""Tests for the specified helper-data storage formats (§VII-C)."""

import numpy as np
import pytest

from repro.keygen import (
    DistillerPairingKeyGen,
    FuzzyExtractorKeyGen,
    GroupBasedKeyGen,
    SequentialPairingKeyGen,
    TempAwareKeyGen,
)
from repro.pairing import MaskingHelper
from repro.serialization import (
    FormatError,
    dump_distiller_pairing,
    dump_fuzzy,
    dump_group_based,
    dump_helper,
    dump_key_bits,
    dump_masking,
    dump_sequential,
    dump_temp_aware,
    load_distiller_pairing,
    load_fuzzy,
    load_group_based,
    load_helper,
    load_key_bits,
    load_masking,
    load_sequential,
    load_temp_aware,
)


@pytest.fixture
def sequential_helper(medium_array):
    keygen = SequentialPairingKeyGen(threshold=300e3)
    helper, _ = keygen.enroll(medium_array, rng=1)
    return helper


@pytest.fixture
def group_helper(small_array):
    keygen = GroupBasedKeyGen(group_threshold=120e3)
    helper, _ = keygen.enroll(small_array, rng=2)
    return helper


@pytest.fixture
def temp_helper(thermal_array):
    keygen = TempAwareKeyGen(t_min=-10, t_max=80, threshold=150e3)
    helper, _ = keygen.enroll(thermal_array, rng=6)
    return helper


class TestRoundtrips:
    def test_sequential(self, sequential_helper):
        blob = dump_sequential(sequential_helper)
        loaded = load_sequential(blob)
        assert loaded.pairing.pairs == sequential_helper.pairing.pairs
        np.testing.assert_array_equal(loaded.sketch.payload,
                                      sequential_helper.sketch.payload)
        assert loaded.key_check == sequential_helper.key_check

    def test_group_based(self, group_helper):
        blob = dump_group_based(group_helper)
        loaded = load_group_based(blob)
        np.testing.assert_allclose(loaded.distiller.coefficients,
                                   group_helper.distiller.coefficients)
        assert loaded.grouping.groups == group_helper.grouping.groups
        assert loaded.grouping.threshold == \
            group_helper.grouping.threshold
        np.testing.assert_array_equal(loaded.sketch.payload,
                                      group_helper.sketch.payload)
        assert loaded.key_check == group_helper.key_check

    def test_temp_aware(self, temp_helper):
        blob = dump_temp_aware(temp_helper)
        loaded = load_temp_aware(blob)
        assert loaded.scheme == temp_helper.scheme
        np.testing.assert_array_equal(loaded.sketch.payload,
                                      temp_helper.sketch.payload)
        assert loaded.key_check == temp_helper.key_check

    def test_masking(self):
        helper = MaskingHelper(5, (0, 3, 4, 1))
        assert load_masking(dump_masking(helper)) == helper

    def test_reconstruction_after_roundtrip(self, medium_array,
                                            sequential_helper):
        keygen = SequentialPairingKeyGen(threshold=300e3)
        loaded = load_sequential(dump_sequential(sequential_helper))
        key = keygen.reconstruct(medium_array, loaded)
        assert key.size == sequential_helper.pairing.bits

    @pytest.mark.parametrize("mode", ["masking", "neighbor-disjoint"])
    def test_distiller_pairing(self, small_array, mode):
        keygen = DistillerPairingKeyGen(4, 10, pairing_mode=mode, k=5)
        helper, _ = keygen.enroll(small_array, rng=3)
        loaded = load_distiller_pairing(dump_distiller_pairing(helper))
        assert loaded.distiller.degree == helper.distiller.degree
        np.testing.assert_array_equal(
            loaded.distiller.coefficients,
            helper.distiller.coefficients)
        assert loaded.masking == helper.masking
        np.testing.assert_array_equal(loaded.sketch.payload,
                                      helper.sketch.payload)
        assert loaded.key_check == helper.key_check
        assert dump_distiller_pairing(loaded) == \
            dump_distiller_pairing(helper)

    def test_fuzzy(self, small_array):
        keygen = FuzzyExtractorKeyGen(4, 10, out_bits=16)
        helper, _ = keygen.enroll(small_array, rng=4)
        loaded = load_fuzzy(dump_fuzzy(helper))
        np.testing.assert_array_equal(
            loaded.extractor.sketch.payload,
            helper.extractor.sketch.payload)
        np.testing.assert_array_equal(loaded.extractor.hash_seed,
                                      helper.extractor.hash_seed)
        assert loaded.extractor.out_bits == helper.extractor.out_bits
        assert loaded.key_check == helper.key_check
        assert dump_fuzzy(loaded) == dump_fuzzy(helper)

    def test_key_bits(self, rng):
        key = rng.integers(0, 2, size=37).astype(np.uint8)
        loaded = load_key_bits(dump_key_bits(key))
        np.testing.assert_array_equal(loaded, key)

    def test_dump_helper_dispatches_new_codecs(self, small_array):
        for keygen in (DistillerPairingKeyGen(
                           4, 10, pairing_mode="masking", k=5),
                       FuzzyExtractorKeyGen(4, 10, out_bits=16)):
            helper, _ = keygen.enroll(small_array, rng=5)
            blob = dump_helper(helper)
            assert type(load_helper(blob)) is type(helper)


class TestStrictParsing:
    def test_bad_magic(self, sequential_helper):
        blob = bytearray(dump_sequential(sequential_helper))
        blob[0] ^= 0xFF
        with pytest.raises(FormatError):
            load_sequential(bytes(blob))

    def test_unknown_version(self, sequential_helper):
        blob = bytearray(dump_sequential(sequential_helper))
        blob[4] = 99
        with pytest.raises(FormatError):
            load_sequential(bytes(blob))

    def test_wrong_tag(self, sequential_helper, group_helper):
        blob = dump_group_based(group_helper)
        with pytest.raises(FormatError):
            load_sequential(blob)

    def test_truncation_always_detected(self, sequential_helper):
        blob = dump_sequential(sequential_helper)
        for cut in (5, 9, 11, len(blob) // 2, len(blob) - 1):
            with pytest.raises(FormatError):
                load_sequential(blob[:cut])

    def test_trailing_bytes_rejected(self, sequential_helper):
        blob = dump_sequential(sequential_helper)
        with pytest.raises(FormatError):
            load_sequential(blob + b"\x00")

    def test_length_field_mismatch_rejected(self, sequential_helper):
        blob = bytearray(dump_sequential(sequential_helper))
        blob[6] ^= 1  # corrupt the payload length
        with pytest.raises(FormatError):
            load_sequential(bytes(blob))

    def test_byte_fuzzing_never_crashes(self, group_helper, rng):
        # Strict parser contract: malformed input raises FormatError or
        # a validation ValueError from the typed constructors — never an
        # unhandled exception type.
        blob = bytearray(dump_group_based(group_helper))
        for _ in range(200):
            mutated = bytearray(blob)
            position = rng.integers(0, len(mutated))
            mutated[position] = rng.integers(0, 256)
            try:
                load_group_based(bytes(mutated))
            except (FormatError, ValueError):
                pass

    def test_truncation_fuzzing_temp_aware(self, temp_helper, rng):
        blob = dump_temp_aware(temp_helper)
        for _ in range(50):
            cut = int(rng.integers(0, len(blob)))
            with pytest.raises((FormatError, ValueError)):
                load_temp_aware(blob[:cut])

    def test_truncation_fuzzing_new_codecs(self, small_array, rng):
        keygen = DistillerPairingKeyGen(4, 10,
                                        pairing_mode="masking", k=5)
        helper, _ = keygen.enroll(small_array, rng=8)
        for dump, load, value in (
                (dump_distiller_pairing, load_distiller_pairing,
                 helper),
                (dump_key_bits, load_key_bits,
                 np.ones(16, dtype=np.uint8))):
            blob = dump(value)
            for _ in range(50):
                cut = int(rng.integers(0, len(blob)))
                with pytest.raises((FormatError, ValueError)):
                    load(blob[:cut])
