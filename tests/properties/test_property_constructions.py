"""Property-based tests for the helper-data constructions themselves."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.pairing import (
    MaskingHelper,
    OneOutOfKMasking,
    response_bits,
    run_sequential_pairing,
)
from repro.pairing.temp_aware import PairClass, classify_pair
from repro.puf.variation import Polynomial2D, n_terms
from repro.serialization import (
    dump_masking,
    load_masking,
)

frequencies = st.lists(
    st.floats(100e6, 300e6, allow_nan=False, allow_infinity=False),
    min_size=4, max_size=64, unique=True)


class TestSequentialPairingProperties:
    @given(freqs=frequencies, threshold=st.floats(0, 50e6))
    @settings(max_examples=80, deadline=None)
    def test_invariants(self, freqs, threshold):
        freqs = np.array(freqs)
        pairs = run_sequential_pairing(freqs, threshold)
        flat = [ro for pair in pairs for ro in pair]
        # Disjoint, in range, above threshold, at most floor(N/2).
        assert len(flat) == len(set(flat))
        assert all(0 <= ro < freqs.size for ro in flat)
        assert all(freqs[a] - freqs[b] > threshold for a, b in pairs)
        assert len(pairs) <= freqs.size // 2

    @given(freqs=frequencies)
    @settings(max_examples=40, deadline=None)
    def test_zero_threshold_is_maximal(self, freqs):
        freqs = np.array(freqs)
        pairs = run_sequential_pairing(freqs, 0.0)
        assert len(pairs) == freqs.size // 2

    @given(freqs=frequencies, threshold=st.floats(0, 5e6),
           scale=st.floats(0.5, 2.0))
    @settings(max_examples=40, deadline=None)
    def test_selection_is_shift_invariant(self, freqs, threshold,
                                          scale):
        # Adding a constant to all frequencies never changes the
        # selected pairs (only differences matter).
        freqs = np.array(freqs)
        shifted = freqs + 17e6
        assert run_sequential_pairing(freqs, threshold) == \
            run_sequential_pairing(shifted, threshold)


class TestClassificationProperties:
    @given(delta_min=st.floats(-1e6, 1e6), delta_max=st.floats(-1e6,
                                                               1e6),
           threshold=st.floats(1e3, 5e5))
    @settings(max_examples=100, deadline=None)
    def test_classification_is_total_and_consistent(self, delta_min,
                                                    delta_max,
                                                    threshold):
        profile = classify_pair((0, 1), delta_min, delta_max,
                                t_min=0.0, t_max=80.0,
                                threshold=threshold)
        assert profile.kind in PairClass
        # The affine model must reproduce the endpoint measurements.
        assert profile.delta_at(0.0) == delta_min
        assert abs(profile.delta_at(80.0) - delta_max) < 1e-6
        if profile.kind is PairClass.GOOD:
            assert abs(delta_min) > threshold
            assert abs(delta_max) > threshold
            assert (delta_min >= 0) == (delta_max >= 0)
        if profile.kind is PairClass.BAD:
            assert abs(delta_min) <= threshold
            assert abs(delta_max) <= threshold
        if profile.kind is PairClass.COOPERATING:
            assert 0.0 <= profile.crossover <= 80.0
            assert profile.t_low <= profile.crossover <= profile.t_high


class TestMaskingProperties:
    @given(freqs=st.lists(st.floats(100e6, 300e6, allow_nan=False),
                          min_size=20, max_size=20, unique=True),
           k=st.sampled_from([2, 5]))
    @settings(max_examples=40, deadline=None)
    def test_enrolled_selection_maximises_margin(self, freqs, k):
        pairs = [(2 * i, 2 * i + 1) for i in range(10)]
        scheme = OneOutOfKMasking(pairs, k)
        freqs = np.array(freqs)
        helper, bits = scheme.enroll(freqs)
        selected = scheme.selected_pairs(helper)
        for group in range(scheme.groups):
            candidates = scheme.group_pairs(group)
            margins = [abs(freqs[a] - freqs[b]) for a, b in candidates]
            chosen = selected[group]
            assert abs(freqs[chosen[0]] - freqs[chosen[1]]) == \
                max(margins)
        np.testing.assert_array_equal(bits,
                                      response_bits(freqs, selected))

    @given(k=st.integers(1, 8),
           selections=st.lists(st.integers(0, 7), min_size=0,
                               max_size=30))
    def test_masking_serialization_roundtrip(self, k, selections):
        assume(all(s < k for s in selections))
        helper = MaskingHelper(k, tuple(selections))
        assert load_masking(dump_masking(helper)) == helper


class TestPolynomialProperties:
    @given(degree=st.integers(0, 4), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_fit_reproduces_members_of_the_family(self, degree, data):
        coeffs = data.draw(st.lists(
            st.floats(-100, 100, allow_nan=False),
            min_size=n_terms(degree), max_size=n_terms(degree)))
        truth = Polynomial2D(degree, coeffs)
        rng = np.random.default_rng(data.draw(st.integers(0, 999)))
        xs = rng.uniform(0, 8, 4 * n_terms(degree) + 8)
        ys = rng.uniform(0, 8, xs.size)
        fitted = Polynomial2D.fit(xs, ys, truth(xs, ys), degree)
        np.testing.assert_allclose(fitted(xs, ys), truth(xs, ys),
                                   atol=1e-5, rtol=1e-5)

    @given(degree_a=st.integers(0, 3), degree_b=st.integers(0, 3),
           data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_addition_is_pointwise(self, degree_a, degree_b, data):
        coeffs_a = data.draw(st.lists(
            st.floats(-10, 10, allow_nan=False),
            min_size=n_terms(degree_a), max_size=n_terms(degree_a)))
        coeffs_b = data.draw(st.lists(
            st.floats(-10, 10, allow_nan=False),
            min_size=n_terms(degree_b), max_size=n_terms(degree_b)))
        a = Polynomial2D(degree_a, coeffs_a)
        b = Polynomial2D(degree_b, coeffs_b)
        total = a + b
        for x, y in ((0.0, 0.0), (1.5, -2.0), (3.0, 4.0)):
            assert total(x, y) == pytest_approx(a(x, y) + b(x, y))


def pytest_approx(value, rel=1e-9, abs_tol=1e-6):
    import pytest

    return pytest.approx(value, rel=rel, abs=abs_tol)
