"""Property-based tests for Kendall coding, packing and parity graphs."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.temp_aware_attack import ParityUnionFind
from repro.grouping import (
    adjacent_swap_distance,
    compact_decode,
    compact_encode,
    grouping_entropy,
    group_ros,
    kendall_decode,
    kendall_encode,
    order_from_frequencies,
    pack_key,
    packed_length,
    verify_grouping,
)
from repro.fuzzy import ToeplitzHash


def permutations_of(size):
    return st.permutations(list(range(size)))


class TestKendallProperties:
    @given(order=permutations_of(5))
    def test_roundtrip(self, order):
        assert kendall_decode(kendall_encode(order), 5) == tuple(order)

    @given(order=permutations_of(5))
    def test_compact_roundtrip(self, order):
        assert compact_decode(compact_encode(order), 5) == tuple(order)

    @given(a=permutations_of(5), b=permutations_of(5))
    def test_kendall_distance_is_metric(self, a, b):
        d = adjacent_swap_distance(a, b)
        assert d == adjacent_swap_distance(b, a)
        assert (d == 0) == (tuple(a) == tuple(b))
        assert d <= 10  # max = 5*4/2

    @given(a=permutations_of(4), b=permutations_of(4),
           c=permutations_of(4))
    def test_kendall_triangle_inequality(self, a, b, c):
        assert adjacent_swap_distance(a, c) <= \
            adjacent_swap_distance(a, b) + adjacent_swap_distance(b, c)

    @given(values=st.lists(st.floats(-1e6, 1e6, allow_nan=False),
                           min_size=2, max_size=8, unique=True))
    def test_order_from_frequencies_sorts_descending(self, values):
        order = order_from_frequencies(values)
        sorted_values = [values[i] for i in order]
        assert sorted_values == sorted(values, reverse=True)


class TestGroupingProperties:
    @given(freqs=st.lists(st.floats(0, 1e6, allow_nan=False),
                          min_size=1, max_size=60),
           threshold=st.floats(0, 1e5, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_grouping_invariants(self, freqs, threshold):
        freqs = np.array(freqs)
        groups = group_ros(freqs, threshold)
        assert verify_grouping(freqs, groups, threshold)
        assert grouping_entropy(groups) >= 0.0

    @given(orders=st.lists(permutations_of(3), min_size=1, max_size=5))
    def test_pack_key_length(self, orders):
        stream = np.concatenate([kendall_encode(o) for o in orders])
        sizes = [3] * len(orders)
        key = pack_key(stream, sizes)
        assert key.shape == (packed_length(sizes),)


class TestParityUnionFindProperties:
    @given(assignment=st.lists(st.integers(0, 1), min_size=2,
                               max_size=12),
           edges=st.data())
    @settings(max_examples=60, deadline=None)
    def test_relations_consistent_with_assignment(self, assignment,
                                                  edges):
        size = len(assignment)
        graph = ParityUnionFind(size)
        for _ in range(size * 2):
            a = edges.draw(st.integers(0, size - 1))
            b = edges.draw(st.integers(0, size - 1))
            if a == b:
                continue
            parity = assignment[a] ^ assignment[b]
            assert graph.union(a, b, parity)
        for a in range(size):
            for b in range(size):
                relation = graph.relation(a, b)
                if relation is not None:
                    assert relation == assignment[a] ^ assignment[b]

    @given(size=st.integers(2, 10))
    def test_conflicting_edge_detected(self, size):
        graph = ParityUnionFind(size)
        assert graph.union(0, 1, 0)
        assert not graph.union(1, 0, 1)


class TestToeplitzProperties:
    @given(word_a=st.lists(st.integers(0, 1), min_size=12, max_size=12),
           word_b=st.lists(st.integers(0, 1), min_size=12, max_size=12),
           seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_gf2_linearity(self, word_a, word_b, seed):
        hasher = ToeplitzHash.random(12, 5, rng=seed)
        a = np.array(word_a, dtype=np.uint8)
        b = np.array(word_b, dtype=np.uint8)
        assert np.array_equal(hasher(a) ^ hasher(b), hasher(a ^ b))
