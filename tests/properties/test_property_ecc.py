"""Property-based tests (hypothesis) for the ECC stack."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ecc import BCHCode, CodeOffsetSketch, HammingCode, \
    RepetitionCode, SyndromeSketch
from repro.ecc.gf2m import GF2m, poly_divmod, poly_mul

# One shared code instance: constructing BCH tables inside @given would
# dominate runtime.
BCH_5_2 = BCHCode(5, 2)
BCH_6_3 = BCHCode(6, 3)


@st.composite
def message_and_errors(draw, code, max_errors=None):
    max_errors = code.t if max_errors is None else max_errors
    message = draw(st.lists(st.integers(0, 1), min_size=code.k,
                            max_size=code.k))
    n_errors = draw(st.integers(0, max_errors))
    positions = draw(st.lists(st.integers(0, code.n - 1),
                              min_size=n_errors, max_size=n_errors,
                              unique=True))
    return np.array(message, dtype=np.uint8), positions


class TestFieldProperties:
    @given(a=st.integers(0, 31), b=st.integers(0, 31))
    def test_gf32_commutativity(self, a, b):
        field = GF2m(5)
        assert field.mul(a, b) == field.mul(b, a)

    @given(a=st.integers(1, 31), e1=st.integers(-10, 10),
           e2=st.integers(-10, 10))
    def test_gf32_power_laws(self, a, e1, e2):
        field = GF2m(5)
        assert field.mul(field.pow(a, e1), field.pow(a, e2)) == \
            field.pow(a, e1 + e2)

    @given(a=st.integers(0, (1 << 10) - 1),
           b=st.integers(1, (1 << 6) - 1))
    def test_poly_division_invariant(self, a, b):
        quotient, remainder = poly_divmod(a, b)
        assert poly_mul(quotient, b) ^ remainder == a


class TestBCHProperties:
    @given(data=message_and_errors(BCH_5_2))
    @settings(max_examples=60, deadline=None)
    def test_decoding_inverts_bounded_noise(self, data):
        message, positions = data
        codeword = BCH_5_2.encode(message)
        received = codeword.copy()
        received[positions] ^= 1
        decoded = BCH_5_2.decode(received)
        assert np.array_equal(decoded, codeword)
        assert np.array_equal(BCH_5_2.extract(decoded), message)

    @given(a=st.lists(st.integers(0, 1), min_size=BCH_6_3.k,
                      max_size=BCH_6_3.k),
           b=st.lists(st.integers(0, 1), min_size=BCH_6_3.k,
                      max_size=BCH_6_3.k))
    @settings(max_examples=30, deadline=None)
    def test_code_is_linear(self, a, b):
        a = np.array(a, dtype=np.uint8)
        b = np.array(b, dtype=np.uint8)
        assert np.array_equal(BCH_6_3.encode(a) ^ BCH_6_3.encode(b),
                              BCH_6_3.encode(a ^ b))

    @given(message=st.lists(st.integers(0, 1), min_size=BCH_5_2.k,
                            max_size=BCH_5_2.k))
    @settings(max_examples=30, deadline=None)
    def test_complement_closure(self, message):
        # The structural property behind the §VI-A candidate ambiguity.
        codeword = BCH_5_2.encode(np.array(message, dtype=np.uint8))
        assert BCH_5_2.is_codeword(codeword ^ 1)


class TestSimpleCodeProperties:
    @given(bit=st.integers(0, 1),
           positions=st.lists(st.integers(0, 6), max_size=3,
                              unique=True))
    def test_repetition_majority(self, bit, positions):
        code = RepetitionCode(7)
        received = code.encode(np.array([bit], dtype=np.uint8))
        received[positions] ^= 1
        assert code.extract(code.decode(received))[0] == bit

    @given(message=st.lists(st.integers(0, 1), min_size=11,
                            max_size=11),
           position=st.integers(0, 14))
    def test_hamming_single_error(self, message, position):
        code = HammingCode(4)
        codeword = code.encode(np.array(message, dtype=np.uint8))
        received = codeword.copy()
        received[position] ^= 1
        assert np.array_equal(code.decode(received), codeword)


class TestSketchProperties:
    @given(data=message_and_errors(BCH_5_2))
    @settings(max_examples=40, deadline=None)
    def test_code_offset_recovery(self, data):
        response_bits, positions = data
        # reuse the k-bit message as a response of length k
        sketch = CodeOffsetSketch(BCH_5_2, BCH_5_2.k)
        helper = sketch.generate(response_bits, rng=1)
        noisy = response_bits.copy()
        in_range = [p for p in positions if p < BCH_5_2.k]
        noisy[in_range] ^= 1
        assert np.array_equal(sketch.recover(noisy, helper),
                              response_bits)

    @given(data=message_and_errors(BCH_5_2))
    @settings(max_examples=40, deadline=None)
    def test_syndrome_recovery(self, data):
        response_bits, positions = data
        sketch = SyndromeSketch(BCH_5_2, BCH_5_2.k)
        helper = sketch.generate(response_bits)
        noisy = response_bits.copy()
        in_range = [p for p in positions if p < BCH_5_2.k]
        noisy[in_range] ^= 1
        assert np.array_equal(sketch.recover(noisy, helper),
                              response_bits)
