"""Property-based round-trip tests for the helper-data storage formats."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.distiller import DistillerHelper
from repro.ecc import SketchData
from repro.grouping import GroupingHelper
from repro.keygen import GroupBasedKeyHelper, SequentialKeyHelper, \
    key_check_digest
from repro.pairing import SequentialPairingHelper
from repro.serialization import (
    FormatError,
    dump_group_based,
    dump_sequential,
    load_group_based,
    load_sequential,
)


@st.composite
def sequential_helpers(draw):
    pair_count = draw(st.integers(1, 40))
    used = draw(st.permutations(list(range(2 * pair_count))))
    pairs = tuple((used[2 * i], used[2 * i + 1])
                  for i in range(pair_count))
    payload = np.array(draw(st.lists(st.integers(0, 1), min_size=1,
                                     max_size=120)), dtype=np.uint8)
    key = np.array(draw(st.lists(st.integers(0, 1),
                                 min_size=pair_count,
                                 max_size=pair_count)), dtype=np.uint8)
    return SequentialKeyHelper(SequentialPairingHelper(pairs),
                               SketchData(payload),
                               key_check_digest(key))


@st.composite
def group_helpers(draw):
    degree = draw(st.integers(0, 3))
    from repro.puf.variation import n_terms

    coefficients = np.array(draw(st.lists(
        st.floats(-1e9, 1e9, allow_nan=False),
        min_size=n_terms(degree), max_size=n_terms(degree))))
    group_count = draw(st.integers(1, 6))
    members = iter(draw(st.permutations(list(range(64)))))
    groups = []
    for _ in range(group_count):
        size = draw(st.integers(1, 5))
        groups.append(tuple(next(members) for _ in range(size)))
    payload = np.array(draw(st.lists(st.integers(0, 1), min_size=1,
                                     max_size=200)), dtype=np.uint8)
    key = np.array(draw(st.lists(st.integers(0, 1), min_size=1,
                                 max_size=40)), dtype=np.uint8)
    return GroupBasedKeyHelper(
        DistillerHelper(degree, coefficients),
        GroupingHelper(tuple(groups),
                       draw(st.floats(0, 1e6, allow_nan=False))),
        SketchData(payload), key_check_digest(key))


class TestSequentialRoundtrip:
    @given(helper=sequential_helpers())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_identity(self, helper):
        loaded = load_sequential(dump_sequential(helper))
        assert loaded.pairing.pairs == helper.pairing.pairs
        assert np.array_equal(loaded.sketch.payload,
                              helper.sketch.payload)
        assert loaded.key_check == helper.key_check

    @given(helper=sequential_helpers(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_truncation_always_raises(self, helper, data):
        blob = dump_sequential(helper)
        cut = data.draw(st.integers(0, len(blob) - 1))
        try:
            load_sequential(blob[:cut])
        except (FormatError, ValueError):
            return
        raise AssertionError("truncated blob accepted")


class TestGroupBasedRoundtrip:
    @given(helper=group_helpers())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_identity(self, helper):
        loaded = load_group_based(dump_group_based(helper))
        assert loaded.grouping.groups == helper.grouping.groups
        np.testing.assert_array_equal(loaded.distiller.coefficients,
                                      helper.distiller.coefficients)
        assert loaded.grouping.threshold == helper.grouping.threshold
        assert np.array_equal(loaded.sketch.payload,
                              helper.sketch.payload)
        assert loaded.key_check == helper.key_check
